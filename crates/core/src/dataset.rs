//! The collector's dataset: everything scraped from the explorer API.
//!
//! Bundles arrive as overlapping pages of "the most recent N"; the dataset
//! deduplicates by bundle id and records, per poll, whether the new page
//! overlapped the previous one — the paper's completeness argument (§3.1:
//! 95% of successive request pairs overlapped).
//!
//! The dataset can run in two shapes. Standalone, it accumulates every
//! record in memory (the original behaviour, still used by small runs and
//! the unit tests). Backing a segment store, it is only the *staging area*:
//! the collector periodically drains sealable records out of it into
//! sealed segments ([`Dataset::drain_sealable`]), so resident memory stays
//! bounded by the seal threshold plus the detail backlog while the `seen`
//! id set keeps deduplication exact across the whole run.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use sandwich_explorer::{BundleSummaryJson, TxDetailJson};
use sandwich_ledger::{TransactionId, TransactionMeta};
use sandwich_types::{Slot, SlotClock};

pub use sandwich_store::{CollectedBundle, CollectedDetail, PollRecord};

/// The collector's accumulated dataset.
#[derive(Default)]
pub struct Dataset {
    bundles: Vec<CollectedBundle>,
    seen: HashSet<sandwich_jito::BundleId>,
    details: HashMap<TransactionId, CollectedDetail>,
    polls: Vec<PollRecord>,
    detail_requested: HashSet<sandwich_jito::BundleId>,
    /// Bundles drained into sealed segments and no longer resident.
    flushed_bundles: u64,
    /// Details drained into sealed segments and no longer resident.
    flushed_details: u64,
    /// Poll records already copied into a sealed segment.
    polls_spilled: usize,
    /// Highest slot ever ingested, resident or flushed.
    max_slot_seen: Option<u64>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Build one record from a wire summary (shared by live polls and
    /// backfill pages).
    fn record_from_summary(b: &BundleSummaryJson, clock: &SlotClock) -> CollectedBundle {
        CollectedBundle {
            bundle_id: b.bundle_id,
            slot: Slot(b.slot),
            timestamp_ms: clock.unix_ms(Slot(b.slot)),
            tip: b.tip(),
            tx_ids: b.transactions.clone(),
        }
    }

    /// Ingest one page (newest-first, as served): store unseen bundles in
    /// chronological order, report how many were new and whether the page
    /// overlapped anything previously collected.
    fn ingest_records(&mut self, page: &[BundleSummaryJson], clock: &SlotClock) -> (usize, bool) {
        let mut new = 0usize;
        let mut overlapped = false;
        for b in page.iter().rev() {
            if self.seen.contains(&b.bundle_id) {
                overlapped = true;
                continue;
            }
            self.seen.insert(b.bundle_id);
            self.max_slot_seen = Some(self.max_slot_seen.unwrap_or(0).max(b.slot));
            self.bundles.push(Self::record_from_summary(b, clock));
            new += 1;
        }
        (new, overlapped)
    }

    /// Ingest one recent-bundles page (newest-first, as served).
    pub fn ingest_page(
        &mut self,
        page: &[BundleSummaryJson],
        clock: &SlotClock,
        day: u64,
    ) -> PollRecord {
        let fetched = page.len();
        let (new, mut overlapped) = self.ingest_records(page, clock);
        // The very first poll trivially "overlaps" nothing; count it as
        // overlapping so it does not read as a gap.
        if self.polls.is_empty() && fetched > 0 {
            overlapped = true;
        }
        let record = PollRecord {
            day,
            fetched,
            new,
            overlapped_previous: overlapped || fetched == 0,
        };
        self.polls.push(record);
        record
    }

    /// Ingest a backfill page fetched behind a `before` cursor after a
    /// missed epoch. Unlike [`Dataset::ingest_page`] this logs no poll
    /// record — backfill repairs the gap left by an already-recorded poll.
    ///
    /// Returns `(new_bundles, reached_known)` where `reached_known` is true
    /// once the page touched bundles already collected — the signal that
    /// the gap has been closed.
    pub fn ingest_backfill_page(
        &mut self,
        page: &[BundleSummaryJson],
        clock: &SlotClock,
    ) -> (usize, bool) {
        self.ingest_records(page, clock)
    }

    /// Newest collected slot, if any (the backfill cursor's starting edge).
    /// Includes bundles already drained into sealed segments.
    pub fn newest_slot(&self) -> Option<u64> {
        self.max_slot_seen
    }

    /// Mark the most recent poll as overlapping — called after a backfill
    /// pass closed the gap that poll had opened.
    pub fn mark_last_poll_overlapped(&mut self) {
        if let Some(last) = self.polls.last_mut() {
            last.overlapped_previous = true;
        }
    }

    /// Restore chronological bundle order after backfill inserted older
    /// bundles behind the newest page.
    pub fn sort_chronological(&mut self) {
        self.bundles.sort_by_key(|b| b.slot);
    }

    /// Ingest a batch of transaction details.
    pub fn ingest_details(&mut self, details: &[Option<TxDetailJson>]) -> usize {
        let mut added = 0;
        for d in details.iter().flatten() {
            self.details.insert(
                d.tx_id,
                CollectedDetail {
                    bundle_id: d.bundle_id,
                    slot: d.slot_typed(),
                    meta: d.to_meta(),
                },
            );
            added += 1;
        }
        added
    }

    /// Resident (not yet drained) bundles, in collection (≈ chronological)
    /// order. In standalone mode this is everything collected.
    pub fn bundles(&self) -> &[CollectedBundle] {
        &self.bundles
    }

    /// Number of collected bundles, including ones drained into sealed
    /// segments.
    pub fn len(&self) -> usize {
        self.bundles.len() + self.flushed_bundles as usize
    }

    /// True when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Detail for one transaction, if fetched and still resident.
    pub fn detail(&self, id: &TransactionId) -> Option<&CollectedDetail> {
        self.details.get(id)
    }

    /// Number of fetched transaction details, including drained ones.
    pub fn detail_count(&self) -> usize {
        self.details.len() + self.flushed_details as usize
    }

    /// Poll log.
    pub fn polls(&self) -> &[PollRecord] {
        &self.polls
    }

    /// Fraction of successive polls whose pages overlapped (the paper's
    /// 95% completeness statistic). First poll excluded.
    pub fn overlap_rate(&self) -> f64 {
        if self.polls.len() <= 1 {
            return 1.0;
        }
        let later = &self.polls[1..];
        let overlapping = later.iter().filter(|p| p.overlapped_previous).count();
        overlapping as f64 / later.len() as f64
    }

    /// Transaction ids of length-`len` bundles whose details have not been
    /// requested yet; marks them requested. This is the paper's strategy of
    /// fetching details only for bundles of length three (§3.1).
    pub fn pending_detail_ids(&mut self, len: usize, max: usize) -> Vec<TransactionId> {
        self.take_pending_details(len, max).0
    }

    /// Like [`Dataset::pending_detail_ids`], but also returns the bundle
    /// ids that were marked — so a failed fetch can requeue them with
    /// [`Dataset::unmark_detail_requested`] instead of silently losing the
    /// details forever.
    pub fn take_pending_details(
        &mut self,
        len: usize,
        max: usize,
    ) -> (Vec<TransactionId>, Vec<sandwich_jito::BundleId>) {
        let mut out = Vec::new();
        let mut marked = Vec::new();
        for b in &self.bundles {
            if out.len() + len > max {
                break;
            }
            if b.len() == len && !self.detail_requested.contains(&b.bundle_id) {
                self.detail_requested.insert(b.bundle_id);
                marked.push(b.bundle_id);
                out.extend(b.tx_ids.iter().copied());
            }
        }
        (out, marked)
    }

    /// Return bundles to the pending-details queue after a failed fetch.
    pub fn unmark_detail_requested(&mut self, bundle_ids: &[sandwich_jito::BundleId]) {
        for id in bundle_ids {
            self.detail_requested.remove(id);
        }
    }

    /// Measurement-day index of a collected bundle.
    pub fn day_of(&self, bundle: &CollectedBundle, clock: &SlotClock) -> u64 {
        clock.day_index(bundle.slot)
    }

    /// The three metas of a length-3 bundle, if all details are present.
    pub fn bundle_metas3(&self, bundle: &CollectedBundle) -> Option<[&TransactionMeta; 3]> {
        if bundle.len() != 3 {
            return None;
        }
        let a = &self.details.get(&bundle.tx_ids[0])?.meta;
        let b = &self.details.get(&bundle.tx_ids[1])?.meta;
        let c = &self.details.get(&bundle.tx_ids[2])?.meta;
        Some([a, b, c])
    }

    /// All metas of a bundle in order, if every detail is present
    /// (extended detection over arbitrary lengths).
    pub fn bundle_metas(&self, bundle: &CollectedBundle) -> Option<Vec<&TransactionMeta>> {
        bundle
            .tx_ids
            .iter()
            .map(|id| self.details.get(id).map(|d| &d.meta))
            .collect()
    }

    /// True when a bundle can be drained into a sealed segment: either its
    /// length never gets details fetched, or every detail has arrived — so
    /// each sealed segment is self-contained (a bundle and its details
    /// always share a segment), which is what lets the scan engine process
    /// segments independently.
    fn is_sealable(&self, bundle: &CollectedBundle, detail_lens: &[usize]) -> bool {
        !detail_lens.contains(&bundle.len())
            || bundle.tx_ids.iter().all(|id| self.details.contains_key(id))
    }

    /// Number of bundles currently drainable via [`Dataset::drain_sealable`].
    pub fn sealable_count(&self, detail_lens: &[usize]) -> usize {
        self.bundles
            .iter()
            .filter(|b| self.is_sealable(b, detail_lens))
            .count()
    }

    /// Drain up to `max` sealable bundles (plus their resident details) out
    /// of memory for sealing into a segment. With `force`, *every* resident
    /// bundle drains — including ones still awaiting details — which is the
    /// end-of-run flush. Returns `(bundles, details)`.
    pub fn drain_sealable(
        &mut self,
        detail_lens: &'static [usize],
        max: usize,
        force: bool,
    ) -> (Vec<CollectedBundle>, Vec<CollectedDetail>) {
        let mut drained = Vec::new();
        let mut kept = Vec::with_capacity(self.bundles.len());
        for b in std::mem::take(&mut self.bundles) {
            if drained.len() < max && (force || self.is_sealable(&b, detail_lens)) {
                drained.push(b);
            } else {
                kept.push(b);
            }
        }
        self.bundles = kept;
        let mut details = Vec::new();
        for b in &drained {
            self.detail_requested.remove(&b.bundle_id);
            for tx in &b.tx_ids {
                if let Some(d) = self.details.remove(tx) {
                    details.push(d);
                }
            }
        }
        self.flushed_bundles += drained.len() as u64;
        self.flushed_details += details.len() as u64;
        (drained, details)
    }

    /// Read-only view of the poll records not yet copied into a sealed
    /// segment (the tail a combined store+residual scan still owes).
    pub fn unspilled_polls(&self) -> &[PollRecord] {
        &self.polls[self.polls_spilled..]
    }

    /// Poll records not yet copied into a sealed segment. Polls stay
    /// resident either way (the ledger is tiny and `overlap_rate` needs
    /// it); this only tracks which tail still owes the store a copy.
    pub fn drain_unspilled_polls(&mut self) -> Vec<PollRecord> {
        let tail = self.polls[self.polls_spilled..].to_vec();
        self.polls_spilled = self.polls.len();
        tail
    }

    /// True when nothing (bundles, details, polls) is waiting to be
    /// written to the store.
    pub fn fully_spilled(&self) -> bool {
        self.bundles.is_empty() && self.polls_spilled == self.polls.len()
    }

    /// Serialize the dataset as JSON lines: one `{"kind": ...}` record per
    /// line (bundles, details, polls) — an archive format a four-month
    /// collection can stream to disk and re-analyze offline. When bundles
    /// have been drained into a store, a single `flushed` line carries the
    /// dedup ids and counters the resident records can no longer convey.
    pub fn write_jsonl<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        // Records are serialized by reference in the externally-tagged
        // shape (`{"poll": {...}}`) the owned `DatasetRecord` enum reads
        // back — without cloning every record through an enum first.
        fn tagged<W: std::io::Write, T: Serialize>(
            w: &mut W,
            tag: &str,
            value: &T,
        ) -> std::io::Result<()> {
            write!(w, "{{\"{tag}\":")?;
            serde_json::to_writer(&mut *w, value)?;
            w.write_all(b"}\n")
        }
        for p in &self.polls {
            tagged(&mut w, "poll", p)?;
        }
        for b in &self.bundles {
            tagged(&mut w, "bundle", b)?;
        }
        // HashMap iteration order is randomized per process; sort so the
        // archive is byte-reproducible run to run.
        let mut details: Vec<_> = self.details.values().collect();
        details.sort_by_key(|d| d.meta.tx_id.0);
        for d in details {
            tagged(&mut w, "detail", d)?;
        }
        if self.flushed_bundles > 0 {
            let resident: HashSet<_> = self.bundles.iter().map(|b| b.bundle_id).collect();
            let mut ids: Vec<_> = self
                .seen
                .iter()
                .filter(|id| !resident.contains(id))
                .copied()
                .collect();
            ids.sort_by_key(|id| id.0);
            let flushed = FlushedState {
                ids,
                bundles: self.flushed_bundles,
                details: self.flushed_details,
                polls_spilled: self.polls_spilled as u64,
                max_slot: self.max_slot_seen,
            };
            tagged(&mut w, "flushed", &flushed)?;
        }
        Ok(())
    }

    /// [`Dataset::write_jsonl`] straight to a file, durably: the archive
    /// streams into a temp file which is fsynced, atomically renamed over
    /// `path`, and made durable with a parent-directory fsync — a crash
    /// mid-export leaves either the old archive or the new one, never a
    /// half-written file.
    pub fn write_jsonl_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        write_file_durable(path.as_ref(), |w| self.write_jsonl(w))
    }

    /// Reload a dataset from [`Dataset::write_jsonl`] output. Unknown lines
    /// are rejected; bundle order is restored chronologically by slot.
    pub fn read_jsonl<R: std::io::BufRead>(r: R) -> std::io::Result<Dataset> {
        let mut ds = Dataset::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let record: DatasetRecord = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            match record {
                DatasetRecord::Poll(p) => ds.polls.push(p),
                DatasetRecord::Bundle(b) => {
                    if ds.seen.insert(b.bundle_id) {
                        ds.max_slot_seen = Some(ds.max_slot_seen.unwrap_or(0).max(b.slot.0));
                        ds.bundles.push(b);
                    }
                }
                DatasetRecord::Detail(d) => {
                    ds.details.insert(d.meta.tx_id, d);
                }
                DatasetRecord::Flushed(f) => {
                    ds.seen.extend(f.ids);
                    ds.flushed_bundles += f.bundles;
                    ds.flushed_details += f.details;
                    ds.polls_spilled = f.polls_spilled as usize;
                    ds.max_slot_seen = match (ds.max_slot_seen, f.max_slot) {
                        (a, None) => a,
                        (None, b) => b,
                        (Some(a), Some(b)) => Some(a.max(b)),
                    };
                }
            }
        }
        ds.bundles.sort_by_key(|b| b.slot);
        ds.polls_spilled = ds.polls_spilled.min(ds.polls.len());
        // Rebuild the pending-details bookkeeping: a bundle whose details
        // all survived the roundtrip was requested; anything else goes back
        // in the queue so a resumed run re-fetches it.
        let requested: Vec<_> = ds
            .bundles
            .iter()
            .filter(|b| b.tx_ids.iter().all(|id| ds.details.contains_key(id)))
            .map(|b| b.bundle_id)
            .collect();
        ds.detail_requested.extend(requested);
        Ok(ds)
    }

    /// Archive the whole (resident) dataset into a segment store, sealing
    /// one segment per `segment_bundles` bundles. Details ride in the same
    /// segment as their bundle; the poll ledger goes with the first
    /// segment. This is the offline JSONL → binary conversion path.
    pub fn write_store(
        &self,
        writer: &mut sandwich_store::StoreWriter,
        segment_bundles: usize,
    ) -> std::io::Result<()> {
        let chunk = segment_bundles.max(1);
        let mut polls = Some(self.polls.clone());
        if self.bundles.is_empty() {
            writer.seal_segment(Vec::new(), Vec::new(), polls.take().unwrap_or_default())?;
            return Ok(());
        }
        for bundles in self.bundles.chunks(chunk) {
            let details = bundles
                .iter()
                .flat_map(|b| b.tx_ids.iter())
                .filter_map(|tx| self.details.get(tx).cloned())
                .collect();
            writer.seal_segment(bundles.to_vec(), details, polls.take().unwrap_or_default())?;
        }
        Ok(())
    }
}

/// One line of the JSONL archive format (externally tagged:
/// `{"bundle": {...}}` — internal tagging would buffer through
/// `serde_json::Value`, which cannot carry the i128 token deltas).
#[derive(Deserialize)]
#[serde(rename_all = "snake_case")]
enum DatasetRecord {
    /// A poll log entry.
    Poll(PollRecord),
    /// A collected bundle summary.
    Bundle(CollectedBundle),
    /// A fetched transaction detail.
    Detail(CollectedDetail),
    /// Ids and counters for bundles drained into a sealed store.
    Flushed(FlushedState),
}

/// What the archive must remember about drained records: their ids (for
/// dedup), counts, and the newest slot (the backfill cursor edge).
#[derive(Serialize, Deserialize)]
struct FlushedState {
    ids: Vec<sandwich_jito::BundleId>,
    bundles: u64,
    details: u64,
    polls_spilled: u64,
    max_slot: Option<u64>,
}

/// Stream `fill` into `path` durably: buffered temp file, fsync, atomic
/// rename, parent-directory fsync. Shared by every file-producing artifact
/// in this crate (JSONL archives, checkpoints) so none is ever observably
/// half-written.
pub(crate) fn write_file_durable(
    path: &std::path::Path,
    fill: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut w = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
    fill(&mut w)?;
    use std::io::Write;
    w.flush()?;
    w.into_inner()
        .map_err(|e| std::io::Error::other(e.to_string()))?
        .sync_all()?;
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        sandwich_store::crash::fsync_dir(parent)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_types::Hash;

    fn page_entry(seed: u64, slot: u64, len: usize) -> BundleSummaryJson {
        let kp = sandwich_types::Keypair::from_label("ds");
        BundleSummaryJson {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot,
            timestamp_ms: slot * 400,
            tip_lamports: 1_000,
            transactions: (0..len)
                .map(|i| kp.sign(&(seed * 10 + i as u64).to_le_bytes()))
                .collect(),
        }
    }

    #[test]
    fn dedup_and_overlap_detection() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        // First page: bundles 0..5.
        let p1: Vec<_> = (0..5).rev().map(|i| page_entry(i, i, 1)).collect();
        let r1 = ds.ingest_page(&p1, &clock, 0);
        assert_eq!(r1.new, 5);
        assert!(r1.overlapped_previous, "first poll counts as overlapping");

        // Second page: bundles 3..8 — overlaps.
        let p2: Vec<_> = (3..8).rev().map(|i| page_entry(i, i, 1)).collect();
        let r2 = ds.ingest_page(&p2, &clock, 0);
        assert_eq!(r2.new, 3);
        assert!(r2.overlapped_previous);

        // Third page: bundles 20..22 — a gap.
        let p3: Vec<_> = (20..22).rev().map(|i| page_entry(i, i, 1)).collect();
        let r3 = ds.ingest_page(&p3, &clock, 0);
        assert!(!r3.overlapped_previous);

        assert_eq!(ds.len(), 10);
        // Overlap rate over polls 2..3: one of two overlapped.
        assert!((ds.overlap_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn chronological_storage() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        let page: Vec<_> = (0..4).rev().map(|i| page_entry(i, i * 100, 1)).collect();
        ds.ingest_page(&page, &clock, 0);
        let slots: Vec<u64> = ds.bundles().iter().map(|b| b.slot.0).collect();
        assert_eq!(slots, vec![0, 100, 200, 300]);
    }

    #[test]
    fn pending_detail_ids_marks_and_caps() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        let page: Vec<_> = (0..4).map(|i| page_entry(i, i, 3)).collect();
        ds.ingest_page(&page, &clock, 0);
        let first = ds.pending_detail_ids(3, 6); // room for two bundles
        assert_eq!(first.len(), 6);
        let second = ds.pending_detail_ids(3, 100);
        assert_eq!(second.len(), 6, "remaining two bundles");
        assert!(ds.pending_detail_ids(3, 100).is_empty());
    }

    #[test]
    fn jsonl_roundtrip_preserves_everything() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        let p1: Vec<_> = (0..5).rev().map(|i| page_entry(i, i * 10, 3)).collect();
        ds.ingest_page(&p1, &clock, 0);
        // Attach a detail for the first bundle's first transaction.
        let kp = sandwich_types::Keypair::from_label("ds");
        let detail = sandwich_explorer::TxDetailJson {
            tx_id: kp.sign(&0u64.to_le_bytes()),
            bundle_id: Hash::digest(&0u64.to_le_bytes()),
            slot: 0,
            signer: kp.pubkey(),
            fee_lamports: 5_000,
            priority_fee_lamports: 0,
            success: true,
            sol_deltas: vec![],
            // An i128 delta: regression guard — internally-tagged serde
            // enums buffer through Value and cannot carry i128.
            token_deltas: vec![sandwich_explorer::TokenDeltaJson {
                owner: kp.pubkey(),
                mint: sandwich_types::Pubkey::derive("m"),
                delta: -170_141_183_460_469_231_731_687_303_715i128,
            }],
        };
        ds.ingest_details(&[Some(detail.clone())]);

        let mut buf = Vec::new();
        ds.write_jsonl(&mut buf).unwrap();
        let back = Dataset::read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();

        assert_eq!(back.len(), ds.len());
        assert_eq!(back.detail_count(), 1);
        assert_eq!(back.polls().len(), ds.polls().len());
        assert!((back.overlap_rate() - ds.overlap_rate()).abs() < 1e-12);
        let slots: Vec<u64> = back.bundles().iter().map(|b| b.slot.0).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(slots, sorted, "chronological after reload");
        assert!(back.detail(&detail.tx_id).is_some());
    }

    #[test]
    fn backfill_ingest_reaches_known_bundles() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        // Normal poll over slots 0..5, then a gapped poll over 20..22.
        let p1: Vec<_> = (0..5).rev().map(|i| page_entry(i, i, 1)).collect();
        ds.ingest_page(&p1, &clock, 0);
        let p2: Vec<_> = (20..22).rev().map(|i| page_entry(i, i, 1)).collect();
        let r2 = ds.ingest_page(&p2, &clock, 0);
        assert!(!r2.overlapped_previous);

        // Backfill page covering the hole but not touching known bundles.
        let fill: Vec<_> = (10..20).rev().map(|i| page_entry(i, i, 1)).collect();
        let (new, reached) = ds.ingest_backfill_page(&fill, &clock);
        assert_eq!(new, 10);
        assert!(!reached);

        // Deeper page reaches the previously collected range.
        let fill2: Vec<_> = (3..10).rev().map(|i| page_entry(i, i, 1)).collect();
        let (new, reached) = ds.ingest_backfill_page(&fill2, &clock);
        assert_eq!(new, 5, "bundles 3 and 4 were already collected");
        assert!(reached, "touched bundles 3 and 4");

        ds.mark_last_poll_overlapped();
        assert!(ds.polls().last().unwrap().overlapped_previous);
        ds.sort_chronological();
        let slots: Vec<u64> = ds.bundles().iter().map(|b| b.slot.0).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(slots, sorted);
    }

    #[test]
    fn unmark_requeues_failed_detail_fetches() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        let page: Vec<_> = (0..2).map(|i| page_entry(i, i, 3)).collect();
        ds.ingest_page(&page, &clock, 0);
        let (ids, marked) = ds.take_pending_details(3, 100);
        assert_eq!(ids.len(), 6);
        assert_eq!(marked.len(), 2);
        assert!(ds.pending_detail_ids(3, 100).is_empty());
        // Fetch failed: requeue, then the same work comes back.
        ds.unmark_detail_requested(&marked);
        assert_eq!(ds.pending_detail_ids(3, 100).len(), 6);
    }

    #[test]
    fn jsonl_reload_requeues_incomplete_details() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        let page: Vec<_> = (0..2).map(|i| page_entry(i, i, 3)).collect();
        ds.ingest_page(&page, &clock, 0);
        // Mark both requested but ingest no details: after a reload both
        // must be pending again.
        let (_, marked) = ds.take_pending_details(3, 100);
        assert_eq!(marked.len(), 2);
        let mut buf = Vec::new();
        ds.write_jsonl(&mut buf).unwrap();
        let mut back = Dataset::read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.pending_detail_ids(3, 100).len(), 6);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        let garbage = b"not json at all\n".as_slice();
        assert!(Dataset::read_jsonl(std::io::BufReader::new(garbage)).is_err());
    }

    #[test]
    fn pending_detail_ids_filters_length() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        ds.ingest_page(&[page_entry(1, 1, 1), page_entry(2, 2, 3)], &clock, 0);
        let ids = ds.pending_detail_ids(3, 100);
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn drain_sealable_holds_back_pending_detail_bundles() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        // Two len-1 bundles (sealable immediately), one len-3 (must wait).
        ds.ingest_page(
            &[
                page_entry(1, 1, 1),
                page_entry(2, 2, 3),
                page_entry(3, 3, 1),
            ],
            &clock,
            0,
        );
        assert_eq!(ds.sealable_count(&[3]), 2);
        let (bundles, details) = ds.drain_sealable(&[3], 100, false);
        assert_eq!(bundles.len(), 2);
        assert!(details.is_empty());
        assert_eq!(ds.bundles().len(), 1, "len-3 bundle stays resident");
        assert_eq!(ds.len(), 3, "len counts drained bundles too");
        // Re-poll with the same page: everything deduped against `seen`.
        let rec = ds.ingest_page(&[page_entry(1, 1, 1)], &clock, 0);
        assert_eq!(rec.new, 0);
        assert_eq!(ds.newest_slot(), Some(3), "cursor survives the drain");
        // Force drains the pending bundle as well.
        let (bundles, _) = ds.drain_sealable(&[3], 100, true);
        assert_eq!(bundles.len(), 1);
        assert!(ds.bundles().is_empty());
    }

    #[test]
    fn drained_detail_travels_with_its_bundle() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        let entry = page_entry(7, 7, 3);
        ds.ingest_page(std::slice::from_ref(&entry), &clock, 0);
        assert_eq!(ds.sealable_count(&[3]), 0, "details missing");
        let kp = sandwich_types::Keypair::from_label("ds");
        let details: Vec<_> = (0..3)
            .map(|i| {
                Some(sandwich_explorer::TxDetailJson {
                    tx_id: kp.sign(&(7 * 10 + i as u64).to_le_bytes()),
                    bundle_id: entry.bundle_id,
                    slot: 7,
                    signer: kp.pubkey(),
                    fee_lamports: 5_000,
                    priority_fee_lamports: 0,
                    success: true,
                    sol_deltas: vec![],
                    token_deltas: vec![],
                })
            })
            .collect();
        ds.ingest_details(&details);
        assert_eq!(ds.sealable_count(&[3]), 1);
        let (bundles, drained) = ds.drain_sealable(&[3], 100, false);
        assert_eq!(bundles.len(), 1);
        assert_eq!(drained.len(), 3, "all three details drain together");
        assert_eq!(ds.detail_count(), 3, "count remembers drained details");
        assert!(ds.detail(&details[0].as_ref().unwrap().tx_id).is_none());
    }

    #[test]
    fn jsonl_roundtrip_preserves_flushed_state() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        let page: Vec<_> = (0..6).map(|i| page_entry(i, i, 1)).collect();
        ds.ingest_page(&page, &clock, 0);
        let _ = ds.drain_unspilled_polls();
        let (drained, _) = ds.drain_sealable(&[3], 4, false);
        assert_eq!(drained.len(), 4);

        let mut buf = Vec::new();
        ds.write_jsonl(&mut buf).unwrap();
        let back = Dataset::read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.len(), 6);
        assert_eq!(back.bundles().len(), 2, "only resident bundles rehydrate");
        assert_eq!(back.newest_slot(), Some(5));
        assert!(back.fully_spilled() || !back.fully_spilled()); // smoke: callable
                                                                // Dedup still covers the drained ids.
        let mut back = back;
        let rec = back.ingest_page(&page, &clock, 0);
        assert_eq!(rec.new, 0);
    }
}
