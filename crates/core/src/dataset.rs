//! The collector's dataset: everything scraped from the explorer API.
//!
//! Bundles arrive as overlapping pages of "the most recent N"; the dataset
//! deduplicates by bundle id and records, per poll, whether the new page
//! overlapped the previous one — the paper's completeness argument (§3.1:
//! 95% of successive request pairs overlapped).

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use sandwich_explorer::{BundleSummaryJson, TxDetailJson};
use sandwich_ledger::{TransactionId, TransactionMeta};
use sandwich_types::{Lamports, Slot, SlotClock};

/// One collected bundle record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CollectedBundle {
    /// The bundle id.
    pub bundle_id: sandwich_jito::BundleId,
    /// Landing slot.
    pub slot: Slot,
    /// Landing time (unix ms, from the API).
    pub timestamp_ms: u64,
    /// Tip in lamports.
    pub tip: Lamports,
    /// Transaction ids in bundle order.
    pub tx_ids: Vec<TransactionId>,
}

impl CollectedBundle {
    /// Number of bundled transactions.
    pub fn len(&self) -> usize {
        self.tx_ids.len()
    }

    /// Bundles are never empty.
    pub fn is_empty(&self) -> bool {
        self.tx_ids.is_empty()
    }
}

/// Detail for one transaction of a collected bundle.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CollectedDetail {
    /// The bundle the transaction belongs to.
    pub bundle_id: sandwich_jito::BundleId,
    /// Landing slot.
    pub slot: Slot,
    /// Execution metadata reconstructed from the wire.
    pub meta: TransactionMeta,
}

/// Result of ingesting one page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PollRecord {
    /// Measurement day the poll happened on.
    pub day: u64,
    /// Bundles in the returned page.
    pub fetched: usize,
    /// Bundles not seen before.
    pub new: usize,
    /// Whether the page overlapped previously collected bundles — if every
    /// successive pair overlaps, nothing was missed.
    pub overlapped_previous: bool,
}

/// The collector's accumulated dataset.
#[derive(Default)]
pub struct Dataset {
    bundles: Vec<CollectedBundle>,
    seen: HashSet<sandwich_jito::BundleId>,
    details: HashMap<TransactionId, CollectedDetail>,
    polls: Vec<PollRecord>,
    detail_requested: HashSet<sandwich_jito::BundleId>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Ingest one recent-bundles page (newest-first, as served).
    pub fn ingest_page(
        &mut self,
        page: &[BundleSummaryJson],
        clock: &SlotClock,
        day: u64,
    ) -> PollRecord {
        let fetched = page.len();
        let mut new = 0usize;
        let mut overlapped = false;
        // Store in chronological order: the page is newest-first.
        for b in page.iter().rev() {
            if self.seen.contains(&b.bundle_id) {
                overlapped = true;
                continue;
            }
            self.seen.insert(b.bundle_id);
            self.bundles.push(CollectedBundle {
                bundle_id: b.bundle_id,
                slot: Slot(b.slot),
                timestamp_ms: clock.unix_ms(Slot(b.slot)),
                tip: b.tip(),
                tx_ids: b.transactions.clone(),
            });
            new += 1;
        }
        // The very first poll trivially "overlaps" nothing; count it as
        // overlapping so it does not read as a gap.
        if self.polls.is_empty() && fetched > 0 {
            overlapped = true;
        }
        let record = PollRecord {
            day,
            fetched,
            new,
            overlapped_previous: overlapped || fetched == 0,
        };
        self.polls.push(record);
        record
    }

    /// Ingest a backfill page fetched behind a `before` cursor after a
    /// missed epoch. Unlike [`Dataset::ingest_page`] this logs no poll
    /// record — backfill repairs the gap left by an already-recorded poll.
    ///
    /// Returns `(new_bundles, reached_known)` where `reached_known` is true
    /// once the page touched bundles already collected — the signal that
    /// the gap has been closed.
    pub fn ingest_backfill_page(
        &mut self,
        page: &[BundleSummaryJson],
        clock: &SlotClock,
    ) -> (usize, bool) {
        let mut new = 0usize;
        let mut reached_known = false;
        for b in page.iter().rev() {
            if self.seen.contains(&b.bundle_id) {
                reached_known = true;
                continue;
            }
            self.seen.insert(b.bundle_id);
            self.bundles.push(CollectedBundle {
                bundle_id: b.bundle_id,
                slot: Slot(b.slot),
                timestamp_ms: clock.unix_ms(Slot(b.slot)),
                tip: b.tip(),
                tx_ids: b.transactions.clone(),
            });
            new += 1;
        }
        (new, reached_known)
    }

    /// Newest collected slot, if any (the backfill cursor's starting edge).
    pub fn newest_slot(&self) -> Option<u64> {
        self.bundles.iter().map(|b| b.slot.0).max()
    }

    /// Mark the most recent poll as overlapping — called after a backfill
    /// pass closed the gap that poll had opened.
    pub fn mark_last_poll_overlapped(&mut self) {
        if let Some(last) = self.polls.last_mut() {
            last.overlapped_previous = true;
        }
    }

    /// Restore chronological bundle order after backfill inserted older
    /// bundles behind the newest page.
    pub fn sort_chronological(&mut self) {
        self.bundles.sort_by_key(|b| b.slot);
    }

    /// Ingest a batch of transaction details.
    pub fn ingest_details(&mut self, details: &[Option<TxDetailJson>]) -> usize {
        let mut added = 0;
        for d in details.iter().flatten() {
            self.details.insert(
                d.tx_id,
                CollectedDetail {
                    bundle_id: d.bundle_id,
                    slot: d.slot_typed(),
                    meta: d.to_meta(),
                },
            );
            added += 1;
        }
        added
    }

    /// All collected bundles, in collection (≈ chronological) order.
    pub fn bundles(&self) -> &[CollectedBundle] {
        &self.bundles
    }

    /// Number of collected bundles.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// True when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// Detail for one transaction, if fetched.
    pub fn detail(&self, id: &TransactionId) -> Option<&CollectedDetail> {
        self.details.get(id)
    }

    /// Number of fetched transaction details.
    pub fn detail_count(&self) -> usize {
        self.details.len()
    }

    /// Poll log.
    pub fn polls(&self) -> &[PollRecord] {
        &self.polls
    }

    /// Fraction of successive polls whose pages overlapped (the paper's
    /// 95% completeness statistic). First poll excluded.
    pub fn overlap_rate(&self) -> f64 {
        if self.polls.len() <= 1 {
            return 1.0;
        }
        let later = &self.polls[1..];
        let overlapping = later.iter().filter(|p| p.overlapped_previous).count();
        overlapping as f64 / later.len() as f64
    }

    /// Transaction ids of length-`len` bundles whose details have not been
    /// requested yet; marks them requested. This is the paper's strategy of
    /// fetching details only for bundles of length three (§3.1).
    pub fn pending_detail_ids(&mut self, len: usize, max: usize) -> Vec<TransactionId> {
        self.take_pending_details(len, max).0
    }

    /// Like [`Dataset::pending_detail_ids`], but also returns the bundle
    /// ids that were marked — so a failed fetch can requeue them with
    /// [`Dataset::unmark_detail_requested`] instead of silently losing the
    /// details forever.
    pub fn take_pending_details(
        &mut self,
        len: usize,
        max: usize,
    ) -> (Vec<TransactionId>, Vec<sandwich_jito::BundleId>) {
        let mut out = Vec::new();
        let mut marked = Vec::new();
        for b in &self.bundles {
            if out.len() + len > max {
                break;
            }
            if b.len() == len && !self.detail_requested.contains(&b.bundle_id) {
                self.detail_requested.insert(b.bundle_id);
                marked.push(b.bundle_id);
                out.extend(b.tx_ids.iter().copied());
            }
        }
        (out, marked)
    }

    /// Return bundles to the pending-details queue after a failed fetch.
    pub fn unmark_detail_requested(&mut self, bundle_ids: &[sandwich_jito::BundleId]) {
        for id in bundle_ids {
            self.detail_requested.remove(id);
        }
    }

    /// Measurement-day index of a collected bundle.
    pub fn day_of(&self, bundle: &CollectedBundle, clock: &SlotClock) -> u64 {
        clock.day_index(bundle.slot)
    }

    /// The three metas of a length-3 bundle, if all details are present.
    pub fn bundle_metas3(&self, bundle: &CollectedBundle) -> Option<[&TransactionMeta; 3]> {
        if bundle.len() != 3 {
            return None;
        }
        let a = &self.details.get(&bundle.tx_ids[0])?.meta;
        let b = &self.details.get(&bundle.tx_ids[1])?.meta;
        let c = &self.details.get(&bundle.tx_ids[2])?.meta;
        Some([a, b, c])
    }

    /// All metas of a bundle in order, if every detail is present
    /// (extended detection over arbitrary lengths).
    pub fn bundle_metas(&self, bundle: &CollectedBundle) -> Option<Vec<&TransactionMeta>> {
        bundle
            .tx_ids
            .iter()
            .map(|id| self.details.get(id).map(|d| &d.meta))
            .collect()
    }

    /// Serialize the dataset as JSON lines: one `{"kind": ...}` record per
    /// line (bundles, details, polls) — an archive format a four-month
    /// collection can stream to disk and re-analyze offline.
    pub fn write_jsonl<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        for p in &self.polls {
            serde_json::to_writer(&mut w, &DatasetRecord::Poll(*p))?;
            w.write_all(b"\n")?;
        }
        for b in &self.bundles {
            serde_json::to_writer(&mut w, &DatasetRecord::Bundle(b.clone()))?;
            w.write_all(b"\n")?;
        }
        for d in self.details.values() {
            serde_json::to_writer(&mut w, &DatasetRecord::Detail(d.clone()))?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Reload a dataset from [`Dataset::write_jsonl`] output. Unknown lines
    /// are rejected; bundle order is restored chronologically by slot.
    pub fn read_jsonl<R: std::io::BufRead>(r: R) -> std::io::Result<Dataset> {
        let mut ds = Dataset::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let record: DatasetRecord = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            match record {
                DatasetRecord::Poll(p) => ds.polls.push(p),
                DatasetRecord::Bundle(b) => {
                    if ds.seen.insert(b.bundle_id) {
                        ds.bundles.push(b);
                    }
                }
                DatasetRecord::Detail(d) => {
                    ds.details.insert(d.meta.tx_id, d);
                }
            }
        }
        ds.bundles.sort_by_key(|b| b.slot);
        // Rebuild the pending-details bookkeeping: a bundle whose details
        // all survived the roundtrip was requested; anything else goes back
        // in the queue so a resumed run re-fetches it.
        let requested: Vec<_> = ds
            .bundles
            .iter()
            .filter(|b| b.tx_ids.iter().all(|id| ds.details.contains_key(id)))
            .map(|b| b.bundle_id)
            .collect();
        ds.detail_requested.extend(requested);
        Ok(ds)
    }
}

/// One line of the JSONL archive format (externally tagged:
/// `{"bundle": {...}}` — internal tagging would buffer through
/// `serde_json::Value`, which cannot carry the i128 token deltas).
#[derive(Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
enum DatasetRecord {
    /// A poll log entry.
    Poll(PollRecord),
    /// A collected bundle summary.
    Bundle(CollectedBundle),
    /// A fetched transaction detail.
    Detail(CollectedDetail),
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_types::Hash;

    fn page_entry(seed: u64, slot: u64, len: usize) -> BundleSummaryJson {
        let kp = sandwich_types::Keypair::from_label("ds");
        BundleSummaryJson {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot,
            timestamp_ms: slot * 400,
            tip_lamports: 1_000,
            transactions: (0..len)
                .map(|i| kp.sign(&(seed * 10 + i as u64).to_le_bytes()))
                .collect(),
        }
    }

    #[test]
    fn dedup_and_overlap_detection() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        // First page: bundles 0..5.
        let p1: Vec<_> = (0..5).rev().map(|i| page_entry(i, i, 1)).collect();
        let r1 = ds.ingest_page(&p1, &clock, 0);
        assert_eq!(r1.new, 5);
        assert!(r1.overlapped_previous, "first poll counts as overlapping");

        // Second page: bundles 3..8 — overlaps.
        let p2: Vec<_> = (3..8).rev().map(|i| page_entry(i, i, 1)).collect();
        let r2 = ds.ingest_page(&p2, &clock, 0);
        assert_eq!(r2.new, 3);
        assert!(r2.overlapped_previous);

        // Third page: bundles 20..22 — a gap.
        let p3: Vec<_> = (20..22).rev().map(|i| page_entry(i, i, 1)).collect();
        let r3 = ds.ingest_page(&p3, &clock, 0);
        assert!(!r3.overlapped_previous);

        assert_eq!(ds.len(), 10);
        // Overlap rate over polls 2..3: one of two overlapped.
        assert!((ds.overlap_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn chronological_storage() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        let page: Vec<_> = (0..4).rev().map(|i| page_entry(i, i * 100, 1)).collect();
        ds.ingest_page(&page, &clock, 0);
        let slots: Vec<u64> = ds.bundles().iter().map(|b| b.slot.0).collect();
        assert_eq!(slots, vec![0, 100, 200, 300]);
    }

    #[test]
    fn pending_detail_ids_marks_and_caps() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        let page: Vec<_> = (0..4).map(|i| page_entry(i, i, 3)).collect();
        ds.ingest_page(&page, &clock, 0);
        let first = ds.pending_detail_ids(3, 6); // room for two bundles
        assert_eq!(first.len(), 6);
        let second = ds.pending_detail_ids(3, 100);
        assert_eq!(second.len(), 6, "remaining two bundles");
        assert!(ds.pending_detail_ids(3, 100).is_empty());
    }

    #[test]
    fn jsonl_roundtrip_preserves_everything() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        let p1: Vec<_> = (0..5).rev().map(|i| page_entry(i, i * 10, 3)).collect();
        ds.ingest_page(&p1, &clock, 0);
        // Attach a detail for the first bundle's first transaction.
        let kp = sandwich_types::Keypair::from_label("ds");
        let detail = sandwich_explorer::TxDetailJson {
            tx_id: kp.sign(&0u64.to_le_bytes()),
            bundle_id: Hash::digest(&0u64.to_le_bytes()),
            slot: 0,
            signer: kp.pubkey(),
            fee_lamports: 5_000,
            priority_fee_lamports: 0,
            success: true,
            sol_deltas: vec![],
            // An i128 delta: regression guard — internally-tagged serde
            // enums buffer through Value and cannot carry i128.
            token_deltas: vec![sandwich_explorer::TokenDeltaJson {
                owner: kp.pubkey(),
                mint: sandwich_types::Pubkey::derive("m"),
                delta: -170_141_183_460_469_231_731_687_303_715i128,
            }],
        };
        ds.ingest_details(&[Some(detail.clone())]);

        let mut buf = Vec::new();
        ds.write_jsonl(&mut buf).unwrap();
        let back = Dataset::read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();

        assert_eq!(back.len(), ds.len());
        assert_eq!(back.detail_count(), 1);
        assert_eq!(back.polls().len(), ds.polls().len());
        assert!((back.overlap_rate() - ds.overlap_rate()).abs() < 1e-12);
        let slots: Vec<u64> = back.bundles().iter().map(|b| b.slot.0).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(slots, sorted, "chronological after reload");
        assert!(back.detail(&detail.tx_id).is_some());
    }

    #[test]
    fn backfill_ingest_reaches_known_bundles() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        // Normal poll over slots 0..5, then a gapped poll over 20..22.
        let p1: Vec<_> = (0..5).rev().map(|i| page_entry(i, i, 1)).collect();
        ds.ingest_page(&p1, &clock, 0);
        let p2: Vec<_> = (20..22).rev().map(|i| page_entry(i, i, 1)).collect();
        let r2 = ds.ingest_page(&p2, &clock, 0);
        assert!(!r2.overlapped_previous);

        // Backfill page covering the hole but not touching known bundles.
        let fill: Vec<_> = (10..20).rev().map(|i| page_entry(i, i, 1)).collect();
        let (new, reached) = ds.ingest_backfill_page(&fill, &clock);
        assert_eq!(new, 10);
        assert!(!reached);

        // Deeper page reaches the previously collected range.
        let fill2: Vec<_> = (3..10).rev().map(|i| page_entry(i, i, 1)).collect();
        let (new, reached) = ds.ingest_backfill_page(&fill2, &clock);
        assert_eq!(new, 5, "bundles 3 and 4 were already collected");
        assert!(reached, "touched bundles 3 and 4");

        ds.mark_last_poll_overlapped();
        assert!(ds.polls().last().unwrap().overlapped_previous);
        ds.sort_chronological();
        let slots: Vec<u64> = ds.bundles().iter().map(|b| b.slot.0).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(slots, sorted);
    }

    #[test]
    fn unmark_requeues_failed_detail_fetches() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        let page: Vec<_> = (0..2).map(|i| page_entry(i, i, 3)).collect();
        ds.ingest_page(&page, &clock, 0);
        let (ids, marked) = ds.take_pending_details(3, 100);
        assert_eq!(ids.len(), 6);
        assert_eq!(marked.len(), 2);
        assert!(ds.pending_detail_ids(3, 100).is_empty());
        // Fetch failed: requeue, then the same work comes back.
        ds.unmark_detail_requested(&marked);
        assert_eq!(ds.pending_detail_ids(3, 100).len(), 6);
    }

    #[test]
    fn jsonl_reload_requeues_incomplete_details() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        let page: Vec<_> = (0..2).map(|i| page_entry(i, i, 3)).collect();
        ds.ingest_page(&page, &clock, 0);
        // Mark both requested but ingest no details: after a reload both
        // must be pending again.
        let (_, marked) = ds.take_pending_details(3, 100);
        assert_eq!(marked.len(), 2);
        let mut buf = Vec::new();
        ds.write_jsonl(&mut buf).unwrap();
        let mut back = Dataset::read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.pending_detail_ids(3, 100).len(), 6);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        let garbage = b"not json at all\n".as_slice();
        assert!(Dataset::read_jsonl(std::io::BufReader::new(garbage)).is_err());
    }

    #[test]
    fn pending_detail_ids_filters_length() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        ds.ingest_page(&[page_entry(1, 1, 1), page_entry(2, 2, 3)], &clock, 0);
        let ids = ds.pending_detail_ids(3, 100);
        assert_eq!(ids.len(), 3);
    }
}
