//! Statistics helpers: empirical CDFs, quantiles, and per-day series.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution over f64 samples.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (NaNs dropped).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| !v.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Quantile in [0, 1] with linear interpolation between ranks.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = (self.sorted.len() as f64 - 1.0) * q;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac)
    }

    /// The median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Fraction of samples at or below `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Evenly spaced (value, cumulative fraction) points for plotting.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1).max(1) as f64;
                (self.quantile(q).unwrap(), q)
            })
            .collect()
    }

    /// Mean of the samples.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }
}

/// A per-day time series over the measurement period.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DailySeries {
    /// One value per day.
    pub values: Vec<f64>,
}

impl DailySeries {
    /// A zeroed series of `days` entries.
    pub fn zeros(days: usize) -> Self {
        DailySeries {
            values: vec![0.0; days],
        }
    }

    /// Add to a day's bucket (ignores out-of-range days).
    pub fn add(&mut self, day: u64, amount: f64) {
        if let Some(v) = self.values.get_mut(day as usize) {
            *v += amount;
        }
    }

    /// Sum over all days.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Simple linear-regression slope (per day) — used to assert trends
    /// like "attacks decline" and "defense grows".
    pub fn trend_slope(&self) -> f64 {
        let n = self.values.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let mean_x = (n - 1.0) / 2.0;
        let mean_y = self.total() / n;
        let mut cov = 0.0;
        let mut var = 0.0;
        for (i, &y) in self.values.iter().enumerate() {
            let dx = i as f64 - mean_x;
            cov += dx * (y - mean_y);
            var += dx * dx;
        }
        if var == 0.0 {
            0.0
        } else {
            cov / var
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_known_data() {
        let cdf = Cdf::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(cdf.median(), Some(50.5));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert!((cdf.quantile(0.95).unwrap() - 95.05).abs() < 1e-9);
    }

    #[test]
    fn fraction_at_or_below_counts() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0, 2.0, 10.0]);
        assert!((cdf.fraction_at_or_below(2.0) - 0.75).abs() < 1e-9);
        assert!((cdf.fraction_at_or_below(0.5) - 0.0).abs() < 1e-9);
        assert!((cdf.fraction_at_or_below(100.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cdf_is_graceful() {
        let cdf = Cdf::from_samples(vec![]);
        assert!(cdf.median().is_none());
        assert!(cdf.points(10).is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
    }

    #[test]
    fn quantile_on_empty_and_single_sample() {
        let empty = Cdf::from_samples(vec![]);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile(q), None);
        }
        let single = Cdf::from_samples(vec![42.0]);
        // Every quantile of a one-sample set is that sample, including the
        // out-of-range inputs (clamped).
        for q in [-1.0, 0.0, 0.25, 0.5, 1.0, 2.0] {
            assert_eq!(single.quantile(q), Some(42.0));
        }
        assert_eq!(single.median(), Some(42.0));
        assert_eq!(single.mean(), Some(42.0));
        assert_eq!(single.max(), Some(42.0));
    }

    #[test]
    fn fraction_at_exact_sample_boundaries() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        // Exactly at each sample: that sample is included (at *or* below).
        assert!((cdf.fraction_at_or_below(1.0) - 0.25).abs() < 1e-12);
        assert!((cdf.fraction_at_or_below(2.0) - 0.50).abs() < 1e-12);
        assert!((cdf.fraction_at_or_below(3.0) - 0.75).abs() < 1e-12);
        assert!((cdf.fraction_at_or_below(4.0) - 1.00).abs() < 1e-12);
        // Just below the smallest sample: nothing counted.
        assert_eq!(cdf.fraction_at_or_below(1.0 - 1e-9), 0.0);
        // Between samples: count sticks to the lower boundary.
        assert!((cdf.fraction_at_or_below(2.5) - 0.50).abs() < 1e-12);
    }

    #[test]
    fn points_zero_and_one() {
        let cdf = Cdf::from_samples(vec![5.0, 6.0, 7.0]);
        assert!(cdf.points(0).is_empty());
        // One point: quantile 0, i.e. the minimum, at fraction 0.
        assert_eq!(cdf.points(1), vec![(5.0, 0.0)]);
        // And an empty set yields no points regardless of n.
        assert!(Cdf::from_samples(vec![]).points(1).is_empty());
    }

    #[test]
    fn nan_samples_dropped() {
        let cdf = Cdf::from_samples(vec![1.0, f64::NAN, 3.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn points_are_monotone() {
        let cdf = Cdf::from_samples((0..50).map(|i| (i * i) as f64).collect());
        let pts = cdf.points(20);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn series_trend_detects_direction() {
        let mut up = DailySeries::zeros(10);
        let mut down = DailySeries::zeros(10);
        for d in 0..10u64 {
            up.add(d, d as f64);
            down.add(d, (10 - d) as f64);
        }
        assert!(up.trend_slope() > 0.0);
        assert!(down.trend_slope() < 0.0);
        assert_eq!(DailySeries::zeros(1).trend_slope(), 0.0);
    }

    #[test]
    fn series_out_of_range_ignored() {
        let mut s = DailySeries::zeros(3);
        s.add(99, 1.0);
        assert_eq!(s.total(), 0.0);
    }
}
