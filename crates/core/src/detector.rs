//! The sandwich detector: the paper's five criteria (§3.2) applied to the
//! balance deltas of length-3 bundles, plus the financial quantification of
//! §4.1.
//!
//! 1. txs 1 and 3 signed by the same account A; tx 2 by a different B;
//! 2. the same set of traded currencies in all three transactions;
//! 3. A's first trade moves the exchange rate *against* B;
//! 4. A ends the bundle with a net gain in some traded currency and no net
//!    loss in any other (the MEV profit);
//! 5. bundles whose final transaction only tips a Jito validator are
//!    excluded (app-bundler pattern, not an attack).
//!
//! Each criterion can be disabled individually for the ablation bench.

use serde::{Deserialize, Serialize};

use sandwich_jito::{is_tip_only, realized_tip, tip_accounts};
use sandwich_ledger::TransactionMeta;
use sandwich_types::{Lamports, Pubkey};

/// A currency moved by a trade: native SOL or a token mint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Currency {
    /// Native SOL.
    Sol,
    /// A token mint.
    Token(Pubkey),
}

/// One signer's trade extracted from a transaction's balance deltas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trade {
    /// Currency paid and amount (raw units / lamports).
    pub paid: (Currency, u128),
    /// Currency received and amount.
    pub received: (Currency, u128),
}

impl Trade {
    /// Execution rate: paid per unit received.
    pub fn rate(&self) -> f64 {
        self.paid.1 as f64 / self.received.1 as f64
    }

    /// The set of currencies this trade touches, sorted.
    pub fn currencies(&self) -> [Currency; 2] {
        let mut c = [self.paid.0, self.received.0];
        c.sort();
        c
    }
}

/// Extract the signer's trade from a transaction's deltas, netting out the
/// fee and any Jito tips so that only the market trade remains.
///
/// Returns `None` when the transaction is not a two-currency trade (plain
/// transfers, tip-only transactions, multi-leg spaghetti).
pub fn extract_trade(meta: &TransactionMeta) -> Option<Trade> {
    let signer = meta.signer;
    let mut paid: Option<(Currency, u128)> = None;
    let mut received: Option<(Currency, u128)> = None;

    for d in &meta.token_deltas {
        if d.owner != signer || d.delta == 0 {
            continue;
        }
        let entry = (Currency::Token(d.mint), d.delta.unsigned_abs());
        if d.delta < 0 {
            if paid.replace(entry).is_some() {
                return None; // more than one currency paid
            }
        } else if received.replace(entry).is_some() {
            return None;
        }
    }

    // SOL leg: the signer's net SOL excluding fee and tips paid.
    let tips: Lamports = {
        let accounts = tip_accounts();
        meta.sol_deltas
            .iter()
            .filter(|d| d.delta.is_gain() && accounts.contains(&d.account))
            .map(|d| d.delta.magnitude())
            .sum()
    };
    let sol_net = meta.sol_delta_of(&signer).0 + meta.fee.0 as i64 + tips.0 as i64;
    // Ignore dust below the fee scale (rounding of internal transfers).
    if sol_net < -1_000 {
        let entry = (Currency::Sol, sol_net.unsigned_abs() as u128);
        if paid.replace(entry).is_some() {
            return None;
        }
    } else if sol_net > 1_000 {
        let entry = (Currency::Sol, sol_net as u128);
        if received.replace(entry).is_some() {
            return None;
        }
    }

    match (paid, received) {
        (Some(p), Some(r)) if p.1 > 0 && r.1 > 0 => Some(Trade {
            paid: p,
            received: r,
        }),
        _ => None,
    }
}

/// Which criteria the detector applies (all on by default; toggles exist
/// for the ablation study).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Criterion 1: outer transactions share a signer distinct from the middle.
    pub same_outer_signer: bool,
    /// Criterion 2: identical traded-currency sets.
    pub same_currencies: bool,
    /// Criterion 3: the front-run worsens the victim's rate.
    pub rate_moves_against_victim: bool,
    /// Criterion 4: the attacker nets a gain.
    pub attacker_profits: bool,
    /// Criterion 5: exclude tip-only final transactions.
    pub exclude_tip_only_final: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            same_outer_signer: true,
            same_currencies: true,
            rate_moves_against_victim: true,
            attacker_profits: true,
            exclude_tip_only_final: true,
        }
    }
}

/// Error for a criterion number outside the paper's 1–5 numbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidCriterion(pub u8);

impl std::fmt::Display for InvalidCriterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "criteria are numbered 1-5, got {}", self.0)
    }
}

impl std::error::Error for InvalidCriterion {}

impl DetectorConfig {
    /// A config with the numbered criterion (1–5) disabled.
    pub fn without_criterion(n: u8) -> Result<Self, InvalidCriterion> {
        let mut c = DetectorConfig::default();
        match n {
            1 => c.same_outer_signer = false,
            2 => c.same_currencies = false,
            3 => c.rate_moves_against_victim = false,
            4 => c.attacker_profits = false,
            5 => c.exclude_tip_only_final = false,
            _ => return Err(InvalidCriterion(n)),
        }
        Ok(c)
    }
}

/// A detected sandwich with its financial quantification.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SandwichFinding {
    /// The attacker (signer of transactions 1 and 3).
    pub attacker: Pubkey,
    /// The victim (signer of transaction 2).
    pub victim: Pubkey,
    /// Currencies traded.
    pub currencies: Vec<Currency>,
    /// True when one traded leg is SOL (only these are priced, §3.2).
    pub sol_legged: bool,
    /// Victim loss in lamports at the attacker's rate (`None` when the
    /// trade has no SOL leg).
    pub victim_loss_lamports: Option<u64>,
    /// Attacker gross gain in lamports (`None` when no SOL leg).
    pub attacker_gain_lamports: Option<i128>,
    /// Total Jito tip paid inside the bundle.
    pub bundle_tip: Lamports,
}

/// Apply the five criteria to the metas of a length-3 bundle.
pub fn detect(config: &DetectorConfig, metas: [&TransactionMeta; 3]) -> Option<SandwichFinding> {
    let [m1, m2, m3] = metas;

    // Criterion 5 first: it is an exclusion, independent of trade shape.
    if is_tip_only(m3) {
        if config.exclude_tip_only_final {
            return None;
        }
        // With criterion 5 disabled, fall back to the naive bundle-level
        // reading the criterion exists to exclude: two swaps whose price
        // action looks sandwich-shaped, with the "attacker" ending the
        // bundle holding appreciated inventory. The ablation bench uses
        // this to show the criterion is load-bearing.
        return detect_naive_final_tip(config, m1, m2, m3);
    }

    // Criterion 1.
    if config.same_outer_signer && !(m1.signer == m3.signer && m1.signer != m2.signer) {
        return None;
    }

    let t1 = extract_trade(m1)?;
    let t2 = extract_trade(m2)?;
    let t3 = extract_trade(m3)?;

    // Criterion 2: same currency sets across all three trades.
    if config.same_currencies
        && !(t1.currencies() == t2.currencies() && t2.currencies() == t3.currencies())
    {
        return None;
    }

    // Criterion 3: same direction for front-run and victim, and the
    // victim's realized rate is strictly worse than the attacker's.
    if config.rate_moves_against_victim {
        if t1.paid.0 != t2.paid.0 || t1.received.0 != t2.received.0 {
            return None;
        }
        if t2.rate() <= t1.rate() {
            return None;
        }
    }

    // Criterion 4: attacker's net across the bundle, per traded currency
    // (fees and tips excluded — they are not market flows). The paper's
    // wording has two branches: "net gains currency with no payment", OR
    // "ends with net profit when looking at quantity of coin sold" — the
    // latter covers attackers who dump extra inventory in the back-run
    // (footnote 7), ending token-negative but proceeds-positive.
    if config.attacker_profits {
        let mut nets: std::collections::BTreeMap<Currency, i128> =
            std::collections::BTreeMap::new();
        for t in [&t1, &t3] {
            *nets.entry(t.paid.0).or_insert(0) -= t.paid.1 as i128;
            *nets.entry(t.received.0).or_insert(0) += t.received.1 as i128;
        }
        let any_gain = nets.values().any(|&v| v > 0);
        let no_loss = nets.values().all(|&v| v >= 0);
        let pure_profit = any_gain && no_loss;
        let proceeds_profit = nets.get(&t3.received.0).copied().unwrap_or(0) > 0;
        if !(pure_profit || proceeds_profit) {
            return None;
        }
    }

    let currencies: Vec<Currency> = t2.currencies().to_vec();
    let sol_legged = currencies.contains(&Currency::Sol);

    let (victim_loss_lamports, attacker_gain_lamports) = if sol_legged {
        (
            quantify_victim_loss(&t1, &t2),
            quantify_attacker_gain(&t1, &t3),
        )
    } else {
        (None, None)
    };

    let bundle_tip = realized_tip(m1) + realized_tip(m2) + realized_tip(m3);

    Some(SandwichFinding {
        attacker: m1.signer,
        victim: m2.signer,
        currencies,
        sol_legged,
        victim_loss_lamports,
        attacker_gain_lamports,
        bundle_tip,
    })
}

/// The naive two-legged reading of a bundle whose final transaction only
/// tips: criteria 1–3 applied to the first two trades, with "profit" read
/// as the first signer holding inventory the second trade appreciated.
/// Reached only when criterion 5 is disabled — the real detector excludes
/// these bundles outright, and the ablation grid asserts exactly which
/// near-miss family this admits.
fn detect_naive_final_tip(
    config: &DetectorConfig,
    m1: &TransactionMeta,
    m2: &TransactionMeta,
    m3: &TransactionMeta,
) -> Option<SandwichFinding> {
    if config.same_outer_signer && !(m1.signer == m3.signer && m1.signer != m2.signer) {
        return None;
    }
    let t1 = extract_trade(m1)?;
    let t2 = extract_trade(m2)?;
    if config.same_currencies && t1.currencies() != t2.currencies() {
        return None;
    }
    if config.rate_moves_against_victim {
        if t1.paid.0 != t2.paid.0 || t1.received.0 != t2.received.0 {
            return None;
        }
        if t2.rate() <= t1.rate() {
            return None;
        }
    }
    if config.attacker_profits && t1.received.1 == 0 {
        return None;
    }

    let currencies: Vec<Currency> = t2.currencies().to_vec();
    let sol_legged = currencies.contains(&Currency::Sol);
    let victim_loss_lamports = if sol_legged {
        quantify_victim_loss(&t1, &t2)
    } else {
        None
    };
    let bundle_tip = realized_tip(m1) + realized_tip(m2) + realized_tip(m3);

    Some(SandwichFinding {
        attacker: m1.signer,
        victim: m2.signer,
        currencies,
        sol_legged,
        victim_loss_lamports,
        attacker_gain_lamports: None,
        bundle_tip,
    })
}

/// Extended detection beyond the paper: scan *every ordered triple* inside
/// a bundle of any length for the sandwich pattern. This catches the
/// disguised attacks (extra unrelated transactions appended) that the
/// paper's length-3 methodology explicitly counts as missed — quantifying
/// how much of a lower bound the published numbers are.
///
/// Returns each detected triple as (indices, finding). Overlapping triples
/// are deduplicated by keeping the first hit per victim transaction.
pub fn detect_in_bundle(
    config: &DetectorConfig,
    metas: &[&TransactionMeta],
) -> Vec<([usize; 3], SandwichFinding)> {
    let n = metas.len();
    let mut findings: Vec<([usize; 3], SandwichFinding)> = Vec::new();
    let mut claimed_victims = std::collections::HashSet::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if claimed_victims.contains(&j) {
                continue;
            }
            for k in (j + 1)..n {
                if let Some(finding) = detect(config, [metas[i], metas[j], metas[k]]) {
                    claimed_victims.insert(j);
                    findings.push(([i, j, k], finding));
                    break;
                }
            }
        }
    }
    findings
}

/// Victim loss (§4.1): the attacker's rate times the victim's volume gives
/// the price the victim *would* have paid; the difference is the loss.
fn quantify_victim_loss(t1: &Trade, t2: &Trade) -> Option<u64> {
    match (t2.paid.0, t2.received.0) {
        // Victim pays SOL for tokens: loss in SOL paid.
        (Currency::Sol, Currency::Token(_)) => {
            let fair_sol = t1.rate() * t2.received.1 as f64;
            let loss = t2.paid.1 as f64 - fair_sol;
            Some(loss.max(0.0) as u64)
        }
        // Victim sells tokens for SOL: loss is the SOL they missed out on.
        (Currency::Token(_), Currency::Sol) => {
            // Attacker's rate in SOL per token sold: received/paid of t1.
            let fair_sol = t2.paid.1 as f64 * (t1.received.1 as f64 / t1.paid.1 as f64);
            let loss = fair_sol - t2.received.1 as f64;
            Some(loss.max(0.0) as u64)
        }
        _ => None,
    }
}

/// Attacker gross gain (§4.1): SOL out of the back-run minus SOL into the
/// front-run (tips/fees already excluded by trade extraction).
fn quantify_attacker_gain(t1: &Trade, t3: &Trade) -> Option<i128> {
    match (t1.paid.0, t3.received.0) {
        (Currency::Sol, Currency::Sol) => Some(t3.received.1 as i128 - t1.paid.1 as i128),
        _ => match (t1.received.0, t3.paid.0) {
            // Attacker sold SOL-priced tokens first, re-bought after.
            (Currency::Sol, Currency::Sol) => Some(t1.received.1 as i128 - t3.paid.1 as i128),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_jito::tip_account;
    use sandwich_ledger::{SolDelta, TokenDelta};
    use sandwich_types::{Keypair, LamportDelta};

    fn pk(label: &str) -> Pubkey {
        Keypair::from_label(label).pubkey()
    }

    fn mint() -> Pubkey {
        Pubkey::derive("mint:DET")
    }

    /// A swap meta: signer pays `sol_paid` lamports (besides fee/tip) and
    /// receives `tokens` (negative = sells tokens, receives SOL).
    fn swap_meta(
        signer_label: &str,
        n: u64,
        sol_delta_trade: i64,
        tokens: i128,
        tip: u64,
    ) -> TransactionMeta {
        let kp = Keypair::from_label(signer_label);
        let fee = 5_000i64;
        let mut sol_deltas = vec![SolDelta {
            account: kp.pubkey(),
            delta: LamportDelta(sol_delta_trade - fee - tip as i64),
        }];
        if tip > 0 {
            sol_deltas.push(SolDelta {
                account: tip_account(0),
                delta: LamportDelta(tip as i64),
            });
        }
        TransactionMeta {
            tx_id: kp.sign(&n.to_le_bytes()),
            signer: kp.pubkey(),
            fee: Lamports(fee as u64),
            priority_fee: Lamports::ZERO,
            success: true,
            error: None,
            sol_deltas,
            token_deltas: if tokens != 0 {
                vec![TokenDelta {
                    owner: kp.pubkey(),
                    mint: mint(),
                    delta: tokens,
                }]
            } else {
                vec![]
            },
        }
    }

    /// The canonical Table-1 sandwich: attacker buys 10,000 tokens for
    /// 100 SOL-ish, victim buys at a worse rate, attacker sells at a profit.
    fn canonical() -> (TransactionMeta, TransactionMeta, TransactionMeta) {
        let front = swap_meta("attacker", 1, -100_000_000_000, 10_000, 0);
        let victim = swap_meta("victim", 2, -120_000_000_000, 10_000, 0); // worse rate
        let back = swap_meta("attacker", 3, 115_000_000_000, -10_000, 2_000_000);
        (front, victim, back)
    }

    #[test]
    fn canonical_sandwich_detected_and_priced() {
        let (f, v, b) = canonical();
        let finding = detect(&DetectorConfig::default(), [&f, &v, &b]).expect("detected");
        assert_eq!(finding.attacker, pk("attacker"));
        assert_eq!(finding.victim, pk("victim"));
        assert!(finding.sol_legged);
        // Victim paid 120 SOL for 10,000 tokens; at the attacker's rate
        // (100 SOL) they'd have paid 100 → loss 20 SOL.
        assert_eq!(finding.victim_loss_lamports, Some(20_000_000_000));
        // Attacker: out 115, in 100 → gain 15 SOL (tip excluded from trade).
        assert_eq!(finding.attacker_gain_lamports, Some(15_000_000_000));
        assert_eq!(finding.bundle_tip, Lamports(2_000_000));
    }

    #[test]
    fn criterion1_rejects_three_signers() {
        let (f, v, _) = canonical();
        let b = swap_meta("other", 3, 115_000_000_000, -10_000, 0);
        assert!(detect(&DetectorConfig::default(), [&f, &v, &b]).is_none());
        assert!(detect(&DetectorConfig::without_criterion(1).unwrap(), [&f, &v, &b]).is_some());
    }

    #[test]
    fn criterion1_rejects_same_victim_and_attacker() {
        let f = swap_meta("attacker", 1, -100_000_000_000, 10_000, 0);
        let v = swap_meta("attacker", 2, -120_000_000_000, 10_000, 0);
        let b = swap_meta("attacker", 3, 115_000_000_000, -10_000, 0);
        assert!(detect(&DetectorConfig::default(), [&f, &v, &b]).is_none());
    }

    #[test]
    fn criterion2_rejects_different_mints() {
        let (f, v, b) = canonical();
        let mut v2 = v.clone();
        v2.token_deltas[0].mint = Pubkey::derive("mint:OTHER");
        assert!(detect(&DetectorConfig::default(), [&f, &v2, &b]).is_none());
        // Criterion 3's direction check partially subsumes criterion 2 for
        // this shape: only with both disabled does the mismatch slip through
        // (the outer legs still satisfy criteria 1 and 4).
        let mut relaxed = DetectorConfig::without_criterion(2).unwrap();
        relaxed.rate_moves_against_victim = false;
        assert!(detect(&relaxed, [&f, &v2, &b]).is_some());
    }

    #[test]
    fn criterion3_rejects_rate_improving_first_leg() {
        // Attacker sells first (improves the victim's buy rate).
        let f = swap_meta("attacker", 1, 100_000_000_000, -10_000, 0);
        let v = swap_meta("victim", 2, -90_000_000_000, 10_000, 0);
        let b = swap_meta("attacker", 3, -95_000_000_000, 10_000, 2_000_000);
        assert!(detect(&DetectorConfig::default(), [&f, &v, &b]).is_none());
    }

    #[test]
    fn criterion3_rejects_victim_with_better_rate() {
        let f = swap_meta("attacker", 1, -100_000_000_000, 10_000, 0);
        let v = swap_meta("victim", 2, -90_000_000_000, 10_000, 0); // better rate!
        let b = swap_meta("attacker", 3, 95_000_000_000, -10_000, 0);
        assert!(detect(&DetectorConfig::default(), [&f, &v, &b]).is_none());
    }

    #[test]
    fn criterion4_rejects_unprofitable_attacker() {
        let f = swap_meta("attacker", 1, -100_000_000_000, 10_000, 0);
        let v = swap_meta("victim", 2, -120_000_000_000, 10_000, 0);
        // Attacker sells at a loss.
        let b = swap_meta("attacker", 3, 90_000_000_000, -10_000, 0);
        assert!(detect(&DetectorConfig::default(), [&f, &v, &b]).is_none());
        assert!(detect(&DetectorConfig::without_criterion(4).unwrap(), [&f, &v, &b]).is_some());
    }

    #[test]
    fn criterion5_excludes_tip_only_final() {
        // Two swaps then a pure tip transaction by the same first signer —
        // an app pattern, not an attack.
        let f = swap_meta("app-user", 1, -100_000_000_000, 10_000, 0);
        let v = swap_meta("someone", 2, -120_000_000_000, 10_000, 0);
        let tip_only = swap_meta("app-user", 3, 0, 0, 10_000);
        assert!(detect(&DetectorConfig::default(), [&f, &v, &tip_only]).is_none());
        // Without criterion 5 the naive bundle-level reading kicks in: the
        // first signer holds inventory the second swap appreciated, so the
        // pattern is (wrongly) admitted — exactly what the criterion is for.
        let finding = detect(
            &DetectorConfig::without_criterion(5).unwrap(),
            [&f, &v, &tip_only],
        )
        .expect("naive reading admits the app pattern");
        assert_eq!(finding.attacker, pk("app-user"));
        assert_eq!(finding.attacker_gain_lamports, None, "no exit leg");
        assert!(finding.victim_loss_lamports.unwrap() > 0);
    }

    #[test]
    fn without_criterion_rejects_out_of_range() {
        assert!(DetectorConfig::without_criterion(0).is_err());
        assert!(DetectorConfig::without_criterion(6).is_err());
        assert_eq!(
            DetectorConfig::without_criterion(9).unwrap_err(),
            InvalidCriterion(9)
        );
        for n in 1..=5 {
            assert!(DetectorConfig::without_criterion(n).is_ok());
        }
    }

    #[test]
    fn non_sol_sandwich_detected_but_unpriced() {
        // Token–token: A pays mint X for mint Y, etc.
        let mint_x = Pubkey::derive("mint:X");
        let mint_y = Pubkey::derive("mint:Y");
        let make = |label: &str, n: u64, dx: i128, dy: i128| {
            let kp = Keypair::from_label(label);
            TransactionMeta {
                tx_id: kp.sign(&n.to_le_bytes()),
                signer: kp.pubkey(),
                fee: Lamports(5_000),
                priority_fee: Lamports::ZERO,
                success: true,
                error: None,
                sol_deltas: vec![SolDelta {
                    account: kp.pubkey(),
                    delta: LamportDelta(-5_000),
                }],
                token_deltas: vec![
                    TokenDelta {
                        owner: kp.pubkey(),
                        mint: mint_x,
                        delta: dx,
                    },
                    TokenDelta {
                        owner: kp.pubkey(),
                        mint: mint_y,
                        delta: dy,
                    },
                ],
            }
        };
        let f = make("attacker", 1, -1_000_000, 500_000);
        let v = make("victim", 2, -1_300_000, 500_000);
        let b = make("attacker", 3, 1_200_000, -500_000);
        let finding = detect(&DetectorConfig::default(), [&f, &v, &b]).expect("detected");
        assert!(!finding.sol_legged);
        assert_eq!(finding.victim_loss_lamports, None);
        assert_eq!(finding.attacker_gain_lamports, None);
    }

    #[test]
    fn sell_direction_sandwich_priced() {
        // Victim SELLS tokens; attacker sells first, re-buys after.
        let f = swap_meta("attacker", 1, 100_000_000_000, -10_000, 0);
        let v = swap_meta("victim", 2, 80_000_000_000, -10_000, 0); // victim receives less per token
        let b = swap_meta("attacker", 3, -85_000_000_000, 10_000, 0);
        let finding = detect(&DetectorConfig::default(), [&f, &v, &b]).expect("detected");
        // At the attacker's rate the victim would have received 100 SOL;
        // they got 80 → loss 20 SOL.
        assert_eq!(finding.victim_loss_lamports, Some(20_000_000_000));
        // Attacker: received 100, re-bought for 85 → gain 15 SOL.
        assert_eq!(finding.attacker_gain_lamports, Some(15_000_000_000));
    }

    #[test]
    fn trade_extraction_strips_fee_and_tip() {
        let m = swap_meta("attacker", 9, -1_000_000, 42, 777_000);
        let t = extract_trade(&m).unwrap();
        assert_eq!(t.paid, (Currency::Sol, 1_000_000));
        assert_eq!(t.received, (Currency::Token(mint()), 42));
    }

    #[test]
    fn transfer_only_is_not_a_trade() {
        let m = swap_meta("someone", 9, -1_000_000, 0, 0);
        assert!(extract_trade(&m).is_none());
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn extract_orientation_matches_delta_signs(
            sol_mag in 1_001i64..1_000_000_000_000,
            sol_sign in prop::bool::ANY,
            tok_mag in 1i128..1_000_000_000_000,
            tok_sign in prop::bool::ANY,
            tip in 0u64..10_000_000,
        ) {
            // Opposite-signed legs form a trade whose paid/received sides
            // follow the delta signs; same-signed legs are not a trade.
            let sol = if sol_sign { sol_mag } else { -sol_mag };
            let tokens = if tok_sign { tok_mag } else { -tok_mag };
            let m = swap_meta("prop", 1, sol, tokens, tip);
            match extract_trade(&m) {
                Some(t) => {
                    prop_assert!(sol_sign != tok_sign, "one leg in, one leg out");
                    let (sol_leg, tok_leg) = if sol_sign {
                        (t.received, t.paid)
                    } else {
                        (t.paid, t.received)
                    };
                    prop_assert_eq!(sol_leg, (Currency::Sol, sol_mag as u128));
                    prop_assert_eq!(
                        tok_leg,
                        (Currency::Token(mint()), tok_mag as u128)
                    );
                    // Rate is finite and positive for every extracted trade.
                    prop_assert!(t.rate().is_finite());
                    prop_assert!(t.rate() > 0.0);
                }
                None => prop_assert!(
                    sol_sign == tok_sign,
                    "opposite-signed legs above dust must extract"
                ),
            }
        }

        #[test]
        fn zero_amount_legs_rejected(
            sol in -1_000i64..1_001,
            tip in 0u64..10_000_000,
        ) {
            // A dust-scale SOL move with no token leg is never a trade, and
            // a zero token delta contributes no leg at all.
            let no_tokens = swap_meta("prop", 2, sol, 0, tip);
            prop_assert!(extract_trade(&no_tokens).is_none());

            let mut zero_tok = swap_meta("prop", 3, sol, 1, tip);
            zero_tok.token_deltas[0].delta = 0;
            prop_assert!(extract_trade(&zero_tok).is_none());
        }

        #[test]
        fn fee_and_tip_never_leak_into_the_trade(
            sol_mag in 1_001i64..1_000_000_000,
            tok in 1i128..1_000_000,
            tip in 0u64..50_000_000,
        ) {
            // The extracted SOL leg must equal the market move exactly,
            // regardless of how large the tip was.
            let m = swap_meta("prop", 4, -sol_mag, tok, tip);
            let t = extract_trade(&m).expect("valid trade");
            prop_assert_eq!(t.paid, (Currency::Sol, sol_mag as u128));
        }
    }
}
