//! The collector: the paper's data-collection methodology (§3.1) as a
//! client of the explorer API.
//!
//! Every ~2 minutes it requests the most recent `page_limit` bundles
//! (the paper raised the endpoint's limit from 200 to 50,000), checks that
//! successive pages overlap (completeness), and separately batch-fetches
//! transaction details — only for length-3 bundles, which average 2.77% of
//! volume and carry the canonical sandwich shape.
//!
//! The collector is self-healing: an overlap miss (or the gap left by a
//! failed epoch) triggers a bounded backfill that pages deeper through the
//! `before` cursor until the gap is closed; a run of hard failures opens a
//! circuit breaker that degrades polling to cheap single-attempt probes
//! until the backend recovers.

use std::sync::Arc;

use sandwich_explorer::{RecentBundlesResponse, TxDetailsRequest, TxDetailsResponse};
use sandwich_net::{
    retry_classified, BreakerConfig, BreakerState, CircuitBreaker, ClientError, ClientTimeouts,
    HttpClient, RetryClass, RetryPolicy,
};
use sandwich_obs::{Counter, Gauge, Histogram, Registry};
use sandwich_store::{SegmentMeta, StoreWriter};
use sandwich_types::SlotClock;

use crate::dataset::{Dataset, PollRecord};

/// Collector tunables.
#[derive(Clone, Copy, Debug)]
pub struct CollectorConfig {
    /// Page size requested from the bundles endpoint.
    pub page_limit: usize,
    /// Transactions per detail batch (the paper used 10,000).
    pub detail_batch: usize,
    /// Bundle lengths whose details are fetched. The paper fetched only
    /// length 3; extended (lower-bound) analysis adds 4 and 5.
    pub detail_bundle_lens: &'static [usize],
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Per-request connect/total deadlines.
    pub timeouts: ClientTimeouts,
    /// Circuit-breaker tunables (cooldown measured on the simulated clock
    /// the pipeline passes as `now_ms`).
    pub breaker: BreakerConfig,
    /// Maximum deeper pages fetched per overlap miss. Bounds how much of
    /// a long outage backfill will heal — a day-long gap stays a visible
    /// gap, a single missed epoch is recovered in full.
    pub backfill_max_pages: u32,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            page_limit: 50_000,
            detail_batch: 10_000,
            detail_bundle_lens: &[3],
            retry: RetryPolicy::default(),
            timeouts: ClientTimeouts::default(),
            breaker: BreakerConfig::default(),
            backfill_max_pages: 8,
        }
    }
}

/// Cumulative collector health counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CollectorStats {
    /// Successful bundle polls.
    pub polls_ok: u64,
    /// Bundle polls that failed after retries.
    pub polls_failed: u64,
    /// Polls skipped because the circuit breaker was open.
    pub polls_skipped: u64,
    /// Detail batches fetched.
    pub detail_batches: u64,
    /// Transaction details stored.
    pub details_fetched: u64,
    /// Total retry attempts spent.
    pub attempts: u64,
    /// Backfill pages fetched after overlap misses.
    pub backfill_pages: u64,
    /// Bundles recovered by backfill.
    pub bundles_recovered: u64,
    /// Requests that hit a client-side deadline.
    pub timeouts: u64,
    /// Segments sealed into the bundle store (store mode only).
    pub segments_sealed: u64,
    /// Bytes of sealed segment files written (store mode only).
    pub store_bytes_written: u64,
}

/// Cached metric handles for collection health (`collector.` prefix, plus
/// the `client.` resilience metrics).
struct CollectorMetrics {
    polls_ok: Arc<Counter>,
    polls_failed: Arc<Counter>,
    polls_skipped_breaker: Arc<Counter>,
    retry_attempts: Arc<Counter>,
    overlap_misses: Arc<Counter>,
    poll_seconds: Arc<Histogram>,
    detail_backlog: Arc<Gauge>,
    detail_batches: Arc<Counter>,
    details_fetched: Arc<Counter>,
    details_failed: Arc<Counter>,
    backfill_pages: Arc<Counter>,
    bundles_recovered: Arc<Counter>,
    client_timeouts: Arc<Counter>,
    breaker_state: Arc<Gauge>,
    segments_sealed: Arc<Counter>,
    store_bytes_written: Arc<Counter>,
}

impl CollectorMetrics {
    fn new(registry: &Registry) -> Self {
        CollectorMetrics {
            polls_ok: registry.counter("collector.polls_ok"),
            polls_failed: registry.counter("collector.polls_failed"),
            polls_skipped_breaker: registry.counter("collector.polls_skipped_breaker"),
            retry_attempts: registry.counter("collector.retry_attempts"),
            overlap_misses: registry.counter("collector.overlap_misses"),
            poll_seconds: registry.histogram("collector.poll_seconds"),
            detail_backlog: registry.gauge("collector.detail_backlog"),
            detail_batches: registry.counter("collector.detail_batches"),
            details_fetched: registry.counter("collector.details_fetched"),
            details_failed: registry.counter("collector.details_failed"),
            backfill_pages: registry.counter("collector.backfill_pages"),
            bundles_recovered: registry.counter("collector.bundles_recovered"),
            client_timeouts: registry.counter("client.timeouts"),
            breaker_state: registry.gauge("client.breaker_state"),
            segments_sealed: registry.counter(sandwich_obs::names::STORE_SEGMENTS_SEALED),
            store_bytes_written: registry.counter(sandwich_obs::names::STORE_BYTES_WRITTEN),
        }
    }
}

/// Classify a client error for the retry loop, feeding 429 pacing hints
/// back as the next delay.
fn classify(e: &ClientError) -> RetryClass {
    if let Some(hint) = e.retry_after() {
        return RetryClass::AfterHint(hint);
    }
    if e.is_transient() {
        RetryClass::Transient
    } else {
        RetryClass::Permanent
    }
}

/// The collector's segment-store sink: where sealed segments go and how
/// many bundles trigger a seal.
struct StoreSink {
    writer: StoreWriter,
    segment_bundles: usize,
}

/// The polling client plus its accumulated dataset.
pub struct Collector {
    client: HttpClient,
    config: CollectorConfig,
    metrics: Option<CollectorMetrics>,
    breaker: CircuitBreaker,
    store: Option<StoreSink>,
    /// Everything collected so far (the staging area in store mode).
    pub dataset: Dataset,
    /// Health counters.
    pub stats: CollectorStats,
}

impl Collector {
    /// A collector aimed at an explorer instance.
    pub fn new(addr: std::net::SocketAddr, config: CollectorConfig) -> Self {
        Collector {
            client: HttpClient::new(addr).with_timeouts(config.timeouts),
            breaker: CircuitBreaker::new(config.breaker),
            config,
            metrics: None,
            store: None,
            dataset: Dataset::new(),
            stats: CollectorStats::default(),
        }
    }

    /// A collector that also records collection health into `registry`
    /// under the `collector.` prefix.
    pub fn with_registry(
        addr: std::net::SocketAddr,
        config: CollectorConfig,
        registry: &Registry,
    ) -> Self {
        let mut collector = Collector::new(addr, config);
        collector.metrics = Some(CollectorMetrics::new(registry));
        collector
    }

    /// Current circuit-breaker state at simulated time `now_ms`.
    pub fn breaker_state(&mut self, now_ms: u64) -> BreakerState {
        self.breaker.state_at(now_ms)
    }

    /// Restore checkpointed state: the dataset and cumulative counters
    /// pick up where the killed run left off. The restored counters are
    /// replayed into the registry so `/metrics` stays consistent with
    /// `stats` across a resume. The breaker restarts closed — worst case
    /// the first poll re-discovers a still-down backend.
    pub fn restore(&mut self, stats: CollectorStats, dataset: Dataset) {
        if let Some(m) = &self.metrics {
            m.polls_ok.add(stats.polls_ok);
            m.polls_failed.add(stats.polls_failed);
            m.polls_skipped_breaker.add(stats.polls_skipped);
            m.retry_attempts.add(stats.attempts);
            m.detail_batches.add(stats.detail_batches);
            m.details_fetched.add(stats.details_fetched);
            m.backfill_pages.add(stats.backfill_pages);
            m.bundles_recovered.add(stats.bundles_recovered);
            m.client_timeouts.add(stats.timeouts);
            m.segments_sealed.add(stats.segments_sealed);
            m.store_bytes_written.add(stats.store_bytes_written);
        }
        self.stats = stats;
        self.dataset = dataset;
    }

    /// Attach a segment-store sink: from now on, [`Collector::flush_store`]
    /// seals a segment whenever `segment_bundles` bundles are sealable,
    /// keeping resident memory bounded by the threshold plus the
    /// detail-pending backlog.
    pub fn attach_store(&mut self, writer: StoreWriter, segment_bundles: usize) {
        self.store = Some(StoreSink {
            writer,
            segment_bundles: segment_bundles.max(1),
        });
    }

    /// The attached store writer's sealed-segment manifest, if any.
    pub fn store_segments(&self) -> Option<&[SegmentMeta]> {
        self.store.as_ref().map(|s| s.writer.segments())
    }

    /// Detach and return the store writer (end of run, before analysis).
    pub fn take_store(&mut self) -> Option<StoreWriter> {
        self.store.take().map(|s| s.writer)
    }

    /// Seal every full segment currently drainable from the dataset; with
    /// `force`, seal everything left (end-of-run flush), including bundles
    /// still awaiting details and the unspilled poll tail. Returns the
    /// metadata of segments sealed by this call, in seal order. A no-op
    /// without an attached store.
    pub fn flush_store(&mut self, force: bool) -> std::io::Result<Vec<SegmentMeta>> {
        let Some(sink) = &mut self.store else {
            return Ok(Vec::new());
        };
        let lens = self.config.detail_bundle_lens;
        let mut sealed = Vec::new();
        loop {
            let due = if force {
                !self.dataset.fully_spilled()
            } else {
                self.dataset.sealable_count(lens) >= sink.segment_bundles
            };
            if !due {
                break;
            }
            let (bundles, details) = self
                .dataset
                .drain_sealable(lens, sink.segment_bundles, force);
            let polls = self.dataset.drain_unspilled_polls();
            let meta = sink.writer.seal_segment(bundles, details, polls)?;
            self.stats.segments_sealed += 1;
            self.stats.store_bytes_written += meta.bytes;
            if let Some(m) = &self.metrics {
                m.segments_sealed.inc();
                m.store_bytes_written.add(meta.bytes);
            }
            sealed.push(meta);
        }
        Ok(sealed)
    }

    /// The retry policy for the current breaker state: half-open probes
    /// are single-attempt so a still-down backend costs one request, not a
    /// whole retry ladder.
    fn policy_for(&mut self, now_ms: u64) -> RetryPolicy {
        if self.breaker.state_at(now_ms) == BreakerState::HalfOpen {
            RetryPolicy {
                max_attempts: 1,
                ..self.config.retry
            }
        } else {
            self.config.retry
        }
    }

    fn record_outcome(&mut self, ok: bool, now_ms: u64) {
        if ok {
            self.breaker.record_success();
        } else {
            self.breaker.record_failure(now_ms);
        }
        if let Some(m) = &self.metrics {
            m.breaker_state
                .set(self.breaker.state_at(now_ms).as_gauge());
        }
    }

    fn count_timeouts(&mut self, n: u64) {
        if n > 0 {
            self.stats.timeouts += n;
            if let Some(m) = &self.metrics {
                m.client_timeouts.add(n);
            }
        }
    }

    /// One polling epoch at simulated time `now_ms`: fetch the most recent
    /// page, ingest it, and heal any overlap miss by backfilling.
    ///
    /// Returns `Ok(None)` when the circuit breaker is open and the poll was
    /// skipped (degraded mode) — not a failure, not a success.
    pub async fn poll_bundles(
        &mut self,
        clock: &SlotClock,
        day: u64,
        now_ms: u64,
    ) -> Result<Option<PollRecord>, ClientError> {
        if !self.breaker.allow(now_ms) {
            self.stats.polls_skipped += 1;
            if let Some(m) = &self.metrics {
                m.polls_skipped_breaker.inc();
                m.breaker_state
                    .set(self.breaker.state_at(now_ms).as_gauge());
            }
            return Ok(None);
        }
        let client = self.client;
        let policy = self.policy_for(now_ms);
        let path = format!("/api/v1/bundles?limit={}", self.config.page_limit);
        let started = std::time::Instant::now();
        // Count every attempt that hit a client deadline, including ones a
        // later retry recovered — `client.timeouts` is an attempt-level
        // signal, not a poll-level one.
        let timed_out = std::cell::Cell::new(0u64);
        let outcome = retry_classified(
            policy,
            || client.get_json::<RecentBundlesResponse>(&path),
            |e| {
                if e.is_timeout() {
                    timed_out.set(timed_out.get() + 1);
                }
                classify(e)
            },
        )
        .await;
        self.count_timeouts(timed_out.get());
        self.stats.attempts += outcome.attempts as u64;
        if let Some(m) = &self.metrics {
            m.poll_seconds.observe(started.elapsed().as_secs_f64());
            m.retry_attempts
                .add(outcome.attempts.saturating_sub(1) as u64);
        }
        self.record_outcome(outcome.result.is_ok(), now_ms);
        match outcome.result {
            Ok(page) => {
                self.stats.polls_ok += 1;
                let had_prior_poll = !self.dataset.polls().is_empty();
                let prior_newest = self.dataset.newest_slot();
                let rec = self.dataset.ingest_page(&page.bundles, clock, day);
                if let Some(m) = &self.metrics {
                    m.polls_ok.inc();
                    if had_prior_poll && !rec.overlapped_previous {
                        m.overlap_misses.inc();
                    }
                }
                let mut rec = rec;
                if had_prior_poll && !rec.overlapped_previous {
                    // The page did not touch anything previously collected:
                    // an epoch was missed. Page deeper until the gap closes
                    // (bounded, so a day-long outage stays a visible gap).
                    let oldest_fetched = page.bundles.last().map(|b| b.slot);
                    if let (Some(cursor), Some(_)) = (oldest_fetched, prior_newest) {
                        if self.backfill(clock, cursor).await {
                            self.dataset.mark_last_poll_overlapped();
                            rec.overlapped_previous = true;
                        }
                    }
                    self.dataset.sort_chronological();
                }
                Ok(Some(rec))
            }
            Err(e) => {
                self.stats.polls_failed += 1;
                if let Some(m) = &self.metrics {
                    m.polls_failed.inc();
                }
                Err(e)
            }
        }
    }

    /// Page deeper through the `before` cursor until a page overlaps
    /// already-collected bundles, comes back empty, or the page budget is
    /// spent. Returns true when the gap was closed.
    async fn backfill(&mut self, clock: &SlotClock, mut cursor: u64) -> bool {
        let client = self.client;
        for _ in 0..self.config.backfill_max_pages {
            let path = format!(
                "/api/v1/bundles?limit={}&before={}",
                self.config.page_limit, cursor
            );
            let timed_out = std::cell::Cell::new(0u64);
            let outcome = retry_classified(
                self.config.retry,
                || client.get_json::<RecentBundlesResponse>(&path),
                |e| {
                    if e.is_timeout() {
                        timed_out.set(timed_out.get() + 1);
                    }
                    classify(e)
                },
            )
            .await;
            self.count_timeouts(timed_out.get());
            self.stats.attempts += outcome.attempts as u64;
            if let Some(m) = &self.metrics {
                m.retry_attempts
                    .add(outcome.attempts.saturating_sub(1) as u64);
            }
            let page = match outcome.result {
                Ok(page) => page,
                // Backend still unhealthy: give up, leave the gap.
                Err(_) => return false,
            };
            self.stats.backfill_pages += 1;
            if let Some(m) = &self.metrics {
                m.backfill_pages.inc();
            }
            if page.bundles.is_empty() {
                // Walked past the beginning of history: nothing older
                // exists, so there is no gap below us.
                return true;
            }
            let (new, reached_known) = self.dataset.ingest_backfill_page(&page.bundles, clock);
            self.stats.bundles_recovered += new as u64;
            if let Some(m) = &self.metrics {
                m.bundles_recovered.add(new as u64);
            }
            if reached_known {
                return true;
            }
            cursor = page.bundles.last().map(|b| b.slot).unwrap_or(cursor);
        }
        false
    }

    /// Fetch details for all length-3 bundles not yet resolved, in batches.
    /// Returns the number of details stored; skips entirely (Ok(0)) while
    /// the breaker is open. A failed batch is requeued, not lost.
    pub async fn fetch_pending_details(&mut self, now_ms: u64) -> Result<usize, ClientError> {
        if !self.breaker.allow(now_ms) {
            return Ok(0);
        }
        let client = self.client;
        let mut total = 0usize;
        for &len in self.config.detail_bundle_lens {
            loop {
                let (ids, marked) = self
                    .dataset
                    .take_pending_details(len, self.config.detail_batch);
                if let Some(m) = &self.metrics {
                    m.detail_backlog.set(ids.len() as i64);
                }
                if ids.is_empty() {
                    break;
                }
                let policy = self.policy_for(now_ms);
                let request = TxDetailsRequest { tx_ids: ids };
                let timed_out = std::cell::Cell::new(0u64);
                let outcome = retry_classified(
                    policy,
                    || client.post_json::<_, TxDetailsResponse>("/api/v1/transactions", &request),
                    |e| {
                        if e.is_timeout() {
                            timed_out.set(timed_out.get() + 1);
                        }
                        classify(e)
                    },
                )
                .await;
                self.count_timeouts(timed_out.get());
                self.stats.attempts += outcome.attempts as u64;
                if let Some(m) = &self.metrics {
                    m.retry_attempts
                        .add(outcome.attempts.saturating_sub(1) as u64);
                    if outcome.result.is_err() {
                        m.details_failed.inc();
                    }
                }
                self.record_outcome(outcome.result.is_ok(), now_ms);
                let resp = match outcome.result {
                    Ok(resp) => resp,
                    Err(e) => {
                        // Requeue: these bundles' details are still owed.
                        self.dataset.unmark_detail_requested(&marked);
                        return Err(e);
                    }
                };
                let added = self.dataset.ingest_details(&resp.transactions);
                self.stats.detail_batches += 1;
                self.stats.details_fetched += added as u64;
                if let Some(m) = &self.metrics {
                    m.detail_batches.inc();
                    m.details_fetched.add(added as u64);
                }
                total += added;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use parking_lot::RwLock;
    use sandwich_explorer::{Explorer, ExplorerConfig, HistoryStore, RetentionPolicy};
    use sandwich_jito::LandedBundle;
    use sandwich_types::{Hash, Keypair, Lamports, Slot};

    fn landed(slot: u64, len: usize, seed: u64) -> LandedBundle {
        let kp = Keypair::from_label("col");
        LandedBundle {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot: Slot(slot),
            tip: Lamports(2_000),
            metas: (0..len)
                .map(|i| sandwich_ledger::TransactionMeta {
                    tx_id: kp.sign(&(seed * 100 + i as u64).to_le_bytes()),
                    signer: kp.pubkey(),
                    fee: Lamports(5_000),
                    priority_fee: Lamports::ZERO,
                    success: true,
                    error: None,
                    sol_deltas: vec![],
                    token_deltas: vec![],
                })
                .collect(),
        }
    }

    async fn explorer_with(bundles: Vec<LandedBundle>, cfg: ExplorerConfig) -> Explorer {
        let mut store = HistoryStore::new(SlotClock::default(), RetentionPolicy::All);
        for b in &bundles {
            store.record_bundle(b);
        }
        Explorer::start(Arc::new(RwLock::new(store)), cfg)
            .await
            .unwrap()
    }

    #[tokio::test]
    async fn polls_and_overlap_accounting() {
        let bundles: Vec<_> = (0..30).map(|i| landed(i, 1, i)).collect();
        let explorer = explorer_with(bundles, ExplorerConfig::default()).await;
        let mut collector = Collector::new(
            explorer.addr(),
            CollectorConfig {
                page_limit: 20,
                ..Default::default()
            },
        );
        let clock = SlotClock::default();
        let rec = collector.poll_bundles(&clock, 0, 0).await.unwrap().unwrap();
        assert_eq!(rec.fetched, 20);
        assert_eq!(rec.new, 20);
        let rec2 = collector.poll_bundles(&clock, 0, 0).await.unwrap().unwrap();
        assert_eq!(rec2.new, 0);
        assert!(rec2.overlapped_previous);
        assert_eq!(collector.dataset.len(), 20);
        assert_eq!(collector.stats.polls_ok, 2);
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn survives_transient_failures_via_retry() {
        use sandwich_explorer::FaultPlanConfig;

        let bundles: Vec<_> = (0..5).map(|i| landed(i, 1, i)).collect();
        let explorer = explorer_with(
            bundles,
            ExplorerConfig {
                faults: FaultPlanConfig::uniform_503(0.5, 3),
                ..Default::default()
            },
        )
        .await;
        let mut collector = Collector::new(
            explorer.addr(),
            CollectorConfig {
                retry: RetryPolicy {
                    base_delay: std::time::Duration::from_millis(1),
                    max_delay: std::time::Duration::from_millis(4),
                    ..RetryPolicy::default()
                },
                ..Default::default()
            },
        );
        let clock = SlotClock::default();
        // With four attempts per poll at 50% failure, ten polls virtually
        // always succeed overall. Spread polls across fault-plan buckets so
        // each draws fresh fault decisions.
        let mut ok = 0;
        for i in 0..10u64 {
            if matches!(
                collector.poll_bundles(&clock, 0, i * 61_000).await,
                Ok(Some(_))
            ) {
                ok += 1;
            }
            collector.breaker.record_success(); // isolate retry behaviour
        }
        assert!(ok >= 8, "{ok} of 10 polls succeeded");
        assert!(
            collector.stats.attempts > collector.stats.polls_ok,
            "retries happened"
        );
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn fetches_details_for_length3_only() {
        let bundles = vec![
            landed(1, 1, 1),
            landed(2, 3, 2),
            landed(3, 3, 3),
            landed(4, 5, 4),
        ];
        let explorer = explorer_with(bundles, ExplorerConfig::default()).await;
        let mut collector = Collector::new(explorer.addr(), CollectorConfig::default());
        let clock = SlotClock::default();
        collector.poll_bundles(&clock, 0, 0).await.unwrap();
        let added = collector.fetch_pending_details(0).await.unwrap();
        assert_eq!(added, 6, "two length-3 bundles × 3 transactions");
        assert_eq!(collector.dataset.detail_count(), 6);
        // Idempotent: nothing further pending.
        assert_eq!(collector.fetch_pending_details(0).await.unwrap(), 0);
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn detail_batches_respect_batch_size() {
        let bundles: Vec<_> = (0..10).map(|i| landed(i, 3, i)).collect();
        let explorer = explorer_with(bundles, ExplorerConfig::default()).await;
        let mut collector = Collector::new(
            explorer.addr(),
            CollectorConfig {
                detail_batch: 6, // two bundles per batch
                ..Default::default()
            },
        );
        let clock = SlotClock::default();
        collector.poll_bundles(&clock, 0, 0).await.unwrap();
        let added = collector.fetch_pending_details(0).await.unwrap();
        assert_eq!(added, 30);
        assert_eq!(collector.stats.detail_batches, 5);
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn backfill_recovers_a_dropped_page() {
        // 60 bundles exist; the collector's page only covers the newest 20.
        // First poll sees 0..20 (oldest), then 40 more land before the next
        // poll — a deliberate gap of one full page.
        let mut store = HistoryStore::new(SlotClock::default(), RetentionPolicy::All);
        for i in 0..20u64 {
            store.record_bundle(&landed(i, 1, i));
        }
        let store = Arc::new(RwLock::new(store));
        let explorer = Explorer::start(store.clone(), ExplorerConfig::default())
            .await
            .unwrap();
        let mut collector = Collector::new(
            explorer.addr(),
            CollectorConfig {
                page_limit: 20,
                ..Default::default()
            },
        );
        let clock = SlotClock::default();
        collector.poll_bundles(&clock, 0, 0).await.unwrap();
        assert_eq!(collector.dataset.len(), 20);

        // 40 more bundles land: the next page (40..60) misses 20..40.
        for i in 20..60u64 {
            store.write().record_bundle(&landed(i, 1, i));
        }
        let rec = collector.poll_bundles(&clock, 0, 1).await.unwrap().unwrap();
        // Backfill healed the gap and patched the poll record.
        assert!(rec.overlapped_previous, "gap closed by backfill");
        assert_eq!(collector.dataset.len(), 60, "all 60 bundles collected");
        assert!(collector.stats.backfill_pages >= 1);
        assert_eq!(collector.stats.bundles_recovered, 20);
        assert_eq!(collector.dataset.overlap_rate(), 1.0);
        // Chronological order restored despite out-of-order ingestion.
        let slots: Vec<u64> = collector
            .dataset
            .bundles()
            .iter()
            .map(|b| b.slot.0)
            .collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(slots, sorted);
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn breaker_opens_during_outage_and_recovers() {
        use sandwich_explorer::FaultPlanConfig;

        let bundles: Vec<_> = (0..10).map(|i| landed(i, 1, i)).collect();
        let explorer = explorer_with(
            bundles,
            ExplorerConfig {
                faults: FaultPlanConfig {
                    outages_ms: vec![(0, 100_000)],
                    ..FaultPlanConfig::default()
                },
                ..Default::default()
            },
        )
        .await;
        let mut collector = Collector::new(
            explorer.addr(),
            CollectorConfig {
                retry: RetryPolicy {
                    base_delay: std::time::Duration::from_millis(1),
                    max_delay: std::time::Duration::from_millis(2),
                    ..RetryPolicy::default()
                },
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    cooldown_ms: 10_000,
                },
                ..Default::default()
            },
        );
        let clock = SlotClock::default();
        // Three failing polls trip the breaker.
        for t in 0..3u64 {
            assert!(collector.poll_bundles(&clock, 0, t * 1_000).await.is_err());
        }
        assert_eq!(collector.breaker_state(3_000), BreakerState::Open);
        // While open, polls are skipped without touching the network.
        let before = collector.stats.attempts;
        assert!(matches!(
            collector.poll_bundles(&clock, 0, 4_000).await,
            Ok(None)
        ));
        assert_eq!(collector.stats.attempts, before, "no request sent");
        assert_eq!(collector.stats.polls_skipped, 1);
        // After the cooldown, a half-open probe fails (still in outage) and
        // re-opens; explorer time must advance past the outage first.
        explorer.set_now_ms(100_000);
        assert!(matches!(
            collector.poll_bundles(&clock, 0, 14_000).await,
            Ok(Some(_))
        ));
        assert_eq!(collector.breaker_state(14_000), BreakerState::Closed);
        explorer.shutdown().await;
    }
}
