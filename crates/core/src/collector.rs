//! The collector: the paper's data-collection methodology (§3.1) as a
//! client of the explorer API.
//!
//! Every ~2 minutes it requests the most recent `page_limit` bundles
//! (the paper raised the endpoint's limit from 200 to 50,000), checks that
//! successive pages overlap (completeness), and separately batch-fetches
//! transaction details — only for length-3 bundles, which average 2.77% of
//! volume and carry the canonical sandwich shape.

use std::sync::Arc;

use sandwich_explorer::{RecentBundlesResponse, TxDetailsRequest, TxDetailsResponse};
use sandwich_net::{retry, ClientError, HttpClient, RetryPolicy};
use sandwich_obs::{Counter, Gauge, Histogram, Registry};
use sandwich_types::SlotClock;

use crate::dataset::{Dataset, PollRecord};

/// Collector tunables.
#[derive(Clone, Copy, Debug)]
pub struct CollectorConfig {
    /// Page size requested from the bundles endpoint.
    pub page_limit: usize,
    /// Transactions per detail batch (the paper used 10,000).
    pub detail_batch: usize,
    /// Bundle lengths whose details are fetched. The paper fetched only
    /// length 3; extended (lower-bound) analysis adds 4 and 5.
    pub detail_bundle_lens: &'static [usize],
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            page_limit: 50_000,
            detail_batch: 10_000,
            detail_bundle_lens: &[3],
            retry: RetryPolicy::default(),
        }
    }
}

/// Cumulative collector health counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CollectorStats {
    /// Successful bundle polls.
    pub polls_ok: u64,
    /// Bundle polls that failed after retries.
    pub polls_failed: u64,
    /// Detail batches fetched.
    pub detail_batches: u64,
    /// Transaction details stored.
    pub details_fetched: u64,
    /// Total retry attempts spent.
    pub attempts: u64,
}

/// Cached metric handles for collection health (`collector.` prefix).
struct CollectorMetrics {
    polls_ok: Arc<Counter>,
    polls_failed: Arc<Counter>,
    retry_attempts: Arc<Counter>,
    overlap_misses: Arc<Counter>,
    poll_seconds: Arc<Histogram>,
    detail_backlog: Arc<Gauge>,
    detail_batches: Arc<Counter>,
    details_fetched: Arc<Counter>,
    details_failed: Arc<Counter>,
}

impl CollectorMetrics {
    fn new(registry: &Registry) -> Self {
        CollectorMetrics {
            polls_ok: registry.counter("collector.polls_ok"),
            polls_failed: registry.counter("collector.polls_failed"),
            retry_attempts: registry.counter("collector.retry_attempts"),
            overlap_misses: registry.counter("collector.overlap_misses"),
            poll_seconds: registry.histogram("collector.poll_seconds"),
            detail_backlog: registry.gauge("collector.detail_backlog"),
            detail_batches: registry.counter("collector.detail_batches"),
            details_fetched: registry.counter("collector.details_fetched"),
            details_failed: registry.counter("collector.details_failed"),
        }
    }
}

/// The polling client plus its accumulated dataset.
pub struct Collector {
    client: HttpClient,
    config: CollectorConfig,
    metrics: Option<CollectorMetrics>,
    /// Everything collected so far.
    pub dataset: Dataset,
    /// Health counters.
    pub stats: CollectorStats,
}

impl Collector {
    /// A collector aimed at an explorer instance.
    pub fn new(addr: std::net::SocketAddr, config: CollectorConfig) -> Self {
        Collector {
            client: HttpClient::new(addr),
            config,
            metrics: None,
            dataset: Dataset::new(),
            stats: CollectorStats::default(),
        }
    }

    /// A collector that also records collection health into `registry`
    /// under the `collector.` prefix.
    pub fn with_registry(
        addr: std::net::SocketAddr,
        config: CollectorConfig,
        registry: &Registry,
    ) -> Self {
        let mut collector = Collector::new(addr, config);
        collector.metrics = Some(CollectorMetrics::new(registry));
        collector
    }

    /// One polling epoch: fetch the most recent page and ingest it.
    pub async fn poll_bundles(
        &mut self,
        clock: &SlotClock,
        day: u64,
    ) -> Result<PollRecord, ClientError> {
        let client = self.client;
        let path = format!("/api/v1/bundles?limit={}", self.config.page_limit);
        let started = std::time::Instant::now();
        let outcome = retry(
            self.config.retry,
            || client.get_json::<RecentBundlesResponse>(&path),
            ClientError::is_transient,
        )
        .await;
        self.stats.attempts += outcome.attempts as u64;
        if let Some(m) = &self.metrics {
            m.poll_seconds.observe(started.elapsed().as_secs_f64());
            m.retry_attempts
                .add(outcome.attempts.saturating_sub(1) as u64);
        }
        match outcome.result {
            Ok(page) => {
                self.stats.polls_ok += 1;
                let had_prior_poll = !self.dataset.polls().is_empty();
                let rec = self.dataset.ingest_page(&page.bundles, clock, day);
                if let Some(m) = &self.metrics {
                    m.polls_ok.inc();
                    if had_prior_poll && !rec.overlapped_previous {
                        m.overlap_misses.inc();
                    }
                }
                Ok(rec)
            }
            Err(e) => {
                self.stats.polls_failed += 1;
                if let Some(m) = &self.metrics {
                    m.polls_failed.inc();
                }
                Err(e)
            }
        }
    }

    /// Fetch details for all length-3 bundles not yet resolved, in batches.
    /// Returns the number of details stored.
    pub async fn fetch_pending_details(&mut self) -> Result<usize, ClientError> {
        let client = self.client;
        let mut total = 0usize;
        for &len in self.config.detail_bundle_lens {
            loop {
                let ids = self
                    .dataset
                    .pending_detail_ids(len, self.config.detail_batch);
                if let Some(m) = &self.metrics {
                    m.detail_backlog.set(ids.len() as i64);
                }
                if ids.is_empty() {
                    break;
                }
                let request = TxDetailsRequest { tx_ids: ids };
                let outcome = retry(
                    self.config.retry,
                    || client.post_json::<_, TxDetailsResponse>("/api/v1/transactions", &request),
                    ClientError::is_transient,
                )
                .await;
                self.stats.attempts += outcome.attempts as u64;
                if let Some(m) = &self.metrics {
                    m.retry_attempts
                        .add(outcome.attempts.saturating_sub(1) as u64);
                    if outcome.result.is_err() {
                        m.details_failed.inc();
                    }
                }
                let resp = outcome.result?;
                let added = self.dataset.ingest_details(&resp.transactions);
                self.stats.detail_batches += 1;
                self.stats.details_fetched += added as u64;
                if let Some(m) = &self.metrics {
                    m.detail_batches.inc();
                    m.details_fetched.add(added as u64);
                }
                total += added;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use parking_lot::RwLock;
    use sandwich_explorer::{Explorer, ExplorerConfig, HistoryStore, RetentionPolicy};
    use sandwich_jito::LandedBundle;
    use sandwich_types::{Hash, Keypair, Lamports, Slot};

    fn landed(slot: u64, len: usize, seed: u64) -> LandedBundle {
        let kp = Keypair::from_label("col");
        LandedBundle {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot: Slot(slot),
            tip: Lamports(2_000),
            metas: (0..len)
                .map(|i| sandwich_ledger::TransactionMeta {
                    tx_id: kp.sign(&(seed * 100 + i as u64).to_le_bytes()),
                    signer: kp.pubkey(),
                    fee: Lamports(5_000),
                    priority_fee: Lamports::ZERO,
                    success: true,
                    error: None,
                    sol_deltas: vec![],
                    token_deltas: vec![],
                })
                .collect(),
        }
    }

    async fn explorer_with(bundles: Vec<LandedBundle>, cfg: ExplorerConfig) -> Explorer {
        let mut store = HistoryStore::new(SlotClock::default(), RetentionPolicy::All);
        for b in &bundles {
            store.record_bundle(b);
        }
        Explorer::start(Arc::new(RwLock::new(store)), cfg)
            .await
            .unwrap()
    }

    #[tokio::test]
    async fn polls_and_overlap_accounting() {
        let bundles: Vec<_> = (0..30).map(|i| landed(i, 1, i)).collect();
        let explorer = explorer_with(bundles, ExplorerConfig::default()).await;
        let mut collector = Collector::new(
            explorer.addr(),
            CollectorConfig {
                page_limit: 20,
                ..Default::default()
            },
        );
        let clock = SlotClock::default();
        let rec = collector.poll_bundles(&clock, 0).await.unwrap();
        assert_eq!(rec.fetched, 20);
        assert_eq!(rec.new, 20);
        let rec2 = collector.poll_bundles(&clock, 0).await.unwrap();
        assert_eq!(rec2.new, 0);
        assert!(rec2.overlapped_previous);
        assert_eq!(collector.dataset.len(), 20);
        assert_eq!(collector.stats.polls_ok, 2);
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn survives_transient_failures_via_retry() {
        let bundles: Vec<_> = (0..5).map(|i| landed(i, 1, i)).collect();
        let explorer = explorer_with(
            bundles,
            ExplorerConfig {
                transient_failure_rate: 0.5,
                seed: 3,
                ..Default::default()
            },
        )
        .await;
        let mut collector = Collector::new(explorer.addr(), CollectorConfig::default());
        let clock = SlotClock::default();
        // With four attempts per poll at 50% failure, ten polls virtually
        // always succeed overall.
        let mut ok = 0;
        for _ in 0..10 {
            if collector.poll_bundles(&clock, 0).await.is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 8, "{ok} of 10 polls succeeded");
        assert!(
            collector.stats.attempts > collector.stats.polls_ok,
            "retries happened"
        );
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn fetches_details_for_length3_only() {
        let bundles = vec![
            landed(1, 1, 1),
            landed(2, 3, 2),
            landed(3, 3, 3),
            landed(4, 5, 4),
        ];
        let explorer = explorer_with(bundles, ExplorerConfig::default()).await;
        let mut collector = Collector::new(explorer.addr(), CollectorConfig::default());
        let clock = SlotClock::default();
        collector.poll_bundles(&clock, 0).await.unwrap();
        let added = collector.fetch_pending_details().await.unwrap();
        assert_eq!(added, 6, "two length-3 bundles × 3 transactions");
        assert_eq!(collector.dataset.detail_count(), 6);
        // Idempotent: nothing further pending.
        assert_eq!(collector.fetch_pending_details().await.unwrap(), 0);
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn detail_batches_respect_batch_size() {
        let bundles: Vec<_> = (0..10).map(|i| landed(i, 3, i)).collect();
        let explorer = explorer_with(bundles, ExplorerConfig::default()).await;
        let mut collector = Collector::new(
            explorer.addr(),
            CollectorConfig {
                detail_batch: 6, // two bundles per batch
                ..Default::default()
            },
        );
        let clock = SlotClock::default();
        collector.poll_bundles(&clock, 0).await.unwrap();
        let added = collector.fetch_pending_details().await.unwrap();
        assert_eq!(added, 30);
        assert_eq!(collector.stats.detail_batches, 5);
        explorer.shutdown().await;
    }
}
