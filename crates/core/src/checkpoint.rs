//! Checkpoint/resume for the measurement pipeline.
//!
//! A four-month collection must survive being killed. A checkpoint is the
//! dataset archive (JSONL, as written by [`Dataset::write_jsonl`]) prefixed
//! with one header line carrying the poll cursor (the next tick to
//! process) and the collector's health counters. Resuming replays the
//! simulation deterministically up to the cursor without polling, then
//! continues collecting as if never interrupted.

use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize};

use crate::collector::CollectorStats;
use crate::dataset::Dataset;

/// A point-in-time snapshot of a measurement run.
pub struct Checkpoint {
    /// The first tick the resumed run should process.
    pub next_tick: u64,
    /// Collector health counters accumulated so far.
    pub stats: CollectorStats,
    /// Everything collected so far.
    pub dataset: Dataset,
}

/// The header line at the top of a checkpoint stream.
#[derive(Serialize, Deserialize)]
struct CheckpointHeader {
    checkpoint: CursorRecord,
}

#[derive(Serialize, Deserialize)]
struct CursorRecord {
    next_tick: u64,
    stats: CollectorStats,
}

impl Checkpoint {
    /// Serialize: one header line, then the dataset archive.
    pub fn write<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let header = CheckpointHeader {
            checkpoint: CursorRecord {
                next_tick: self.next_tick,
                stats: self.stats,
            },
        };
        serde_json::to_writer(&mut w, &header)?;
        w.write_all(b"\n")?;
        self.dataset.write_jsonl(w)
    }

    /// Reload a checkpoint written by [`Checkpoint::write`].
    pub fn read<R: BufRead>(mut r: R) -> std::io::Result<Checkpoint> {
        let mut first = String::new();
        r.read_line(&mut first)?;
        let header: CheckpointHeader = serde_json::from_str(first.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let dataset = Dataset::read_jsonl(r)?;
        Ok(Checkpoint {
            next_tick: header.checkpoint.next_tick,
            stats: header.checkpoint.stats,
            dataset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_cursor_and_stats() {
        let stats = CollectorStats {
            polls_ok: 12,
            polls_failed: 2,
            bundles_recovered: 40,
            ..Default::default()
        };
        let cp = Checkpoint {
            next_tick: 77,
            stats,
            dataset: Dataset::new(),
        };
        let mut buf = Vec::new();
        cp.write(&mut buf).unwrap();
        let back = Checkpoint::read(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.next_tick, 77);
        assert_eq!(back.stats, stats);
        assert!(back.dataset.is_empty());
    }

    #[test]
    fn missing_header_is_an_error() {
        let garbage = b"{\"poll\":{}}\n".as_slice();
        assert!(Checkpoint::read(std::io::BufReader::new(garbage)).is_err());
    }
}
