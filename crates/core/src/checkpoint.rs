//! Checkpoint/resume for the measurement pipeline.
//!
//! A four-month collection must survive being killed. A checkpoint is one
//! header line carrying the poll cursor (the next tick to process), the
//! collector's health counters, and — in store mode — a *reference* to the
//! segment store (its directory plus the sealed-segment manifest), followed
//! by the JSONL archive of whatever is still resident in memory. Sealed
//! segments are never re-serialized into the checkpoint and never re-read
//! on resume: the manifest entry is the segment, checksummed and on disk.
//! Resuming replays the simulation deterministically up to the cursor
//! without polling, reattaches the store writer (discarding any orphan
//! segments sealed after the checkpoint was written), and continues
//! collecting as if never interrupted.

use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize};

use sandwich_store::SegmentMeta;

use crate::collector::CollectorStats;
use crate::dataset::Dataset;

/// A point-in-time snapshot of a measurement run.
pub struct Checkpoint {
    /// The first tick the resumed run should process.
    pub next_tick: u64,
    /// Collector health counters accumulated so far.
    pub stats: CollectorStats,
    /// Records still resident in memory (everything, in legacy mode).
    pub dataset: Dataset,
    /// The segment store this run was flushing into, if any.
    pub store: Option<StoreCheckpoint>,
}

/// A by-reference handle to a segment store: enough to reattach the writer
/// without reading any segment data.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreCheckpoint {
    /// Store directory (holds the manifest and the segment files).
    pub dir: String,
    /// Segments sealed when the checkpoint was taken. Resume truncates the
    /// on-disk manifest back to exactly this list.
    pub segments: Vec<SegmentMeta>,
}

/// The header line at the top of a checkpoint stream.
#[derive(Serialize, Deserialize)]
struct CheckpointHeader {
    checkpoint: CursorRecord,
}

#[derive(Serialize, Deserialize)]
struct CursorRecord {
    next_tick: u64,
    stats: CollectorStats,
    store: Option<StoreCheckpoint>,
}

impl Checkpoint {
    /// Serialize: one header line, then the residual dataset archive.
    pub fn write<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let header = CheckpointHeader {
            checkpoint: CursorRecord {
                next_tick: self.next_tick,
                stats: self.stats,
                store: self.store.clone(),
            },
        };
        serde_json::to_writer(&mut w, &header)?;
        w.write_all(b"\n")?;
        self.dataset.write_jsonl(w)
    }

    /// [`Checkpoint::write`] straight to a file, durably (temp file +
    /// fsync + atomic rename + directory fsync): a crash mid-checkpoint
    /// leaves the previous checkpoint intact, never a torn one — which is
    /// the whole point of checkpointing.
    pub fn write_to_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        crate::dataset::write_file_durable(path.as_ref(), |w| self.write(w))
    }

    /// Reload a checkpoint file written by [`Checkpoint::write_to_file`].
    pub fn read_from_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Checkpoint> {
        Checkpoint::read(std::io::BufReader::new(std::fs::File::open(path)?))
    }

    /// Reload a checkpoint written by [`Checkpoint::write`].
    pub fn read<R: BufRead>(mut r: R) -> std::io::Result<Checkpoint> {
        let mut first = String::new();
        r.read_line(&mut first)?;
        let header: CheckpointHeader = serde_json::from_str(first.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let dataset = Dataset::read_jsonl(r)?;
        Ok(Checkpoint {
            next_tick: header.checkpoint.next_tick,
            stats: header.checkpoint.stats,
            dataset,
            store: header.checkpoint.store,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_cursor_and_stats() {
        let stats = CollectorStats {
            polls_ok: 12,
            polls_failed: 2,
            bundles_recovered: 40,
            ..Default::default()
        };
        let cp = Checkpoint {
            next_tick: 77,
            stats,
            dataset: Dataset::new(),
            store: None,
        };
        let mut buf = Vec::new();
        cp.write(&mut buf).unwrap();
        let back = Checkpoint::read(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.next_tick, 77);
        assert_eq!(back.stats, stats);
        assert!(back.dataset.is_empty());
        assert!(back.store.is_none());
    }

    #[test]
    fn roundtrip_preserves_store_reference() {
        let cp = Checkpoint {
            next_tick: 9,
            stats: CollectorStats::default(),
            dataset: Dataset::new(),
            store: Some(StoreCheckpoint {
                dir: "/tmp/some-store".into(),
                segments: vec![SegmentMeta {
                    file: "seg-00000.seg".into(),
                    bundles: 10,
                    details: 3,
                    polls: 2,
                    min_slot: 5,
                    max_slot: 99,
                    bytes: 1234,
                    checksum: "00deadbeef00f00d".into(),
                }],
            }),
        };
        let mut buf = Vec::new();
        cp.write(&mut buf).unwrap();
        let back = Checkpoint::read(std::io::BufReader::new(&buf[..])).unwrap();
        let store = back.store.expect("store reference survived");
        assert_eq!(store.dir, "/tmp/some-store");
        assert_eq!(store.segments.len(), 1);
        assert_eq!(store.segments[0].file, "seg-00000.seg");
        assert_eq!(store.segments[0].checksum, "00deadbeef00f00d");
    }

    #[test]
    fn file_roundtrip_is_durable_and_atomic() {
        let dir = std::env::temp_dir().join(format!("swckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let cp = Checkpoint {
            next_tick: 123,
            stats: CollectorStats::default(),
            dataset: Dataset::new(),
            store: None,
        };
        cp.write_to_file(&path).unwrap();
        assert!(!path.with_extension("tmp").exists(), "no temp residue");
        let back = Checkpoint::read_from_file(&path).unwrap();
        assert_eq!(back.next_tick, 123);
        // Overwrite in place: still atomic, still readable.
        let cp2 = Checkpoint {
            next_tick: 456,
            stats: CollectorStats::default(),
            dataset: Dataset::new(),
            store: None,
        };
        cp2.write_to_file(&path).unwrap();
        assert_eq!(Checkpoint::read_from_file(&path).unwrap().next_tick, 456);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_header_is_an_error() {
        let garbage = b"{\"poll\":{}}\n".as_slice();
        assert!(Checkpoint::read(std::io::BufReader::new(garbage)).is_err());
    }
}
