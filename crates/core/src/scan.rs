//! The scan engine: analysis as a deterministic map/reduce over scan
//! units (sealed segments or the in-memory dataset).
//!
//! Every accumulator in [`ScanPartial`] is either an integer (lamport
//! sums, counts) or an order-insensitive sample bag (CDF inputs, which
//! [`Cdf::from_samples`] sorts). Partials are computed independently per
//! segment by [`sandwich_store::parallel_map`] workers and reduced **in
//! segment order**; floats appear only in [`ScanPartial::finalize`]. The
//! result: [`AnalysisReport`] is bit-identical at 1, 2, or 8 threads, and
//! identical to the single-pass in-memory path
//! ([`crate::analysis::analyze`] is itself one partial + finalize).

use std::collections::HashMap;

use sandwich_ledger::{TransactionId, TransactionMeta};
use sandwich_obs::Registry;
use sandwich_store::{
    parallel_map, BundleStore, Columns, CorruptSegment, SegmentData, SegmentMeta, SegmentView,
    META_C1, META_C2, META_LINKED,
};
use sandwich_types::{Hash, Lamports, Slot, SlotClock};

use crate::analysis::{AnalysisConfig, AnalysisReport, DatedFinding};
use crate::dataset::{CollectedBundle, Dataset, PollRecord};
use crate::defense::{is_defensive_tip, DefenseStats};
use crate::detector::{detect, detect_in_bundle, SandwichFinding};
use crate::stats::{Cdf, DailySeries};

/// Where a scan finds the transaction metas behind a bundle: the dataset's
/// detail map in-memory, or the segment-local map during a store scan
/// (sealed segments are self-contained — a bundle's details always share
/// its segment).
pub trait DetailLookup {
    /// The meta for one transaction, if its detail was fetched.
    fn meta_of(&self, id: &TransactionId) -> Option<&TransactionMeta>;
}

impl DetailLookup for Dataset {
    fn meta_of(&self, id: &TransactionId) -> Option<&TransactionMeta> {
        self.detail(id).map(|d| &d.meta)
    }
}

impl DetailLookup for HashMap<TransactionId, TransactionMeta> {
    fn meta_of(&self, id: &TransactionId) -> Option<&TransactionMeta> {
        self.get(id)
    }
}

/// One scan unit's partial analysis state. Integer accumulators only —
/// floats are produced once, in [`ScanPartial::finalize`] — so merging
/// partials in segment order is exact and order of observation within a
/// unit never leaks into the report.
#[derive(Clone, Debug)]
pub struct ScanPartial {
    days: usize,
    bundles_by_len: [Vec<u64>; 5],
    sandwiches: Vec<u64>,
    defensive: Vec<u64>,
    victim_loss_lamports: Vec<u128>,
    attacker_gain_lamports: Vec<i128>,
    losses_usd: Vec<f64>,
    tips_len1: Vec<f64>,
    tips_len3: Vec<f64>,
    tips_sandwich: Vec<f64>,
    defense: DefenseStats,
    findings: Vec<DatedFinding>,
    non_sol: u64,
    len3_with_details: u64,
    polls: Vec<PollRecord>,
}

fn bump(series: &mut [u64], day: u64) {
    if let Some(v) = series.get_mut(day as usize) {
        *v += 1;
    }
}

impl ScanPartial {
    /// An empty partial covering `days` measurement days.
    pub fn new(days: usize) -> Self {
        ScanPartial {
            days,
            bundles_by_len: std::array::from_fn(|_| vec![0; days]),
            sandwiches: vec![0; days],
            defensive: vec![0; days],
            victim_loss_lamports: vec![0; days],
            attacker_gain_lamports: vec![0; days],
            losses_usd: Vec::new(),
            tips_len1: Vec::new(),
            tips_len3: Vec::new(),
            tips_sandwich: Vec::new(),
            defense: DefenseStats::default(),
            findings: Vec::new(),
            non_sol: 0,
            len3_with_details: 0,
            polls: Vec::new(),
        }
    }

    /// Detected sandwiches folded in so far (streaming progress signal).
    pub fn sandwich_count(&self) -> u64 {
        self.findings.len() as u64
    }

    /// Fold one bundle in, resolving details through `lookup`.
    pub fn observe_bundle<D: DetailLookup>(
        &mut self,
        bundle: &CollectedBundle,
        lookup: &D,
        clock: &SlotClock,
        config: &AnalysisConfig,
    ) {
        let day = clock.day_index(bundle.slot);
        let len = bundle.len().clamp(1, 5);
        bump(&mut self.bundles_by_len[len - 1], day);

        if len == 1 {
            self.observe_len1(day, bundle.tip, config);
            return;
        }

        if len != 3 && !(config.extended && len > 3) {
            return;
        }
        if len == 3 {
            self.tips_len3.push(bundle.tip.0 as f64);
        }
        let finding = if len == 3 {
            let metas = bundle
                .tx_ids
                .iter()
                .map(|id| lookup.meta_of(id))
                .collect::<Option<Vec<_>>>();
            match metas {
                Some(m) => {
                    self.len3_with_details += 1;
                    detect(&config.detector, [m[0], m[1], m[2]])
                }
                None => None,
            }
        } else {
            bundle
                .tx_ids
                .iter()
                .map(|id| lookup.meta_of(id))
                .collect::<Option<Vec<_>>>()
                .and_then(|metas| {
                    detect_in_bundle(&config.detector, &metas)
                        .into_iter()
                        .map(|(_, f)| f)
                        .next()
                })
        };
        let Some(finding) = finding else { return };
        self.fold_finding(day, bundle.bundle_id, bundle.tip, finding, config);
    }

    /// Fold one length-1 bundle in from its day and tip alone — the facts
    /// the columnar fast path reads without materializing the record.
    fn observe_len1(&mut self, day: u64, tip: Lamports, config: &AnalysisConfig) {
        self.tips_len1.push(tip.0 as f64);
        self.defense.observe_len1(tip, config.defensive_threshold);
        if is_defensive_tip(tip, config.defensive_threshold) {
            bump(&mut self.defensive, day);
        }
    }

    /// Fold one confirmed sandwich in. Shared verbatim between the
    /// materializing and zero-copy paths so the report stays byte-identical.
    fn fold_finding(
        &mut self,
        day: u64,
        bundle_id: Hash,
        tip: Lamports,
        finding: SandwichFinding,
        config: &AnalysisConfig,
    ) {
        bump(&mut self.sandwiches, day);
        self.tips_sandwich.push(tip.0 as f64);
        if finding.sol_legged {
            if let Some(loss) = finding.victim_loss_lamports {
                if let Some(v) = self.victim_loss_lamports.get_mut(day as usize) {
                    *v += u128::from(loss);
                }
                self.losses_usd
                    .push(config.oracle.lamports_to_usd(Lamports(loss)));
            }
            if let Some(gain) = finding.attacker_gain_lamports {
                if let Some(v) = self.attacker_gain_lamports.get_mut(day as usize) {
                    *v += gain;
                }
            }
        } else {
            self.non_sol += 1;
        }
        self.findings.push(DatedFinding {
            day,
            bundle_id,
            finding,
        });
    }

    /// Append a run of poll records (they stay ordered across merges, so
    /// the overlap rate — which excludes the first poll — is exact).
    pub fn observe_polls(&mut self, polls: &[PollRecord]) {
        self.polls.extend_from_slice(polls);
    }

    /// Fold another partial in. Only valid in scan-unit order: polls are
    /// concatenated, everything else is commutative integer addition.
    pub fn merge(&mut self, other: ScanPartial) {
        debug_assert_eq!(self.days, other.days);
        for (a, b) in self.bundles_by_len.iter_mut().zip(other.bundles_by_len) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        for (x, y) in self.sandwiches.iter_mut().zip(other.sandwiches) {
            *x += y;
        }
        for (x, y) in self.defensive.iter_mut().zip(other.defensive) {
            *x += y;
        }
        for (x, y) in self
            .victim_loss_lamports
            .iter_mut()
            .zip(other.victim_loss_lamports)
        {
            *x += y;
        }
        for (x, y) in self
            .attacker_gain_lamports
            .iter_mut()
            .zip(other.attacker_gain_lamports)
        {
            *x += y;
        }
        self.losses_usd.extend(other.losses_usd);
        self.tips_len1.extend(other.tips_len1);
        self.tips_len3.extend(other.tips_len3);
        self.tips_sandwich.extend(other.tips_sandwich);
        self.defense.merge(&other.defense);
        self.findings.extend(other.findings);
        self.non_sol += other.non_sol;
        self.len3_with_details += other.len3_with_details;
        self.polls.extend(other.polls);
    }

    /// Convert the integer state into the report. The one place floats are
    /// produced; findings are sorted by `(day, bundle_id)` so the report is
    /// independent of which path (in-memory, 1 thread, N threads) built it.
    pub fn finalize(mut self, config: &AnalysisConfig) -> AnalysisReport {
        self.findings.sort_by_key(|a| (a.day, a.bundle_id.0));
        let series_u64 = |v: &[u64]| DailySeries {
            values: v.iter().map(|&x| x as f64).collect(),
        };
        let overlap_rate = if self.polls.len() <= 1 {
            1.0
        } else {
            let later = &self.polls[1..];
            later.iter().filter(|p| p.overlapped_previous).count() as f64 / later.len() as f64
        };
        AnalysisReport {
            days: config.days,
            bundles_by_len_per_day: std::array::from_fn(|i| series_u64(&self.bundles_by_len[i])),
            sandwiches_per_day: series_u64(&self.sandwiches),
            defensive_per_day: series_u64(&self.defensive),
            victim_loss_sol_per_day: DailySeries {
                values: self
                    .victim_loss_lamports
                    .iter()
                    .map(|&l| l as f64 / 1e9)
                    .collect(),
            },
            attacker_gain_sol_per_day: DailySeries {
                values: self
                    .attacker_gain_lamports
                    .iter()
                    .map(|&l| l as f64 / 1e9)
                    .collect(),
            },
            loss_cdf_usd: Cdf::from_samples(self.losses_usd),
            tip_cdf_len1: Cdf::from_samples(self.tips_len1),
            tip_cdf_len3: Cdf::from_samples(self.tips_len3),
            tip_cdf_sandwich: Cdf::from_samples(self.tips_sandwich),
            defense: self.defense,
            findings: self.findings,
            non_sol_sandwiches: self.non_sol,
            len3_with_details: self.len3_with_details,
            overlap_rate,
            oracle: config.oracle.clone(),
        }
    }
}

/// One sealed segment's partial: details become a segment-local lookup,
/// then every bundle is observed against it.
pub fn partial_of_segment(
    data: SegmentData,
    clock: &SlotClock,
    config: &AnalysisConfig,
) -> ScanPartial {
    let mut partial = ScanPartial::new(config.days as usize);
    let lookup: HashMap<TransactionId, TransactionMeta> = data
        .details
        .into_iter()
        .map(|d| (d.meta.tx_id, d.meta))
        .collect();
    for bundle in &data.bundles {
        partial.observe_bundle(bundle, &lookup, clock, config);
    }
    partial.observe_polls(&data.polls);
    partial
}

/// One sealed segment's partial, computed from a zero-copy view without
/// materializing every record.
///
/// The columns alone give each bundle's day, length, tip, and the three
/// detector pre-filter facts (LINKED, criterion 1, criterion 2), so the
/// overwhelmingly common cases — length-1 bundles and length-3 bundles
/// that cannot be sandwiches — fold in without touching the body. Only a
/// surviving candidate decodes its three details (and, on a confirmed
/// finding, its bundle record for the id). `cols` is caller-provided
/// scratch so a worker scanning many segments reuses one arena.
///
/// Soundness of each skip is argued bit-by-bit in `store::column`; the
/// pre-filters are only consulted under the detector configuration that
/// makes them exact, and [`partial_of_view_or_segment`] routes extended
/// scans (which inspect longer bundles) to the materializing path.
pub fn partial_of_view(
    view: &SegmentView,
    cols: &mut Columns,
    clock: &SlotClock,
    config: &AnalysisConfig,
) -> Result<ScanPartial, CorruptSegment> {
    view.read_columns(cols)?;
    let mut partial = ScanPartial::new(config.days as usize);
    let det = &config.detector;
    let mut linked_cursor = 0usize;
    for i in 0..cols.slot.len() {
        let day = clock.day_index(Slot(cols.slot[i]));
        let len = (cols.tx_count[i] as usize).clamp(1, 5);
        bump(&mut partial.bundles_by_len[len - 1], day);
        let flags = cols.flags[i];
        let entry = if flags & META_LINKED != 0 {
            let e =
                cols.linked.get(linked_cursor).copied().ok_or_else(|| {
                    CorruptSegment("more LINKED flags than linked entries".into())
                })?;
            linked_cursor += 1;
            Some(e)
        } else {
            None
        };
        let tip = Lamports(cols.tip[i]);
        if len == 1 {
            partial.observe_len1(day, tip, config);
            continue;
        }
        if len != 3 {
            continue;
        }
        partial.tips_len3.push(tip.0 as f64);
        let Some(entry) = entry else { continue };
        partial.len3_with_details += 1;
        if det.same_outer_signer && flags & META_C1 == 0 {
            continue;
        }
        if det.same_currencies && det.exclude_tip_only_final && flags & META_C2 == 0 {
            continue;
        }
        let m1 = view.detail_meta(cols, entry.details[0] as usize)?;
        let m2 = view.detail_meta(cols, entry.details[1] as usize)?;
        let m3 = view.detail_meta(cols, entry.details[2] as usize)?;
        if let Some(finding) = detect(det, [&m1, &m2, &m3]) {
            let bundle_id = view.bundle_record(cols, i)?.bundle_id;
            partial.fold_finding(day, bundle_id, tip, finding, config);
        }
    }
    partial.observe_polls(&view.polls(cols)?);
    Ok(partial)
}

std::thread_local! {
    /// Per-worker column scratch: cleared between segments, never shrunk,
    /// so a scan over thousands of segments allocates its column arenas
    /// once per thread.
    static SCAN_SCRATCH: std::cell::RefCell<Columns> = std::cell::RefCell::new(Columns::default());
}

/// Scan one view on the fast path when it can be exact, falling back to a
/// full decode otherwise (v1 segments without columns; extended scans,
/// whose longer-bundle detection needs every record).
pub fn partial_of_view_or_segment(
    view: &SegmentView,
    clock: &SlotClock,
    config: &AnalysisConfig,
) -> std::io::Result<ScanPartial> {
    let corrupt =
        |e: CorruptSegment| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string());
    if view.has_columns() && !config.extended {
        SCAN_SCRATCH
            .with(|scratch| partial_of_view(view, &mut scratch.borrow_mut(), clock, config))
            .map_err(corrupt)
    } else {
        let data = view.decode_all().map_err(corrupt)?;
        Ok(partial_of_segment(data, clock, config))
    }
}

/// Scan every sealed segment of `store` on `threads` workers and reduce
/// the partials in segment order (skipping the finalize — callers that
/// still have residual in-memory records fold them in first).
///
/// Segments are memory-mapped and scanned through the columnar fast path
/// when they carry one; [`scan_store_materializing`] forces the
/// record-by-record decode for comparison.
pub fn scan_store_partial(
    store: &BundleStore,
    clock: &SlotClock,
    config: &AnalysisConfig,
    threads: usize,
    registry: Option<&Registry>,
) -> std::io::Result<ScanPartial> {
    let units: Vec<usize> = (0..store.segments().len()).collect();
    let started = std::time::Instant::now();
    let (partials, workers) = parallel_map(&units, threads, |_, &i| {
        let view = store.open_view(i)?;
        partial_of_view_or_segment(&view, clock, config)
    });
    if let Some(registry) = registry {
        registry
            .counter(sandwich_obs::names::SCAN_SEGMENTS_SCANNED)
            .add(units.len() as u64);
        let busy = registry.histogram(sandwich_obs::names::SCAN_WORKER_BUSY_SECONDS);
        for w in &workers {
            busy.observe(w.busy.as_secs_f64());
        }
        registry
            .histogram(sandwich_obs::names::SCAN_SECONDS)
            .observe(started.elapsed().as_secs_f64());
    }
    let mut acc = ScanPartial::new(config.days as usize);
    for partial in partials {
        acc.merge(partial?);
    }
    Ok(acc)
}

/// Full parallel analysis of a sealed store: scan, reduce, finalize.
pub fn scan_store(
    store: &BundleStore,
    clock: &SlotClock,
    config: &AnalysisConfig,
    threads: usize,
) -> std::io::Result<AnalysisReport> {
    scan_store_observed(store, clock, config, threads, None)
}

/// [`scan_store`] that also records `scan.*` metrics into a registry.
pub fn scan_store_observed(
    store: &BundleStore,
    clock: &SlotClock,
    config: &AnalysisConfig,
    threads: usize,
    registry: Option<&Registry>,
) -> std::io::Result<AnalysisReport> {
    Ok(scan_store_partial(store, clock, config, threads, registry)?.finalize(config))
}

/// Exact accounting of what a degraded scan covered: segments and
/// bundles actually scanned, sitting in quarantine, or skipped because
/// they failed to read/verify. `segments_total` counts every segment the
/// manifest has ever sealed and kept on the books (serving + quarantine).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScanCoverage {
    /// Serving segments + quarantined segments.
    pub segments_total: u64,
    /// Segments scanned into the report.
    pub segments_scanned: u64,
    /// Segments in the manifest's quarantine list (never read).
    pub segments_quarantined: u64,
    /// Serving segments that failed to read or verify and were skipped.
    pub segments_failed: u64,
    /// Bundle records scanned into the report.
    pub bundles_scanned: u64,
    /// Bundle records in quarantined segments.
    pub bundles_quarantined: u64,
    /// Bundle records in skipped (failed) segments.
    pub bundles_failed: u64,
}

impl ScanCoverage {
    /// Did the scan cover every bundle the store has on the books?
    pub fn complete(&self) -> bool {
        self.segments_quarantined == 0 && self.segments_failed == 0
    }
}

/// Degraded-mode scan: like [`scan_store_observed`], but a segment that
/// fails to read or verify is *skipped and accounted* instead of failing
/// the whole scan, and quarantined segments are reported in the coverage
/// block. The report over the surviving segments is still deterministic —
/// byte-identical to a clean scan of the same surviving set at any thread
/// count.
pub fn scan_store_degraded(
    store: &BundleStore,
    clock: &SlotClock,
    config: &AnalysisConfig,
    threads: usize,
    registry: Option<&Registry>,
) -> std::io::Result<(AnalysisReport, ScanCoverage)> {
    let units: Vec<usize> = (0..store.segments().len()).collect();
    let started = std::time::Instant::now();
    let (partials, workers) = parallel_map(&units, threads, |_, &i| {
        let result: std::io::Result<ScanPartial> = store
            .open_view(i)
            .and_then(|view| partial_of_view_or_segment(&view, clock, config));
        // Propagate the outcome, not the error: the reduce below turns
        // failures into coverage accounting.
        result.ok()
    });
    let mut coverage = ScanCoverage {
        segments_quarantined: store.quarantined().len() as u64,
        bundles_quarantined: store.manifest().total_quarantined_bundles(),
        ..ScanCoverage::default()
    };
    coverage.segments_total = store.segments().len() as u64 + coverage.segments_quarantined;
    let mut acc = ScanPartial::new(config.days as usize);
    for (i, partial) in partials.into_iter().enumerate() {
        let meta = &store.segments()[i];
        match partial {
            Some(p) => {
                coverage.segments_scanned += 1;
                coverage.bundles_scanned += meta.bundles;
                acc.merge(p);
            }
            None => {
                coverage.segments_failed += 1;
                coverage.bundles_failed += meta.bundles;
            }
        }
    }
    if let Some(registry) = registry {
        registry
            .counter(sandwich_obs::names::SCAN_SEGMENTS_SCANNED)
            .add(coverage.segments_scanned);
        registry
            .counter(sandwich_obs::names::SCAN_SEGMENTS_FAILED)
            .add(coverage.segments_failed);
        registry
            .counter(sandwich_obs::names::SCAN_SEGMENTS_QUARANTINED)
            .add(coverage.segments_quarantined);
        let busy = registry.histogram(sandwich_obs::names::SCAN_WORKER_BUSY_SECONDS);
        for w in &workers {
            busy.observe(w.busy.as_secs_f64());
        }
        registry
            .histogram(sandwich_obs::names::SCAN_SECONDS)
            .observe(started.elapsed().as_secs_f64());
    }
    Ok((acc.finalize(config), coverage))
}

/// Full parallel analysis that decodes every record of every segment —
/// the pre-columnar scan path, kept as the reference the zero-copy scan
/// is benchmarked (and byte-equality-tested) against.
pub fn scan_store_materializing(
    store: &BundleStore,
    clock: &SlotClock,
    config: &AnalysisConfig,
    threads: usize,
) -> std::io::Result<AnalysisReport> {
    let units: Vec<usize> = (0..store.segments().len()).collect();
    let (partials, _workers) = parallel_map(&units, threads, |_, &i| {
        store
            .read_segment(i)
            .map(|data| partial_of_segment(data, clock, config))
    });
    let mut acc = ScanPartial::new(config.days as usize);
    for partial in partials {
        acc.merge(partial?);
    }
    Ok(acc.finalize(config))
}

/// Streaming analysis: fold each segment's partial as it seals, so a
/// partial report is available mid-run. Because the fold happens in seal
/// (= segment) order, the final streaming report equals the batch scan.
/// Folding also re-reads (and checksums) the file just written — a free
/// end-to-end verification of every sealed segment.
pub struct IncrementalScan {
    clock: SlotClock,
    config: AnalysisConfig,
    partial: ScanPartial,
    segments_folded: u64,
}

impl IncrementalScan {
    /// A scanner ready to fold sealed segments.
    pub fn new(clock: SlotClock, config: AnalysisConfig) -> Self {
        let partial = ScanPartial::new(config.days as usize);
        IncrementalScan {
            clock,
            config,
            partial,
            segments_folded: 0,
        }
    }

    /// Fold one just-sealed segment in (in seal order).
    pub fn fold_sealed(
        &mut self,
        dir: &std::path::Path,
        meta: &SegmentMeta,
    ) -> std::io::Result<()> {
        let view = SegmentView::open(&dir.join(&meta.file))?;
        self.partial.merge(partial_of_view_or_segment(
            &view,
            &self.clock,
            &self.config,
        )?);
        self.segments_folded += 1;
        Ok(())
    }

    /// Segments folded so far.
    pub fn segments_folded(&self) -> u64 {
        self.segments_folded
    }

    /// Sandwiches detected so far (cheap, no finalize).
    pub fn sandwich_count(&self) -> u64 {
        self.partial.sandwich_count()
    }

    /// The report over everything folded so far.
    pub fn report(&self) -> AnalysisReport {
        self.partial.clone().finalize(&self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_store::StoreWriter;
    use sandwich_types::{Hash, Keypair, Slot};

    fn bundle(seed: u64, slot: u64, len: usize, tip: u64) -> CollectedBundle {
        let kp = Keypair::from_label("scan");
        CollectedBundle {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot: Slot(slot),
            timestamp_ms: slot * 400,
            tip: Lamports(tip),
            tx_ids: (0..len)
                .map(|i| kp.sign(&(seed * 10 + i as u64).to_le_bytes()))
                .collect(),
        }
    }

    #[test]
    fn merge_matches_single_partial() {
        let clock = SlotClock::default();
        let config = AnalysisConfig::paper_defaults(2);
        let bundles: Vec<_> = (0..40u64).map(|i| bundle(i, i, 1, 30_000 + i)).collect();
        let lookup: HashMap<TransactionId, TransactionMeta> = HashMap::new();

        let mut whole = ScanPartial::new(2);
        for b in &bundles {
            whole.observe_bundle(b, &lookup, &clock, &config);
        }
        let mut left = ScanPartial::new(2);
        let mut right = ScanPartial::new(2);
        for b in &bundles[..17] {
            left.observe_bundle(b, &lookup, &clock, &config);
        }
        for b in &bundles[17..] {
            right.observe_bundle(b, &lookup, &clock, &config);
        }
        left.merge(right);
        let a = whole.finalize(&config);
        let b = left.finalize(&config);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn store_scan_is_thread_count_invariant() {
        let dir = std::env::temp_dir().join(format!("scan-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut writer = StoreWriter::create(&dir).unwrap();
        for seg in 0..5u64 {
            let bundles: Vec<_> = (0..30)
                .map(|i| bundle(seg * 100 + i, seg * 50 + i, 1, 20_000 + i))
                .collect();
            writer
                .seal_segment(bundles, Vec::new(), Vec::new())
                .unwrap();
        }
        let store = writer.into_reader();
        let clock = SlotClock::default();
        let config = AnalysisConfig::paper_defaults(1);
        let base = serde_json::to_string(&scan_store(&store, &clock, &config, 1).unwrap()).unwrap();
        for threads in [2, 8] {
            let r = serde_json::to_string(&scan_store(&store, &clock, &config, threads).unwrap())
                .unwrap();
            assert_eq!(base, r, "threads={threads}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
