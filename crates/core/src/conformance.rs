//! Ground-truth conformance oracle.
//!
//! The simulator labels every bundle it lands ([`sandwich_sim::LabelBook`],
//! keyed by bundle id); the measured pipeline never sees those labels. This
//! module joins analysis output back to that ground truth and scores the
//! detector *per bundle* — precision, recall, F1, quantification error
//! distributions, the defensive classifier's confusion matrix across the
//! threshold sweep, and the per-criterion ablation grid showing that each
//! of the paper's five criteria is load-bearing (disabling it admits the
//! near-miss family engineered against it).
//!
//! This is the validation a measurement paper cannot do on mainnet: there,
//! ground truth does not exist; here, we generated it.

use std::collections::{BTreeMap, HashSet};

use sandwich_jito::BundleId;
use sandwich_obs::Registry;
use sandwich_sim::{BundleLabel, LabelBook, NearMissFamily};
use sandwich_types::Lamports;

use crate::analysis::AnalysisReport;
use crate::dataset::{CollectedBundle, Dataset};
use crate::defense::is_defensive_at;
use crate::detector::{detect, DetectorConfig, InvalidCriterion, SandwichFinding};
use crate::stats::Cdf;

/// A 2x2 confusion matrix with the derived scores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct ConfusionMatrix {
    /// Flagged and labeled positive.
    pub true_positives: u64,
    /// Flagged but labeled negative.
    pub false_positives: u64,
    /// Labeled positive but not flagged.
    pub false_negatives: u64,
    /// Labeled negative and not flagged.
    pub true_negatives: u64,
}

impl ConfusionMatrix {
    /// TP / (TP + FP); 1.0 when nothing was flagged (vacuously precise).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// TP / (TP + FN); 1.0 when nothing was labeled positive.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Signed quantification errors over matched true positives, lamports
/// (detected value minus the simulator's expected value).
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct QuantErrors {
    /// Victim-loss errors, one per priced true positive.
    pub loss_err_lamports: Vec<i128>,
    /// Attacker-gain errors (detector gain is gross of tip; the bundle tip
    /// is subtracted before comparing with the sim's net expectation).
    pub gain_err_lamports: Vec<i128>,
}

impl QuantErrors {
    /// CDF of absolute victim-loss errors.
    pub fn loss_abs_cdf(&self) -> Cdf {
        Cdf::from_samples(
            self.loss_err_lamports
                .iter()
                .map(|e| e.unsigned_abs() as f64)
                .collect(),
        )
    }

    /// CDF of absolute attacker-gain errors.
    pub fn gain_abs_cdf(&self) -> Cdf {
        Cdf::from_samples(
            self.gain_err_lamports
                .iter()
                .map(|e| e.unsigned_abs() as f64)
                .collect(),
        )
    }

    /// Largest absolute victim-loss error, lamports.
    pub fn max_abs_loss_err(&self) -> u64 {
        self.loss_err_lamports
            .iter()
            .map(|e| e.unsigned_abs() as u64)
            .max()
            .unwrap_or(0)
    }
}

/// The full conformance scorecard for one analysis run.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct Conformance {
    /// Detector confusion over *detectable* labeled bundles (disguised
    /// sandwiches are excluded from the positives — the paper's length-3
    /// methodology cannot see them; they are broken out below).
    pub detector: ConfusionMatrix,
    /// Labeled sandwiches with `disguised = true` that were not found
    /// (quantifies the lower-bound narrative, not a detector defect).
    pub missed_disguised: u64,
    /// Findings whose bundle id has no label (join failures; must be 0 on
    /// a fully labeled run).
    pub unlabeled_findings: u64,
    /// Labeled near-miss bundles per family.
    pub near_miss_labeled: BTreeMap<String, u64>,
    /// Near-miss bundles the detector (wrongly) flagged, per family.
    pub near_miss_flagged: BTreeMap<String, u64>,
    /// Quantification errors over matched true positives.
    pub quant: QuantErrors,
}

impl Conformance {
    /// True when every near-miss family was rejected outright.
    pub fn near_misses_all_rejected(&self) -> bool {
        self.near_miss_flagged.values().all(|&v| v == 0)
    }

    /// Total labeled near-miss bundles.
    pub fn near_misses_labeled_total(&self) -> u64 {
        self.near_miss_labeled.values().sum()
    }
}

/// Join analysis findings back to ground truth.
pub fn score(report: &AnalysisReport, labels: &LabelBook) -> Conformance {
    score_findings(
        report.findings.iter().map(|f| (&f.bundle_id, &f.finding)),
        labels,
    )
}

/// Score any (bundle id, finding) stream against a label book. The
/// convenience [`score`] maps an [`AnalysisReport`] through this.
pub fn score_findings<'a>(
    findings: impl Iterator<Item = (&'a BundleId, &'a SandwichFinding)>,
    labels: &LabelBook,
) -> Conformance {
    let mut c = Conformance::default();
    let mut flagged: HashSet<BundleId> = HashSet::new();

    for (id, finding) in findings {
        flagged.insert(*id);
        match labels.get(id) {
            Some(BundleLabel::Sandwich(truth)) => {
                c.detector.true_positives += 1;
                if truth.sol_legged {
                    if let Some(loss) = finding.victim_loss_lamports {
                        c.quant
                            .loss_err_lamports
                            .push(loss as i128 - truth.expected_loss_lamports as i128);
                    }
                    if let Some(gain) = finding.attacker_gain_lamports {
                        let net = gain - finding.bundle_tip.0 as i128;
                        c.quant
                            .gain_err_lamports
                            .push(net - truth.expected_gain_lamports);
                    }
                }
            }
            Some(BundleLabel::NearMiss(family)) => {
                c.detector.false_positives += 1;
                *c.near_miss_flagged
                    .entry(family.name().to_string())
                    .or_insert(0) += 1;
            }
            Some(_) => c.detector.false_positives += 1,
            None => {
                c.detector.false_positives += 1;
                c.unlabeled_findings += 1;
            }
        }
    }

    for (id, label) in labels.iter() {
        if let BundleLabel::NearMiss(family) = label {
            *c.near_miss_labeled
                .entry(family.name().to_string())
                .or_insert(0) += 1;
        }
        if flagged.contains(id) {
            continue;
        }
        match label {
            BundleLabel::Sandwich(truth) if truth.disguised => c.missed_disguised += 1,
            BundleLabel::Sandwich(_) => c.detector.false_negatives += 1,
            _ => c.detector.true_negatives += 1,
        }
    }

    c
}

/// Attribution scorecard: the slot-leader assignment the index computed
/// from public chain data, joined back to the simulator's per-bundle
/// provenance, plus the colluder inference scored as a classifier over
/// the whole validator set.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct Attribution {
    /// Detected sandwiches carrying a leader assignment.
    pub attributed: u64,
    /// Assignments matching the ground-truth slot leader.
    pub correct_leaders: u64,
    /// Assignments naming the wrong validator (must be 0: the schedule
    /// is a pure function of public data).
    pub wrong_leaders: u64,
    /// Detected sandwiches with no leader (pre-attribution fallback rows).
    pub unattributed: u64,
    /// Detected sandwiches with no recorded provenance (join failures;
    /// must be 0 on a fully labeled run).
    pub unprovenanced: u64,
    /// Colluder inference over the validator set: predicted = at least
    /// one sandwich attributed, actual = led at least one detectable
    /// labeled sandwich. (A colluder whose slots never hosted one is
    /// invisible to *any* chain-data inference and is out of scope;
    /// [`Attribution::colluder_consistent`] checks the sim's invariant
    /// that every sandwich-hosting leader really is a colluder.)
    pub colluders: ConfusionMatrix,
    /// Whether every leader of a labeled sandwich slot carries the
    /// ground-truth colluder flag — the sim lands sandwiches only in
    /// colluder-led slots, so a `false` here means the scenario (not the
    /// measurement) is broken.
    pub colluder_consistent: bool,
    /// Whether the measured per-leader sandwich counts equal the
    /// ground-truth counts exactly (implies identical leaderboard
    /// ranking under the deterministic comparator).
    pub counts_match: bool,
}

impl Attribution {
    /// Fraction of detected sandwiches whose assigned leader matches
    /// ground truth; unattributed rows count against. 1.0 when there was
    /// nothing to attribute.
    pub fn leader_accuracy(&self) -> f64 {
        let denom = self.attributed + self.unattributed;
        if denom == 0 {
            1.0
        } else {
            self.correct_leaders as f64 / denom as f64
        }
    }

    /// True when every assignment is right, every sandwich joined, the
    /// colluder classifier is exact, and the ranking counts agree.
    pub fn perfect(&self) -> bool {
        self.wrong_leaders == 0
            && self.unattributed == 0
            && self.unprovenanced == 0
            && self.colluders.false_positives == 0
            && self.colluders.false_negatives == 0
            && self.colluder_consistent
            && self.counts_match
    }
}

/// Score an index's leader attribution against ground truth.
///
/// `assigned` streams every *detected* sandwich with the leader the index
/// joined it to (`None` for pre-attribution fallback rows); `leaderboard`
/// is the measured validator leaderboard as `(validator, sandwiches)` —
/// it must cover the **whole** validator set, zero-count rows included,
/// since the colluder classifier needs true negatives.
pub fn score_attribution<'a>(
    assigned: impl Iterator<Item = (&'a BundleId, Option<&'a sandwich_types::Pubkey>)>,
    leaderboard: &[(sandwich_types::Pubkey, u64)],
    labels: &LabelBook,
) -> Attribution {
    let mut a = Attribution::default();

    // Ground-truth per-leader sandwich counts over the detected set.
    let mut truth_counts: BTreeMap<sandwich_types::Pubkey, u64> = BTreeMap::new();
    for (id, leader) in assigned {
        let Some(prov) = labels.provenance(id) else {
            a.unprovenanced += 1;
            continue;
        };
        *truth_counts.entry(prov.leader).or_insert(0) += 1;
        match leader {
            None => a.unattributed += 1,
            Some(leader) => {
                a.attributed += 1;
                if *leader == prov.leader {
                    a.correct_leaders += 1;
                } else {
                    a.wrong_leaders += 1;
                }
            }
        }
    }

    // Ground-truth positives: validators that led at least one
    // *detectable* labeled sandwich (disguised ones are invisible to the
    // paper's length-3 scan and excluded here as everywhere else). Along
    // the way, check the scenario invariant that each such leader really
    // is a flagged colluder.
    let mut sandwich_leaders: std::collections::BTreeSet<sandwich_types::Pubkey> =
        std::collections::BTreeSet::new();
    a.colluder_consistent = true;
    for (id, prov) in labels.provenances() {
        if let Some(BundleLabel::Sandwich(truth)) = labels.get(id) {
            if truth.disguised {
                continue;
            }
            sandwich_leaders.insert(prov.leader);
            if !prov.colluder {
                a.colluder_consistent = false;
            }
        }
    }

    a.counts_match = true;
    for (validator, sandwiches) in leaderboard {
        let truth = sandwich_leaders.contains(validator);
        match (*sandwiches > 0, truth) {
            (true, true) => a.colluders.true_positives += 1,
            (true, false) => a.colluders.false_positives += 1,
            (false, true) => a.colluders.false_negatives += 1,
            (false, false) => a.colluders.true_negatives += 1,
        }
        if truth_counts.get(validator).copied().unwrap_or(0) != *sandwiches {
            a.counts_match = false;
        }
    }
    // A non-zero truth count for a validator the leaderboard omits is a
    // mismatch too (the leaderboard must cover the whole set).
    for (validator, count) in &truth_counts {
        if *count > 0 && !leaderboard.iter().any(|(l, _)| l == validator) {
            a.counts_match = false;
        }
    }

    a
}

/// Defensive-classifier confusion at each sweep threshold: predicted =
/// `is_defensive_at(bundle, threshold)`, actual = the simulator's label.
/// Unlabeled bundles are skipped.
pub fn defensive_confusion<'a>(
    bundles: impl Iterator<Item = &'a CollectedBundle> + Clone,
    labels: &LabelBook,
    thresholds: &[u64],
) -> Vec<(Lamports, ConfusionMatrix)> {
    thresholds
        .iter()
        .map(|&t| {
            let threshold = Lamports(t);
            let mut m = ConfusionMatrix::default();
            for b in bundles.clone() {
                let Some(label) = labels.get(&b.bundle_id) else {
                    continue;
                };
                match (is_defensive_at(b, threshold), label.is_defensive()) {
                    (true, true) => m.true_positives += 1,
                    (true, false) => m.false_positives += 1,
                    (false, true) => m.false_negatives += 1,
                    (false, false) => m.true_negatives += 1,
                }
            }
            (threshold, m)
        })
        .collect()
}

/// One row of the criterion ablation grid.
#[derive(Clone, Debug, serde::Serialize)]
pub struct AblationRow {
    /// The disabled criterion (1–5).
    pub criterion: u8,
    /// The near-miss family engineered against this criterion.
    pub family: String,
    /// Labeled bundles of that family in the dataset.
    pub labeled_matching: u64,
    /// Matching-family bundles admitted once the criterion is disabled.
    /// Non-zero proves the criterion is load-bearing.
    pub admitted_matching: u64,
    /// All labeled near-miss bundles admitted by the ablated detector.
    pub admitted_total: u64,
    /// Near-miss bundles admitted by the *full* detector (must be 0).
    pub full_detector_admitted: u64,
}

/// Run the `without_criterion(1..=5)` grid over the labeled near-miss
/// bundles in a collected dataset: for each criterion, how many bundles of
/// its matching family slip through once it is disabled, and that none
/// slip through the full detector.
pub fn ablation_grid(
    dataset: &Dataset,
    labels: &LabelBook,
) -> Result<Vec<AblationRow>, InvalidCriterion> {
    // Gather the labeled near-miss length-3 bundles with details once.
    let mut near_misses: Vec<(NearMissFamily, [&sandwich_ledger::TransactionMeta; 3])> = Vec::new();
    for b in dataset.bundles() {
        if b.len() != 3 {
            continue;
        }
        let Some(BundleLabel::NearMiss(family)) = labels.get(&b.bundle_id) else {
            continue;
        };
        if let Some(metas) = dataset.bundle_metas3(b) {
            near_misses.push((*family, metas));
        }
    }

    let full = DetectorConfig::default();
    let mut rows = Vec::with_capacity(5);
    for n in 1..=5u8 {
        let ablated = DetectorConfig::without_criterion(n)?;
        let family = NearMissFamily::for_criterion(n).expect("families cover 1-5");
        let mut row = AblationRow {
            criterion: n,
            family: family.name().to_string(),
            labeled_matching: 0,
            admitted_matching: 0,
            admitted_total: 0,
            full_detector_admitted: 0,
        };
        for (f, metas) in &near_misses {
            if *f == family {
                row.labeled_matching += 1;
            }
            if detect(&ablated, *metas).is_some() {
                row.admitted_total += 1;
                if *f == family {
                    row.admitted_matching += 1;
                }
            }
            if n == 1 && detect(&full, *metas).is_some() {
                row.full_detector_admitted += 1;
            }
        }
        rows.push(row);
    }
    // The full-detector count is criterion-independent; copy it across.
    let full_admitted = rows[0].full_detector_admitted;
    for row in &mut rows {
        row.full_detector_admitted = full_admitted;
    }
    Ok(rows)
}

/// Record a scorecard into an observability registry (the
/// `conformance.*` counters exported at `/metrics`).
pub fn record(registry: &Registry, c: &Conformance) {
    registry
        .counter(sandwich_obs::names::CONFORMANCE_TRUE_POSITIVES)
        .add(c.detector.true_positives);
    registry
        .counter(sandwich_obs::names::CONFORMANCE_FALSE_POSITIVES)
        .add(c.detector.false_positives);
    registry
        .counter(sandwich_obs::names::CONFORMANCE_FALSE_NEGATIVES)
        .add(c.detector.false_negatives);
    registry
        .counter(sandwich_obs::names::CONFORMANCE_NEAR_MISSES_SCORED)
        .add(c.near_misses_labeled_total());
    registry
        .counter(sandwich_obs::names::CONFORMANCE_NEAR_MISSES_FLAGGED)
        .add(c.near_miss_flagged.values().sum());
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_sim::SandwichLabel;
    use sandwich_types::{Hash, Pubkey};

    fn finding(loss: Option<u64>, gain: Option<i128>, tip: u64) -> SandwichFinding {
        SandwichFinding {
            attacker: Pubkey::derive("a"),
            victim: Pubkey::derive("v"),
            currencies: vec![],
            sol_legged: loss.is_some(),
            victim_loss_lamports: loss,
            attacker_gain_lamports: gain,
            bundle_tip: Lamports(tip),
        }
    }

    fn sandwich_label(loss: u64, gain: i128, disguised: bool) -> BundleLabel {
        BundleLabel::Sandwich(SandwichLabel {
            attacker: Pubkey::derive("a"),
            victim: Pubkey::derive("v"),
            expected_loss_lamports: loss,
            expected_gain_lamports: gain,
            sol_legged: true,
            disguised,
        })
    }

    #[test]
    fn score_joins_and_classifies() {
        let mut labels = LabelBook::new();
        let tp = Hash::digest(b"tp");
        let fn_ = Hash::digest(b"fn");
        let nm = Hash::digest(b"nm");
        let benign = Hash::digest(b"benign");
        let disguised = Hash::digest(b"disguised");
        labels.insert(tp, sandwich_label(100, 40, false));
        labels.insert(fn_, sandwich_label(50, 10, false));
        labels.insert(disguised, sandwich_label(7, 1, true));
        labels.insert(nm, BundleLabel::NearMiss(NearMissFamily::TipOnlyFinal));
        labels.insert(benign, BundleLabel::Benign(sandwich_sim::BenignKind::Batch));

        // Flag the true sandwich (loss off by +3, gain gross 45 − tip 5 =
        // net 40 → exact) and the near-miss (a false positive).
        let f_tp = finding(Some(103), Some(45), 5);
        let f_nm = finding(Some(9), None, 0);
        let found = [(&tp, &f_tp), (&nm, &f_nm)];
        let c = score_findings(found.iter().map(|(id, f)| (*id, *f)), &labels);

        assert_eq!(c.detector.true_positives, 1);
        assert_eq!(c.detector.false_positives, 1);
        assert_eq!(c.detector.false_negatives, 1, "undisguised miss counts");
        assert_eq!(c.detector.true_negatives, 1, "benign unflagged");
        assert_eq!(c.missed_disguised, 1, "disguised miss broken out");
        assert_eq!(c.unlabeled_findings, 0);
        assert_eq!(c.quant.loss_err_lamports, vec![3]);
        assert_eq!(c.quant.gain_err_lamports, vec![0]);
        assert_eq!(c.near_miss_labeled["tip_only_final"], 1);
        assert_eq!(c.near_miss_flagged["tip_only_final"], 1);
        assert!(!c.near_misses_all_rejected());
        assert!((c.detector.precision() - 0.5).abs() < 1e-12);
        assert!((c.detector.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unlabeled_finding_is_a_join_failure() {
        let labels = LabelBook::new();
        let id = Hash::digest(b"mystery");
        let f = finding(None, None, 0);
        let found = [(&id, &f)];
        let c = score_findings(found.iter().map(|(id, f)| (*id, *f)), &labels);
        assert_eq!(c.unlabeled_findings, 1);
        assert_eq!(c.detector.false_positives, 1);
    }

    #[test]
    fn matrix_scores_degenerate_cases() {
        let empty = ConfusionMatrix::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        assert_eq!(empty.f1(), 1.0);

        let perfect = ConfusionMatrix {
            true_positives: 10,
            true_negatives: 90,
            ..Default::default()
        };
        assert_eq!(perfect.precision(), 1.0);
        assert_eq!(perfect.recall(), 1.0);
        assert_eq!(perfect.f1(), 1.0);

        let useless = ConfusionMatrix {
            false_positives: 5,
            false_negatives: 5,
            ..Default::default()
        };
        assert_eq!(useless.precision(), 0.0);
        assert_eq!(useless.recall(), 0.0);
        assert_eq!(useless.f1(), 0.0);
    }

    #[test]
    fn attribution_scores_leaders_and_colluders() {
        let mut labels = LabelBook::new();
        let v1 = Pubkey::derive("v1"); // colluder, two sandwiches
        let v2 = Pubkey::derive("v2"); // colluder, one sandwich
        let v3 = Pubkey::derive("v3"); // honest, benign traffic only
        let s1 = Hash::digest(b"s1");
        let s2 = Hash::digest(b"s2");
        let s3 = Hash::digest(b"s3");
        let benign = Hash::digest(b"benign");
        for (id, leader, colluder) in [
            (s1, v1, true),
            (s2, v1, true),
            (s3, v2, true),
            (benign, v3, false),
        ] {
            labels.insert_provenance(id, sandwich_sim::BundleProvenance { leader, colluder });
        }
        for id in [s1, s2, s3] {
            labels.insert(id, sandwich_label(10, 5, false));
        }
        labels.insert(benign, BundleLabel::Benign(sandwich_sim::BenignKind::Batch));

        let assigned = [(&s1, Some(&v1)), (&s2, Some(&v1)), (&s3, Some(&v2))];
        let leaderboard = [(v1, 2u64), (v2, 1), (v3, 0)];
        let a = score_attribution(assigned.into_iter(), &leaderboard, &labels);
        assert_eq!(a.attributed, 3);
        assert_eq!(a.correct_leaders, 3);
        assert_eq!(a.leader_accuracy(), 1.0);
        assert_eq!(a.colluders.true_positives, 2);
        assert_eq!(a.colluders.true_negatives, 1);
        assert_eq!(a.colluders.precision(), 1.0);
        assert_eq!(a.colluders.recall(), 1.0);
        assert!(a.counts_match);
        assert!(a.perfect());

        // A wrong assignment, a dropped one, and the resulting skewed
        // counts each break perfection.
        let wrong = [(&s1, Some(&v2)), (&s2, Some(&v1)), (&s3, None)];
        let board = [(v1, 1u64), (v2, 2), (v3, 0)];
        let a = score_attribution(wrong.into_iter(), &board, &labels);
        assert_eq!(a.wrong_leaders, 1);
        assert_eq!(a.unattributed, 1);
        assert!(a.leader_accuracy() < 1.0);
        assert!(!a.counts_match);
        assert!(!a.perfect());

        // A leaderboard that omits a sandwich-bearing validator cannot
        // claim matching counts, and an unknown bundle is a join failure.
        let mystery = Hash::digest(b"mystery");
        let assigned = [(&s1, Some(&v1)), (&mystery, Some(&v1))];
        let board = [(v2, 0u64), (v3, 0)];
        let a = score_attribution(assigned.into_iter(), &board, &labels);
        assert_eq!(a.unprovenanced, 1);
        assert!(!a.counts_match);
        assert_eq!(a.colluders.false_negatives, 1, "v2 is a missed colluder");
    }

    #[test]
    fn quant_error_cdfs() {
        let q = QuantErrors {
            loss_err_lamports: vec![-3, 0, 4],
            gain_err_lamports: vec![0],
        };
        assert_eq!(q.max_abs_loss_err(), 4);
        let cdf = q.loss_abs_cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf.quantile(1.0), Some(4.0));
        assert_eq!(q.gain_abs_cdf().quantile(0.5), Some(0.0));
    }
}
