//! The paper's contribution: measurement of sandwich MEV on Jito.
//!
//! * [`collector`] — poll the (simulated) Jito Explorer every two minutes,
//!   ingest overlapping pages of recent bundles, batch-fetch length-3
//!   transaction details (paper §3.1);
//! * [`detector`] — the five-criteria sandwich detector over balance
//!   deltas, with financial quantification (§3.2, §4.1);
//! * [`defense`] — the defensive-bundling classifier (§3.3, §4.2);
//! * [`conformance`] — the ground-truth oracle: per-bundle precision and
//!   recall against the simulator's labels, quantification-error
//!   distributions, and the criterion ablation grid;
//! * [`analysis`] / [`report`] — per-day series, CDFs, and text renderers
//!   for Table 1 and Figures 1–4;
//! * [`counterfactual`] — the §5 what-ifs: defense economics quantified;
//! * [`scan`] — analysis as deterministic partials over scan units, the
//!   parallel segment-store scan, and the streaming incremental scan;
//! * [`pipeline`] — the whole measurement end to end over real HTTP,
//!   optionally flushing into a `sandwich-store` segment store as it runs.

#![warn(missing_docs)]

pub mod analysis;
pub mod checkpoint;
pub mod collector;
pub mod conformance;
pub mod counterfactual;
pub mod dataset;
pub mod defense;
pub mod detector;
pub mod pipeline;
pub mod report;
pub mod scan;
pub mod stats;

pub use analysis::{analyze, AnalysisConfig, AnalysisReport, DatedFinding};
pub use checkpoint::{Checkpoint, StoreCheckpoint};
pub use collector::{Collector, CollectorConfig, CollectorStats};
pub use conformance::{
    ablation_grid, defensive_confusion, score, score_findings, AblationRow, Conformance,
    ConfusionMatrix, QuantErrors,
};
pub use counterfactual::{
    defense_economics, defensive_counterfactual, slippage_counterfactual, DefenseEconomics,
    DefensiveCounterfactual, SlippageCounterfactual,
};
pub use dataset::{CollectedBundle, CollectedDetail, Dataset, PollRecord};
pub use defense::{is_defensive, is_defensive_at, threshold_sweep, DefenseStats};
pub use detector::{
    detect, detect_in_bundle, extract_trade, Currency, DetectorConfig, InvalidCriterion,
    SandwichFinding, Trade,
};
pub use pipeline::{
    run_measurement, run_measurement_with, scaled_page_limit, MeasurementRun, PipelineConfig,
    RunOptions, StoreOptions,
};
pub use scan::{
    scan_store, scan_store_degraded, scan_store_materializing, scan_store_observed, DetailLookup,
    IncrementalScan, ScanCoverage, ScanPartial,
};
pub use stats::{Cdf, DailySeries};
