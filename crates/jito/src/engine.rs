//! The block engine: Jito's per-slot tip auction and atomic execution.
//!
//! Semantics reproduced from the paper (§2.3, §3.3):
//!
//! * bundles are ordered by declared tip — the tip is the bid;
//! * an accepted bundle's transactions execute atomically and in order;
//! * if any transaction in a bundle fails, the whole bundle is dropped and
//!   nothing lands (this is what removes the attacker's financial risk);
//! * a bundle conflicting with an already-landed transaction is dropped —
//!   which is why rival attackers outbid each other on tips (Figure 4);
//! * bundles cannot be nested: a transaction already landed via a bundle
//!   cannot be re-included, making length-1 self-bundling a defense.

use std::collections::HashSet;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use sandwich_attrib::LeaderSchedule;
use sandwich_ledger::{Bank, Block, Transaction, TransactionMeta};
use sandwich_types::{Hash, Lamports, Pubkey, Slot, MIN_JITO_TIP};

use crate::bundle::{Bundle, BundleError, BundleId};
use crate::tips::realized_tip;

/// A bundle that landed in a block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LandedBundle {
    /// The bundle id.
    pub bundle_id: BundleId,
    /// The slot it landed in.
    pub slot: Slot,
    /// Realized tip: lamports actually credited to tip accounts.
    pub tip: Lamports,
    /// Execution metadata per transaction, in bundle order.
    pub metas: Vec<TransactionMeta>,
}

impl LandedBundle {
    /// Number of transactions in the bundle.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Bundles never land empty.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }
}

/// Why a submitted bundle did not land.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Failed structural validation or minimum tip.
    Invalid(BundleError),
    /// Contained a transaction that already landed this slot (lost the
    /// auction to a higher-tipping bundle).
    Conflict,
    /// A transaction inside the bundle failed; atomicity dropped it all.
    ExecutionFailed {
        /// Index of the failing transaction.
        index: usize,
        /// Failure description.
        error: String,
    },
}

/// A dropped bundle with its reason.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DroppedBundle {
    /// The bundle id.
    pub bundle_id: BundleId,
    /// Why it was dropped.
    pub reason: DropReason,
}

/// Everything produced for one slot.
#[derive(Clone, Debug)]
pub struct SlotResult {
    /// The block.
    pub block: Block,
    /// Bundles that landed, in auction order.
    pub bundles: Vec<LandedBundle>,
    /// Regular (non-bundled) transactions that landed, with metas.
    pub regular: Vec<TransactionMeta>,
    /// Bundles that did not land.
    pub dropped: Vec<DroppedBundle>,
}

/// Cached metric handles for the auction hot path.
struct EngineMetrics {
    auction_size: Arc<sandwich_obs::Histogram>,
    landed: Arc<sandwich_obs::Counter>,
    dropped_invalid: Arc<sandwich_obs::Counter>,
    dropped_conflict: Arc<sandwich_obs::Counter>,
    dropped_exec_failed: Arc<sandwich_obs::Counter>,
    tip_lamports: Arc<sandwich_obs::Histogram>,
}

/// Realized-tip bucket bounds in lamports: the 1,000 minimum up through
/// whale tips, roughly one decade per bucket with a mid-decade step.
const TIP_BUCKETS: [f64; 10] = [1e3, 1e4, 1e5, 5e5, 1e6, 5e6, 1e7, 5e7, 1e8, 1e9];

impl EngineMetrics {
    fn new(registry: &sandwich_obs::Registry) -> Self {
        EngineMetrics {
            auction_size: registry.histogram_with_buckets(
                "engine.auction_size",
                &[1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0],
            ),
            landed: registry.counter("engine.bundles_landed"),
            dropped_invalid: registry.counter("engine.bundles_dropped_invalid"),
            dropped_conflict: registry.counter("engine.bundles_dropped_conflict"),
            dropped_exec_failed: registry.counter("engine.bundles_dropped_exec_failed"),
            tip_lamports: registry.histogram_with_buckets("engine.tip_lamports", &TIP_BUCKETS),
        }
    }
}

/// The per-validator block engine.
pub struct BlockEngine {
    bank: Arc<Bank>,
    parent_hash: Hash,
    min_tip: Lamports,
    schedule: Option<Arc<LeaderSchedule>>,
    metrics: Option<EngineMetrics>,
}

impl BlockEngine {
    /// An engine over `bank` with the standard 1,000-lamport minimum tip.
    pub fn new(bank: Arc<Bank>) -> Self {
        let parent_hash = bank.latest_blockhash();
        BlockEngine {
            bank,
            parent_hash,
            min_tip: MIN_JITO_TIP,
            schedule: None,
            metrics: None,
        }
    }

    /// Override the minimum tip (threshold experiments).
    pub fn with_min_tip(mut self, min_tip: Lamports) -> Self {
        self.min_tip = min_tip;
        self
    }

    /// Stamp each produced block with the leader the schedule assigns to
    /// its slot. Without a schedule the bank's validator leads every slot
    /// (the single-validator legacy behavior).
    pub fn with_schedule(mut self, schedule: Arc<LeaderSchedule>) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// The validator that leads `slot` under this engine's schedule.
    pub fn leader_at(&self, slot: Slot) -> Pubkey {
        match &self.schedule {
            Some(schedule) => schedule.leader_at(slot),
            None => self.bank.validator(),
        }
    }

    /// Record auction outcomes (sizes, landed/dropped bundles, realized tip
    /// distribution) into `registry` under the `engine.` prefix.
    pub fn attach_metrics(&mut self, registry: &sandwich_obs::Registry) {
        self.metrics = Some(EngineMetrics::new(registry));
    }

    /// The underlying bank.
    pub fn bank(&self) -> &Arc<Bank> {
        &self.bank
    }

    /// Run the auction and produce the block for `slot`.
    ///
    /// `bundles` are submitted bids; `regular` are native transactions from
    /// the leader's queue (executed after bundles, ordered by priority fee).
    pub fn produce_slot(
        &mut self,
        slot: Slot,
        bundles: Vec<Bundle>,
        regular: Vec<Transaction>,
    ) -> SlotResult {
        if let Some(m) = &self.metrics {
            m.auction_size.observe(bundles.len() as f64);
        }
        let mut landed: Vec<LandedBundle> = Vec::new();
        let mut dropped: Vec<DroppedBundle> = Vec::new();
        let mut landed_ids: HashSet<_> = HashSet::new();

        // Validate, then auction: highest declared tip first (bundle id as
        // a deterministic tie-break).
        let mut valid: Vec<Bundle> = Vec::with_capacity(bundles.len());
        for bundle in bundles {
            match self.validate(&bundle) {
                Ok(()) => valid.push(bundle),
                Err(e) => dropped.push(DroppedBundle {
                    bundle_id: bundle.id(),
                    reason: DropReason::Invalid(e),
                }),
            }
        }
        valid.sort_by(|a, b| {
            b.declared_tip()
                .cmp(&a.declared_tip())
                .then_with(|| a.id().cmp(&b.id()))
        });

        for bundle in valid {
            let bundle_id = bundle.id();
            if bundle
                .transactions
                .iter()
                .any(|t| landed_ids.contains(&t.id()))
            {
                dropped.push(DroppedBundle {
                    bundle_id,
                    reason: DropReason::Conflict,
                });
                continue;
            }
            match self.bank.execute_batch_atomic(&bundle.transactions) {
                Ok(metas) => {
                    for m in &metas {
                        landed_ids.insert(m.tx_id);
                    }
                    let tip = metas.iter().map(realized_tip).sum();
                    landed.push(LandedBundle {
                        bundle_id,
                        slot,
                        tip,
                        metas,
                    });
                }
                Err(failure) => dropped.push(DroppedBundle {
                    bundle_id,
                    reason: DropReason::ExecutionFailed {
                        index: failure.index,
                        error: failure.error.to_string(),
                    },
                }),
            }
        }

        // Regular transactions: priority fee ordering, skip anything that
        // already landed inside a bundle, land failures with fee charged.
        let mut regular_sorted = regular;
        regular_sorted.sort_by(|a, b| {
            b.message
                .priority_fee
                .cmp(&a.message.priority_fee)
                .then_with(|| a.id().cmp(&b.id()))
        });
        let mut regular_metas = Vec::new();
        for tx in regular_sorted {
            if landed_ids.contains(&tx.id()) {
                continue;
            }
            if let Ok(meta) = self.bank.execute_transaction(&tx) {
                landed_ids.insert(meta.tx_id);
                regular_metas.push(meta);
            }
            // Rejected transactions (bad signature / unfunded fee) leave no
            // trace, as on Solana.
        }

        let all_metas: Vec<TransactionMeta> = landed
            .iter()
            .flat_map(|b| b.metas.iter().cloned())
            .chain(regular_metas.iter().cloned())
            .collect();
        let block = Block::derive(slot, self.leader_at(slot), self.parent_hash, &all_metas);
        self.parent_hash = block.blockhash;
        self.bank.set_latest_blockhash(block.blockhash);

        if let Some(m) = &self.metrics {
            m.landed.add(landed.len() as u64);
            for lb in &landed {
                m.tip_lamports.observe(lb.tip.0 as f64);
            }
            for d in &dropped {
                match d.reason {
                    DropReason::Invalid(_) => m.dropped_invalid.inc(),
                    DropReason::Conflict => m.dropped_conflict.inc(),
                    DropReason::ExecutionFailed { .. } => m.dropped_exec_failed.inc(),
                }
            }
        }

        SlotResult {
            block,
            bundles: landed,
            regular: regular_metas,
            dropped,
        }
    }

    fn validate(&self, bundle: &Bundle) -> Result<(), BundleError> {
        // Structure was enforced at construction, but re-check defensively
        // since Bundle is deserializable.
        let revalidated = Bundle::new(bundle.transactions.clone())?;
        let declared = revalidated.declared_tip();
        if declared < self.min_tip {
            return Err(BundleError::TipTooLow {
                declared,
                minimum: self.min_tip,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tips::{tip_accounts, tip_ix};
    use sandwich_ledger::TransactionBuilder;
    use sandwich_types::{Keypair, BASE_FEE};

    fn engine() -> (BlockEngine, Keypair, Keypair) {
        let bank = Arc::new(Bank::new(Keypair::from_label("validator").pubkey()));
        let a = Keypair::from_label("searcher-a");
        let b = Keypair::from_label("searcher-b");
        bank.airdrop(a.pubkey(), Lamports::from_sol(100.0));
        bank.airdrop(b.pubkey(), Lamports::from_sol(100.0));
        (BlockEngine::new(bank), a, b)
    }

    fn tipping_tx(kp: &Keypair, tip: u64, nonce: u64) -> Transaction {
        TransactionBuilder::new(*kp)
            .nonce(nonce)
            .instruction(tip_ix(Lamports(tip), nonce))
            .build()
    }

    #[test]
    fn bundle_lands_with_realized_tip() {
        let (mut engine, a, _) = engine();
        let bundle = Bundle::new(vec![tipping_tx(&a, 50_000, 1)]).unwrap();
        let result = engine.produce_slot(Slot(1), vec![bundle.clone()], vec![]);
        assert_eq!(result.bundles.len(), 1);
        assert_eq!(result.bundles[0].tip, Lamports(50_000));
        assert_eq!(result.bundles[0].bundle_id, bundle.id());
        assert!(result.dropped.is_empty());
        let tip_total: Lamports = tip_accounts()
            .iter()
            .map(|t| engine.bank().lamports(t))
            .sum();
        assert_eq!(tip_total, Lamports(50_000));
    }

    #[test]
    fn low_tip_bundle_rejected() {
        let (mut engine, a, _) = engine();
        let bundle = Bundle::new(vec![tipping_tx(&a, 500, 1)]).unwrap(); // below 1,000 minimum
        let result = engine.produce_slot(Slot(1), vec![bundle], vec![]);
        assert!(result.bundles.is_empty());
        assert!(matches!(
            result.dropped[0].reason,
            DropReason::Invalid(BundleError::TipTooLow { .. })
        ));
    }

    #[test]
    fn auction_resolves_conflicts_by_tip() {
        let (mut engine, a, b) = engine();
        // Both searchers bundle the same victim transaction; higher tip wins.
        let victim = Keypair::from_label("victim");
        engine
            .bank()
            .airdrop(victim.pubkey(), Lamports::from_sol(1.0));
        let victim_tx = TransactionBuilder::new(victim).nonce(1).build();

        let low = Bundle::new(vec![tipping_tx(&a, 10_000, 1), victim_tx.clone()]).unwrap();
        let high = Bundle::new(vec![tipping_tx(&b, 2_000_000, 1), victim_tx.clone()]).unwrap();
        let result = engine.produce_slot(Slot(1), vec![low.clone(), high.clone()], vec![]);

        assert_eq!(result.bundles.len(), 1);
        assert_eq!(result.bundles[0].bundle_id, high.id());
        assert_eq!(result.dropped.len(), 1);
        assert_eq!(result.dropped[0].bundle_id, low.id());
        assert_eq!(result.dropped[0].reason, DropReason::Conflict);
    }

    #[test]
    fn failing_transaction_drops_whole_bundle() {
        let (mut engine, a, _) = engine();
        let broke = Keypair::from_label("broke");
        engine
            .bank()
            .airdrop(broke.pubkey(), Lamports::from_sol(1.0));
        // Second transaction tries to move more than it has → fails → atomic drop.
        let bad = TransactionBuilder::new(broke)
            .transfer(a.pubkey(), Lamports::from_sol(50.0))
            .build();
        let bundle = Bundle::new(vec![tipping_tx(&a, 10_000, 1), bad]).unwrap();
        let before = engine.bank().lamports(&a.pubkey());
        let result = engine.produce_slot(Slot(1), vec![bundle], vec![]);
        assert!(result.bundles.is_empty());
        assert!(matches!(
            &result.dropped[0].reason,
            DropReason::ExecutionFailed { index: 1, .. }
        ));
        // The attacker's tip transaction never landed either — zero risk.
        assert_eq!(engine.bank().lamports(&a.pubkey()), before);
    }

    #[test]
    fn bundled_transaction_not_reexecuted_as_regular() {
        let (mut engine, a, _) = engine();
        let tx = tipping_tx(&a, 5_000, 1);
        let bundle = Bundle::new(vec![tx.clone()]).unwrap();
        // The same tx is also in the regular queue (leader saw it natively).
        let result = engine.produce_slot(Slot(1), vec![bundle], vec![tx]);
        assert_eq!(result.bundles.len(), 1);
        assert!(result.regular.is_empty());
    }

    #[test]
    fn regular_transactions_ordered_by_priority_fee() {
        let (mut engine, a, b) = engine();
        let t_low = TransactionBuilder::new(a)
            .nonce(1)
            .priority_fee(Lamports(10))
            .build();
        let t_high = TransactionBuilder::new(b)
            .nonce(1)
            .priority_fee(Lamports(10_000))
            .build();
        let result = engine.produce_slot(Slot(1), vec![], vec![t_low.clone(), t_high.clone()]);
        assert_eq!(result.regular.len(), 2);
        assert_eq!(result.regular[0].tx_id, t_high.id());
        assert_eq!(result.regular[1].tx_id, t_low.id());
        assert_eq!(result.regular[0].fee, BASE_FEE + Lamports(10_000));
    }

    #[test]
    fn metrics_record_auction_outcomes() {
        let (mut engine, a, _) = engine();
        let registry = sandwich_obs::Registry::new();
        engine.attach_metrics(&registry);
        let good = Bundle::new(vec![tipping_tx(&a, 50_000, 1)]).unwrap();
        let low = Bundle::new(vec![tipping_tx(&a, 500, 2)]).unwrap();
        engine.produce_slot(Slot(1), vec![good, low], vec![]);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine.bundles_landed"), Some(1));
        assert_eq!(snap.counter("engine.bundles_dropped_invalid"), Some(1));
        assert_eq!(snap.histogram("engine.auction_size").unwrap().count, 1);
        let tips = snap.histogram("engine.tip_lamports").unwrap();
        assert_eq!(tips.count, 1);
        assert!((tips.sum - 50_000.0).abs() < 1e-9);
    }

    #[test]
    fn blocks_carry_the_scheduled_leader() {
        let (engine, a, _) = engine();
        let spec = sandwich_attrib::ValidatorSpec::new(9, 8);
        let schedule = Arc::new(LeaderSchedule::new(&spec));
        let mut engine = engine.with_schedule(schedule.clone());
        for slot in [Slot(1), Slot(4), Slot(431_999), Slot(432_004)] {
            let result = engine.produce_slot(
                slot,
                vec![Bundle::new(vec![tipping_tx(&a, 5_000, slot.0)]).unwrap()],
                vec![],
            );
            assert_eq!(result.block.leader, schedule.leader_at(slot));
        }
    }

    #[test]
    fn unscheduled_engine_blocks_led_by_bank_validator() {
        let (mut engine, _, _) = engine();
        let result = engine.produce_slot(Slot(1), vec![], vec![]);
        assert_eq!(result.block.leader, engine.bank().validator());
    }

    #[test]
    fn blockhash_chains_across_slots() {
        let (mut engine, a, _) = engine();
        let r1 = engine.produce_slot(
            Slot(1),
            vec![Bundle::new(vec![tipping_tx(&a, 5_000, 1)]).unwrap()],
            vec![],
        );
        let r2 = engine.produce_slot(Slot(2), vec![], vec![]);
        assert_eq!(r2.block.parent_hash, r1.block.blockhash);
        assert_eq!(engine.bank().latest_blockhash(), r2.block.blockhash);
    }
}
