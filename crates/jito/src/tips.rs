//! Jito tip accounts.
//!
//! Jito designates eight well-known tip payment accounts; a bundle pays its
//! tip by including a plain SOL transfer to any of them. The tip is the
//! auction bid that decides bundle priority (paper §2.3).

use sandwich_ledger::{Instruction, SystemInstruction, Transaction, TransactionMeta};
use sandwich_types::{Lamports, Pubkey};

/// Number of designated tip accounts (as on mainnet Jito).
pub const TIP_ACCOUNT_COUNT: usize = 8;

/// The eight canonical tip accounts.
pub fn tip_accounts() -> Vec<Pubkey> {
    (0..TIP_ACCOUNT_COUNT)
        .map(|i| Pubkey::derive(&format!("jito-tip-account-{i}")))
        .collect()
}

/// True if `key` is one of the designated tip accounts.
pub fn is_tip_account(key: &Pubkey) -> bool {
    tip_accounts().contains(key)
}

/// A convenient tip account for builders (round-robins by seed).
pub fn tip_account(seed: u64) -> Pubkey {
    tip_accounts()[(seed % TIP_ACCOUNT_COUNT as u64) as usize]
}

/// Build a tip-paying instruction.
pub fn tip_ix(amount: Lamports, seed: u64) -> Instruction {
    Instruction::transfer(tip_account(seed), amount)
}

/// Declared tip of a transaction: the sum of its plain transfers to tip
/// accounts (inspected pre-execution for auction ordering).
pub fn declared_tip(tx: &Transaction) -> Lamports {
    tx.message
        .instructions
        .iter()
        .filter_map(|ix| match ix {
            Instruction::System(SystemInstruction::Transfer { to, lamports })
                if is_tip_account(to) =>
            {
                Some(*lamports)
            }
            _ => None,
        })
        .sum()
}

/// Realized tip of an executed transaction: lamports actually credited to
/// tip accounts according to its meta.
pub fn realized_tip(meta: &TransactionMeta) -> Lamports {
    let accounts = tip_accounts();
    meta.sol_deltas
        .iter()
        .filter(|d| d.delta.is_gain() && accounts.contains(&d.account))
        .map(|d| d.delta.magnitude())
        .sum()
}

/// True when the transaction's effects are nothing but tipping (plus fee):
/// the pattern excluded by detection criterion 5 (paper §3.2).
pub fn is_tip_only(meta: &TransactionMeta) -> bool {
    meta.is_sol_transfer_only_to(&tip_accounts()) && realized_tip(meta) > Lamports::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_ledger::{Bank, TransactionBuilder};
    use sandwich_types::Keypair;

    #[test]
    fn eight_distinct_tip_accounts() {
        let accounts = tip_accounts();
        assert_eq!(accounts.len(), 8);
        let mut dedup = accounts.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
        for a in &accounts {
            assert!(is_tip_account(a));
        }
    }

    #[test]
    fn declared_tip_sums_tip_transfers() {
        let kp = Keypair::from_label("tipper");
        let tx = TransactionBuilder::new(kp)
            .instruction(tip_ix(Lamports(1_000), 0))
            .instruction(tip_ix(Lamports(2_000), 3))
            .transfer(Keypair::from_label("friend").pubkey(), Lamports(500))
            .build();
        assert_eq!(declared_tip(&tx), Lamports(3_000));
    }

    #[test]
    fn realized_tip_and_tip_only_from_meta() {
        let validator = Keypair::from_label("validator").pubkey();
        let bank = Bank::new(validator);
        let kp = Keypair::from_label("tipper");
        bank.airdrop(kp.pubkey(), Lamports::from_sol(1.0));
        let tx = TransactionBuilder::new(kp)
            .instruction(tip_ix(Lamports(5_000), 1))
            .build();
        let meta = bank.execute_transaction(&tx).unwrap();
        assert_eq!(realized_tip(&meta), Lamports(5_000));
        assert!(is_tip_only(&meta));
    }

    #[test]
    fn transfer_to_friend_is_not_tip_only() {
        let validator = Keypair::from_label("validator").pubkey();
        let bank = Bank::new(validator);
        let kp = Keypair::from_label("tipper");
        bank.airdrop(kp.pubkey(), Lamports::from_sol(1.0));
        let tx = TransactionBuilder::new(kp)
            .instruction(tip_ix(Lamports(5_000), 1))
            .transfer(Keypair::from_label("friend").pubkey(), Lamports(100))
            .build();
        let meta = bank.execute_transaction(&tx).unwrap();
        assert_eq!(realized_tip(&meta), Lamports(5_000));
        assert!(!is_tip_only(&meta));
    }
}
