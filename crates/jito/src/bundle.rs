//! Jito bundles.
//!
//! A bundle is an ordered list of up to five transactions that execute
//! atomically, in order, if accepted (paper §2.3). Bundles carry their own
//! id — never recorded on the final ledger, which is precisely why the
//! paper had to scrape the Jito Explorer to see them.

use serde::{Deserialize, Serialize};

use sandwich_ledger::Transaction;
use sandwich_types::{Hash, Lamports};

use crate::tips::declared_tip;

/// Maximum transactions per bundle (Jito's limit).
pub const MAX_BUNDLE_LEN: usize = 5;

/// A bundle id: the hash over the ordered transaction ids.
pub type BundleId = Hash;

/// The id a bundle with these ordered transaction ids has. Deriving the id
/// from the signatures alone (without a [`Bundle`] in hand) lets consumers
/// that only see collected records — the segment store codec, for one —
/// recompute ids instead of storing them.
pub fn bundle_id_of(tx_ids: &[sandwich_ledger::TransactionId]) -> BundleId {
    let mut parts: Vec<&[u8]> = Vec::with_capacity(tx_ids.len() + 1);
    parts.push(b"bundle");
    for id in tx_ids {
        parts.push(&id.0);
    }
    Hash::digest_parts(&parts)
}

/// Why a bundle was rejected before the auction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BundleError {
    /// Bundles must contain at least one transaction.
    Empty,
    /// Bundles may contain at most [`MAX_BUNDLE_LEN`] transactions.
    TooLong {
        /// Offending length.
        len: usize,
    },
    /// The declared tip is below the engine's minimum.
    TipTooLow {
        /// Declared tip.
        declared: Lamports,
        /// Required minimum.
        minimum: Lamports,
    },
    /// The same transaction appears twice in the bundle.
    DuplicateTransaction,
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Empty => write!(f, "empty bundle"),
            BundleError::TooLong { len } => {
                write!(
                    f,
                    "bundle of {len} transactions exceeds max {MAX_BUNDLE_LEN}"
                )
            }
            BundleError::TipTooLow { declared, minimum } => {
                write!(f, "declared tip {declared} below minimum {minimum}")
            }
            BundleError::DuplicateTransaction => write!(f, "duplicate transaction in bundle"),
        }
    }
}

impl std::error::Error for BundleError {}

/// An ordered, atomic group of transactions submitted to the block engine.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bundle {
    /// Transactions in execution order.
    pub transactions: Vec<Transaction>,
}

impl Bundle {
    /// Build a bundle, enforcing the structural rules (length, duplicates).
    pub fn new(transactions: Vec<Transaction>) -> Result<Self, BundleError> {
        if transactions.is_empty() {
            return Err(BundleError::Empty);
        }
        if transactions.len() > MAX_BUNDLE_LEN {
            return Err(BundleError::TooLong {
                len: transactions.len(),
            });
        }
        let mut ids: Vec<_> = transactions.iter().map(|t| t.id()).collect();
        ids.sort();
        ids.dedup();
        if ids.len() != transactions.len() {
            return Err(BundleError::DuplicateTransaction);
        }
        Ok(Bundle { transactions })
    }

    /// The bundle id: hash of the ordered transaction ids.
    pub fn id(&self) -> BundleId {
        bundle_id_of(&self.tx_ids())
    }

    /// The ordered transaction ids — the join key the ground-truth label
    /// book uses to find a bundle again after it lands.
    pub fn tx_ids(&self) -> Vec<sandwich_ledger::TransactionId> {
        self.transactions.iter().map(|t| t.id()).collect()
    }

    /// Number of transactions in the bundle.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Always false: bundles cannot be empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sum of declared tips across the bundle's transactions.
    pub fn declared_tip(&self) -> Lamports {
        self.transactions.iter().map(declared_tip).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tips::tip_ix;
    use sandwich_ledger::TransactionBuilder;
    use sandwich_types::Keypair;

    fn tx(label: &str, nonce: u64) -> Transaction {
        TransactionBuilder::new(Keypair::from_label(label))
            .nonce(nonce)
            .instruction(tip_ix(Lamports(1_000), nonce))
            .build()
    }

    #[test]
    fn id_depends_on_order() {
        let a = tx("a", 1);
        let b = tx("b", 1);
        let ab = Bundle::new(vec![a.clone(), b.clone()]).unwrap();
        let ba = Bundle::new(vec![b, a]).unwrap();
        assert_ne!(ab.id(), ba.id());
    }

    #[test]
    fn id_is_stable() {
        let bundle = Bundle::new(vec![tx("a", 1)]).unwrap();
        assert_eq!(bundle.id(), bundle.id());
    }

    #[test]
    fn rejects_empty_and_oversized() {
        assert_eq!(Bundle::new(vec![]), Err(BundleError::Empty));
        let txs: Vec<_> = (0..6).map(|i| tx("a", i)).collect();
        assert_eq!(Bundle::new(txs), Err(BundleError::TooLong { len: 6 }));
    }

    #[test]
    fn rejects_duplicates() {
        let t = tx("a", 1);
        assert_eq!(
            Bundle::new(vec![t.clone(), t]),
            Err(BundleError::DuplicateTransaction)
        );
    }

    #[test]
    fn declared_tip_sums_across_transactions() {
        let bundle = Bundle::new(vec![tx("a", 1), tx("b", 2)]).unwrap();
        assert_eq!(bundle.declared_tip(), Lamports(2_000));
    }

    #[test]
    fn tx_ids_match_id_derivation() {
        let bundle = Bundle::new(vec![tx("a", 1), tx("b", 2)]).unwrap();
        let ids = bundle.tx_ids();
        assert_eq!(ids.len(), 2);
        assert_eq!(bundle_id_of(&ids), bundle.id());
    }

    #[test]
    fn max_length_accepted() {
        let txs: Vec<_> = (0..5).map(|i| tx("a", i)).collect();
        let bundle = Bundle::new(txs).unwrap();
        assert_eq!(bundle.len(), 5);
    }
}
