//! The Jito layer: bundles, tip accounts, mempools, and the block engine's
//! tip auction with atomic bundle execution.
//!
//! These are the documented Jito semantics the measured sandwich attacks
//! rely on (paper §2.3): ≤5-transaction bundles, ordered execution,
//! drop-on-failure, tips as auction bids, and no nested bundling.

#![warn(missing_docs)]

pub mod bundle;
pub mod engine;
pub mod mempool;
pub mod tips;

pub use bundle::{bundle_id_of, Bundle, BundleError, BundleId, MAX_BUNDLE_LEN};
pub use engine::{BlockEngine, DropReason, DroppedBundle, LandedBundle, SlotResult};
pub use mempool::{Mempool, PendingTx, Visibility};
pub use tips::{
    declared_tip, is_tip_account, is_tip_only, realized_tip, tip_account, tip_accounts, tip_ix,
    TIP_ACCOUNT_COUNT,
};
