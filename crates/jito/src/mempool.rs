//! The transaction mempool.
//!
//! Solana famously has no public mempool; Jito opened one in 2022 and shut
//! it in March 2024 (paper §2.3). Sandwiching today relies on *private*
//! mempools run by colluding validators. The simulator models both: a
//! [`Mempool`] holds pending native transactions, and its
//! [`Visibility`] says which searchers may observe it.

use std::collections::{HashSet, VecDeque};

use sandwich_ledger::{Transaction, TransactionId};
use sandwich_types::Slot;

/// Who can observe pending transactions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Visibility {
    /// Anyone may look (Jito's pre-March-2024 public mempool).
    Public,
    /// Only the named searcher indices may look (validator-run private
    /// mempools, the post-2024 reality the paper measures).
    Private(HashSet<u32>),
}

/// A pending transaction with its submission slot.
#[derive(Clone, Debug)]
pub struct PendingTx {
    /// The submitted transaction.
    pub tx: Transaction,
    /// Slot at which it entered the pool.
    pub slot: Slot,
}

/// A queue of pending native transactions.
#[derive(Debug)]
pub struct Mempool {
    visibility: Visibility,
    pending: VecDeque<PendingTx>,
}

impl Mempool {
    /// A mempool with the given visibility.
    pub fn new(visibility: Visibility) -> Self {
        Mempool {
            visibility,
            pending: VecDeque::new(),
        }
    }

    /// Submit a native transaction.
    pub fn submit(&mut self, tx: Transaction, slot: Slot) {
        self.pending.push_back(PendingTx { tx, slot });
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// A searcher's view of the pool — empty unless the visibility rules
    /// grant this searcher access.
    pub fn observe(&self, searcher: u32) -> Vec<&PendingTx> {
        match &self.visibility {
            Visibility::Public => self.pending.iter().collect(),
            Visibility::Private(allowed) if allowed.contains(&searcher) => {
                self.pending.iter().collect()
            }
            Visibility::Private(_) => Vec::new(),
        }
    }

    /// Drain every pending transaction for block inclusion (the leader
    /// always sees its own queue).
    pub fn drain(&mut self) -> Vec<Transaction> {
        self.pending.drain(..).map(|p| p.tx).collect()
    }

    /// Remove specific transactions (landed inside someone's bundle).
    pub fn remove(&mut self, ids: &HashSet<TransactionId>) {
        self.pending.retain(|p| !ids.contains(&p.tx.id()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_ledger::TransactionBuilder;
    use sandwich_types::Keypair;

    fn tx(nonce: u64) -> Transaction {
        TransactionBuilder::new(Keypair::from_label("user"))
            .nonce(nonce)
            .build()
    }

    #[test]
    fn public_pool_is_observable_by_anyone() {
        let mut pool = Mempool::new(Visibility::Public);
        pool.submit(tx(1), Slot(5));
        assert_eq!(pool.observe(0).len(), 1);
        assert_eq!(pool.observe(99).len(), 1);
    }

    #[test]
    fn private_pool_restricts_observers() {
        let mut allowed = HashSet::new();
        allowed.insert(7u32);
        let mut pool = Mempool::new(Visibility::Private(allowed));
        pool.submit(tx(1), Slot(5));
        assert_eq!(pool.observe(7).len(), 1);
        assert!(pool.observe(8).is_empty());
    }

    #[test]
    fn remove_deletes_landed_transactions() {
        let mut pool = Mempool::new(Visibility::Public);
        let a = tx(1);
        let b = tx(2);
        pool.submit(a.clone(), Slot(1));
        pool.submit(b.clone(), Slot(1));
        let mut landed = HashSet::new();
        landed.insert(a.id());
        pool.remove(&landed);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.drain()[0].id(), b.id());
    }

    #[test]
    fn drain_empties_pool() {
        let mut pool = Mempool::new(Visibility::Public);
        pool.submit(tx(1), Slot(1));
        pool.submit(tx(2), Slot(1));
        assert_eq!(pool.drain().len(), 2);
        assert!(pool.is_empty());
    }
}
