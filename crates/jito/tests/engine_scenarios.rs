//! Scenario tests for the block engine: multi-slot flows, mempool
//! interplay, and auction economics.

use std::collections::HashSet;
use std::sync::Arc;

use sandwich_jito::{realized_tip, tip_ix, BlockEngine, Bundle, DropReason, Mempool, Visibility};
use sandwich_ledger::{Bank, Transaction, TransactionBuilder};
use sandwich_types::{Keypair, Lamports, Slot};

fn funded_bank() -> Arc<Bank> {
    let bank = Arc::new(Bank::new(Keypair::from_label("leader").pubkey()));
    for i in 0..10 {
        bank.airdrop(
            Keypair::from_label(&format!("user-{i}")).pubkey(),
            Lamports::from_sol(100.0),
        );
    }
    bank
}

fn user(i: usize) -> Keypair {
    Keypair::from_label(&format!("user-{i}"))
}

fn tip_tx(who: &Keypair, tip: u64, nonce: u64) -> Transaction {
    TransactionBuilder::new(*who)
        .nonce(nonce)
        .instruction(tip_ix(Lamports(tip), nonce))
        .build()
}

#[test]
fn tips_accrue_across_slots_and_auction_is_stable() {
    let bank = funded_bank();
    let mut engine = BlockEngine::new(bank.clone());

    let mut expected_tips = 0u64;
    for slot in 1..=20u64 {
        let bundles: Vec<Bundle> = (0..4)
            .map(|i| {
                let tip = 1_000 + slot * 100 + i * 10;
                expected_tips += tip;
                Bundle::new(vec![tip_tx(&user(i as usize), tip, slot * 10 + i)]).unwrap()
            })
            .collect();
        let result = engine.produce_slot(Slot(slot), bundles, vec![]);
        assert_eq!(result.bundles.len(), 4);
        // Auction order: realized tips non-increasing within the slot.
        let tips: Vec<u64> = result.bundles.iter().map(|b| b.tip.0).collect();
        let mut sorted = tips.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(tips, sorted, "slot {slot} auction order");
    }

    let total_on_tip_accounts: u64 = sandwich_jito::tip_accounts()
        .iter()
        .map(|a| bank.lamports(a).0)
        .sum();
    assert_eq!(total_on_tip_accounts, expected_tips);
}

#[test]
fn mempool_feeds_regular_flow_and_bundles_take_priority() {
    let bank = funded_bank();
    let mut engine = BlockEngine::new(bank.clone());
    let mut mempool = Mempool::new(Visibility::Public);

    // A victim-style native transaction sits in the pool.
    let victim_tx = TransactionBuilder::new(user(0)).nonce(1).build();
    mempool.submit(victim_tx.clone(), Slot(1));

    // A searcher observes it and bundles it with a tip.
    let observed = mempool.observe(42);
    assert_eq!(observed.len(), 1);
    let bundle = Bundle::new(vec![tip_tx(&user(1), 500_000, 1), observed[0].tx.clone()]).unwrap();

    // The leader drains the pool for the same slot.
    let regular = mempool.drain();
    let result = engine.produce_slot(Slot(2), vec![bundle], regular);

    // The victim landed inside the bundle, not as a regular transaction.
    assert_eq!(result.bundles.len(), 1);
    assert_eq!(result.bundles[0].metas[1].tx_id, victim_tx.id());
    assert!(result.regular.is_empty());
    // Exactly once on chain.
    let ids: Vec<_> = result.block.transactions.iter().collect();
    let unique: HashSet<_> = ids.iter().collect();
    assert_eq!(ids.len(), unique.len());
}

#[test]
fn five_transaction_bundle_is_fully_atomic() {
    let bank = funded_bank();
    let mut engine = BlockEngine::new(bank.clone());

    // A chain of transfers where each hop funds the next signer; tx 5
    // fails (overdraw) → the whole bundle must vanish.
    let fresh: Vec<Keypair> = (0..5)
        .map(|i| Keypair::from_label(&format!("fresh-{i}")))
        .collect();
    bank.airdrop(fresh[0].pubkey(), Lamports::from_sol(10.0));
    let mut txs = vec![tip_tx(&user(0), 10_000, 99)];
    for i in 0..3 {
        txs.push(
            TransactionBuilder::new(fresh[i])
                .nonce(1)
                .transfer(fresh[i + 1].pubkey(), Lamports::from_sol(5.0 - i as f64))
                .build(),
        );
    }
    // Overdraw: fresh[3] tries to send far more than it received.
    txs.push(
        TransactionBuilder::new(fresh[3])
            .nonce(1)
            .transfer(fresh[4].pubkey(), Lamports::from_sol(500.0))
            .build(),
    );
    let bundle = Bundle::new(txs).unwrap();
    let result = engine.produce_slot(Slot(1), vec![bundle], vec![]);
    assert!(result.bundles.is_empty());
    assert!(matches!(
        &result.dropped[0].reason,
        DropReason::ExecutionFailed { index: 4, .. }
    ));
    for f in &fresh[1..] {
        assert_eq!(
            bank.lamports(&f.pubkey()),
            Lamports::ZERO,
            "no partial state"
        );
    }
}

#[test]
fn realized_tip_matches_declared_for_simple_bundles() {
    let bank = funded_bank();
    let mut engine = BlockEngine::new(bank);
    let bundle = Bundle::new(vec![tip_tx(&user(2), 123_456, 7)]).unwrap();
    let declared = bundle.declared_tip();
    let result = engine.produce_slot(Slot(1), vec![bundle], vec![]);
    assert_eq!(result.bundles[0].tip, declared);
    assert_eq!(realized_tip(&result.bundles[0].metas[0]), declared);
}
