//! Attacker-side sandwich planning math.
//!
//! Given a pending victim swap (observed in a private mempool) this module
//! computes the largest front-run that still lets the victim's slippage
//! guard pass, and the attacker's expected profit — the optimization every
//! sandwich bot runs before submitting a bundle. Prior work shows slippage
//! tolerance caps what an attacker can extract but cannot prevent the
//! attack (paper §2.2); this math is that cap made explicit.
//!
//! Directions are expressed by the mint the victim pays (`mint_in`); the
//! same math covers SOL-legged and token–token pools.

use sandwich_types::Pubkey;

use crate::pool::PoolState;

/// A fully planned sandwich against a victim swap paying `mint_in`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SandwichPlan {
    /// Attacker's front-run input, in the victim's input mint.
    pub front_run_in: u64,
    /// Output tokens the attacker acquires in the front-run.
    pub front_run_out: u64,
    /// Output the victim receives (post-front-run rate).
    pub victim_out: u64,
    /// Input-mint amount the attacker receives selling everything back.
    pub back_run_out: u64,
    /// Attacker profit in the input mint before tips and fees
    /// (`back_run_out - front_run_in`; may be negative).
    pub gross_profit: i128,
}

/// The victim's minimum acceptable output for a quoted swap under a
/// slippage tolerance in basis points.
pub fn victim_min_out(
    pool: &PoolState,
    mint_in: &Pubkey,
    victim_in: u64,
    slippage_bps: u32,
) -> Option<u64> {
    let quote = pool.quote(mint_in, victim_in)?;
    Some((quote as u128 * (10_000 - slippage_bps as u128) / 10_000) as u64)
}

/// Simulate the full sandwich [front-run, victim, back-run] for a given
/// front-run size. Returns `None` if any leg is unquotable or the victim's
/// guard would fail (the bundle would revert and never land).
pub fn plan_with_front_run(
    pool: &PoolState,
    mint_in: &Pubkey,
    front_run_in: u64,
    victim_in: u64,
    victim_min_out: u64,
) -> Option<SandwichPlan> {
    let mint_out = pool.other_mint(mint_in)?;
    let mut p = pool.clone();

    let front_run_out = if front_run_in == 0 {
        0
    } else {
        let out = p.quote(mint_in, front_run_in)?;
        p.apply(mint_in, front_run_in, out);
        out
    };

    let victim_out = p.quote(mint_in, victim_in)?;
    if victim_out < victim_min_out {
        return None;
    }
    p.apply(mint_in, victim_in, victim_out);

    let back_run_out = if front_run_out == 0 {
        0
    } else {
        let out = p.quote(&mint_out, front_run_out)?;
        p.apply(&mint_out, front_run_out, out);
        out
    };

    Some(SandwichPlan {
        front_run_in,
        front_run_out,
        victim_out,
        back_run_out,
        gross_profit: back_run_out as i128 - front_run_in as i128,
    })
}

/// Largest front-run that keeps the victim's guard satisfied, found by
/// binary search, bounded by the attacker's bankroll in the input mint.
pub fn max_front_run(
    pool: &PoolState,
    mint_in: &Pubkey,
    victim_in: u64,
    victim_min_out: u64,
    bankroll: u64,
) -> u64 {
    // Feasibility is monotone: a larger front-run worsens the victim's rate.
    if plan_with_front_run(pool, mint_in, 0, victim_in, victim_min_out).is_none() {
        return 0;
    }
    let mut hi = bankroll;
    if plan_with_front_run(pool, mint_in, hi, victim_in, victim_min_out).is_some() {
        return hi;
    }
    let mut lo = 0u64;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if plan_with_front_run(pool, mint_in, mid, victim_in, victim_min_out).is_some() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Plan the best sandwich against a victim swap: the maximal feasible
/// front-run, returned only when gross profit covers `min_profit`.
pub fn plan_optimal(
    pool: &PoolState,
    mint_in: &Pubkey,
    victim_in: u64,
    victim_min_out: u64,
    bankroll: u64,
    min_profit: i128,
) -> Option<SandwichPlan> {
    let front = max_front_run(pool, mint_in, victim_in, victim_min_out, bankroll);
    if front == 0 {
        return None;
    }
    let plan = plan_with_front_run(pool, mint_in, front, victim_in, victim_min_out)?;
    if plan.gross_profit >= min_profit {
        Some(plan)
    } else {
        None
    }
}

/// Tokens the victim missed out on versus a clean (unsandwiched) swap —
/// the per-victim loss quantification of paper §4.1.
pub fn victim_loss_tokens(
    pool: &PoolState,
    mint_in: &Pubkey,
    victim_in: u64,
    actual_out: u64,
) -> i128 {
    match pool.quote(mint_in, victim_in) {
        Some(clean) => clean as i128 - actual_out as i128,
        None => 0,
    }
}

/// Convert an output-token shortfall into the input mint at the pool's
/// pre-attack marginal rate (the attacker's rate × victim volume, §4.1).
pub fn shortfall_in_input_mint(pool: &PoolState, mint_in: &Pubkey, shortfall_out: i128) -> i128 {
    match pool.marginal_rate(mint_in) {
        Some(rate) => (shortfall_out as f64 * rate) as i128,
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_ledger::native_sol_mint;

    fn pool() -> PoolState {
        PoolState::new(
            native_sol_mint(),
            1_000_000_000_000, // 1,000 SOL
            Pubkey::derive("mint:MEME"),
            50_000_000_000_000, // 5e13 units
            30,
        )
    }

    fn sol() -> Pubkey {
        native_sol_mint()
    }

    #[test]
    fn zero_front_run_matches_clean_quote() {
        let p = pool();
        let min_out = victim_min_out(&p, &sol(), 10_000_000_000, 100).unwrap();
        let plan = plan_with_front_run(&p, &sol(), 0, 10_000_000_000, min_out).unwrap();
        assert_eq!(plan.victim_out, p.quote(&sol(), 10_000_000_000).unwrap());
        assert_eq!(plan.gross_profit, 0);
    }

    #[test]
    fn excessive_front_run_violates_guard() {
        let p = pool();
        let victim_in = 10_000_000_000u64;
        let min_out = victim_min_out(&p, &sol(), victim_in, 50).unwrap(); // tight 0.5%
        assert!(plan_with_front_run(&p, &sol(), 500_000_000_000, victim_in, min_out).is_none());
    }

    #[test]
    fn max_front_run_is_boundary() {
        let p = pool();
        let victim_in = 10_000_000_000u64;
        let min_out = victim_min_out(&p, &sol(), victim_in, 200).unwrap(); // 2%
        let max = max_front_run(&p, &sol(), victim_in, min_out, u64::MAX / 4);
        assert!(max > 0);
        assert!(plan_with_front_run(&p, &sol(), max, victim_in, min_out).is_some());
        assert!(plan_with_front_run(&p, &sol(), max + 2, victim_in, min_out).is_none());
    }

    #[test]
    fn looser_slippage_allows_bigger_attack() {
        let p = pool();
        let victim_in = 10_000_000_000u64;
        let tight = max_front_run(
            &p,
            &sol(),
            victim_in,
            victim_min_out(&p, &sol(), victim_in, 50).unwrap(),
            u64::MAX / 4,
        );
        let loose = max_front_run(
            &p,
            &sol(),
            victim_in,
            victim_min_out(&p, &sol(), victim_in, 500).unwrap(),
            u64::MAX / 4,
        );
        assert!(loose > tight);
    }

    #[test]
    fn optimal_plan_is_profitable_with_loose_guard() {
        let p = pool();
        let victim_in = 50_000_000_000u64; // 50 SOL — juicy
        let min_out = victim_min_out(&p, &sol(), victim_in, 500).unwrap(); // 5%
        let plan = plan_optimal(&p, &sol(), victim_in, min_out, u64::MAX / 4, 1).unwrap();
        assert!(plan.gross_profit > 0, "plan: {plan:?}");
        let loss = victim_loss_tokens(&p, &sol(), victim_in, plan.victim_out);
        assert!(loss > 0);
    }

    #[test]
    fn tight_guard_can_kill_profitability() {
        let p = pool();
        let victim_in = 1_000_000_000u64; // 1 SOL, small
        let min_out = victim_min_out(&p, &sol(), victim_in, 10).unwrap(); // 0.1%
        assert!(plan_optimal(&p, &sol(), victim_in, min_out, u64::MAX / 4, 10_000_000).is_none());
    }

    #[test]
    fn bankroll_caps_front_run() {
        let p = pool();
        let victim_in = 50_000_000_000u64;
        let min_out = victim_min_out(&p, &sol(), victim_in, 1_000).unwrap(); // 10%
        assert_eq!(
            max_front_run(&p, &sol(), victim_in, min_out, 1_000_000),
            1_000_000
        );
    }

    #[test]
    fn token_token_sandwich_plans_too() {
        // Sandwiching works identically on pools with no SOL leg — the 28%
        // class the paper could not price.
        let a = Pubkey::derive("mint:AAA");
        let b = Pubkey::derive("mint:BBB");
        let p = PoolState::new(a, 1_000_000_000_000, b, 2_000_000_000_000, 30);
        let victim_in = 50_000_000_000u64;
        let min_out = victim_min_out(&p, &a, victim_in, 500).unwrap();
        let plan = plan_optimal(&p, &a, victim_in, min_out, u64::MAX / 4, 1).unwrap();
        assert!(plan.gross_profit > 0);
    }

    #[test]
    fn shortfall_conversion_uses_marginal_rate() {
        let p = pool();
        let tokens = 1_000_000i128;
        // rate = 1e12 / 5e13 = 0.02 lamports per token unit
        assert_eq!(shortfall_in_input_mint(&p, &sol(), tokens), 20_000);
    }
}
