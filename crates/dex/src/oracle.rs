//! SOL/USD conversion.
//!
//! The paper converts all dollar figures at a single SOL/USD rate "as of
//! September 12, 2025" (~$242). The oracle supports that fixed conversion
//! plus an optional intra-period price path used only to modulate simulated
//! market activity.

use serde::{Deserialize, Serialize};

use sandwich_types::{LamportDelta, Lamports, LAMPORTS_PER_SOL};

/// The paper's conversion rate (USD per SOL, Sept 12 2025).
pub const PAPER_USD_PER_SOL: f64 = 242.0;

/// SOL→USD oracle with an optional per-day price path.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolUsdOracle {
    /// Rate used for all USD reporting (the paper's fixed rate).
    pub report_rate: f64,
    /// Optional per-day market rate path (multiplier on `report_rate`);
    /// affects simulated behaviour, never reported dollars.
    pub daily_multiplier: Vec<f64>,
}

impl Default for SolUsdOracle {
    fn default() -> Self {
        SolUsdOracle::fixed(PAPER_USD_PER_SOL)
    }
}

impl SolUsdOracle {
    /// A constant-rate oracle.
    pub fn fixed(report_rate: f64) -> Self {
        SolUsdOracle {
            report_rate,
            daily_multiplier: Vec::new(),
        }
    }

    /// Attach a per-day market multiplier path.
    pub fn with_path(mut self, daily_multiplier: Vec<f64>) -> Self {
        self.daily_multiplier = daily_multiplier;
        self
    }

    /// USD value of a lamport amount at the reporting rate.
    pub fn lamports_to_usd(&self, lamports: Lamports) -> f64 {
        lamports.0 as f64 / LAMPORTS_PER_SOL as f64 * self.report_rate
    }

    /// USD value of a signed lamport delta at the reporting rate.
    pub fn delta_to_usd(&self, delta: LamportDelta) -> f64 {
        delta.0 as f64 / LAMPORTS_PER_SOL as f64 * self.report_rate
    }

    /// USD value of a float SOL amount at the reporting rate.
    pub fn sol_to_usd(&self, sol: f64) -> f64 {
        sol * self.report_rate
    }

    /// Market rate on a given measurement day (for agent behaviour).
    pub fn market_rate(&self, day: u64) -> f64 {
        let mult = self
            .daily_multiplier
            .get(day as usize)
            .copied()
            .unwrap_or(1.0);
        self.report_rate * mult
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_conversions() {
        let o = SolUsdOracle::default();
        assert!((o.lamports_to_usd(Lamports(LAMPORTS_PER_SOL)) - 242.0).abs() < 1e-9);
        assert!((o.delta_to_usd(LamportDelta(-(LAMPORTS_PER_SOL as i64))) + 242.0).abs() < 1e-9);
        assert!((o.sol_to_usd(2.0) - 484.0).abs() < 1e-9);
    }

    #[test]
    fn market_path_defaults_to_report_rate() {
        let o = SolUsdOracle::fixed(100.0).with_path(vec![1.0, 0.9, 1.1]);
        assert!((o.market_rate(1) - 90.0).abs() < 1e-9);
        assert!((o.market_rate(99) - 100.0).abs() < 1e-9); // off the path
    }
}
