//! Constant-product (x·y = k) AMM math.
//!
//! This is the price-impact mechanism sandwiching exploits: a front-run buy
//! moves the marginal rate against the victim, and the back-run sell
//! captures the difference (paper §2.2, Table 1).

/// Basis points denominator.
pub const BPS: u64 = 10_000;

/// Output amount for an exact-input swap against reserves, after the LP fee.
///
/// Returns `None` on empty reserves or overflow-free degenerate input.
pub fn quote_exact_in(
    amount_in: u64,
    reserve_in: u64,
    reserve_out: u64,
    fee_bps: u16,
) -> Option<u64> {
    if reserve_in == 0 || reserve_out == 0 || amount_in == 0 {
        return None;
    }
    let in_after_fee = (amount_in as u128) * (BPS - fee_bps as u64) as u128 / BPS as u128;
    if in_after_fee == 0 {
        return Some(0);
    }
    let numerator = in_after_fee * reserve_out as u128;
    let denominator = reserve_in as u128 + in_after_fee;
    Some((numerator / denominator) as u64)
}

/// Input amount required to receive exactly `amount_out`, inverse of
/// [`quote_exact_in`]. Returns `None` if `amount_out` exceeds reserves.
pub fn quote_exact_out(
    amount_out: u64,
    reserve_in: u64,
    reserve_out: u64,
    fee_bps: u16,
) -> Option<u64> {
    if reserve_in == 0 || reserve_out == 0 || amount_out >= reserve_out {
        return None;
    }
    let numerator = reserve_in as u128 * amount_out as u128;
    let denominator = (reserve_out - amount_out) as u128;
    let in_after_fee = numerator / denominator + 1; // round up
    let amount_in = in_after_fee * BPS as u128 / (BPS - fee_bps as u64) as u128 + 1;
    u64::try_from(amount_in).ok()
}

/// Marginal spot price of the output token in input-token units, as a float
/// (reporting only — execution always uses integer quotes).
pub fn spot_price(reserve_in: u64, reserve_out: u64) -> f64 {
    reserve_in as f64 / reserve_out as f64
}

/// Effective execution rate (input per output) of a quoted swap.
pub fn execution_rate(amount_in: u64, amount_out: u64) -> f64 {
    amount_in as f64 / amount_out as f64
}

/// Reserves after applying an exact-input swap.
pub fn apply_swap(
    amount_in: u64,
    amount_out: u64,
    reserve_in: u64,
    reserve_out: u64,
) -> (u64, u64) {
    (reserve_in + amount_in, reserve_out - amount_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_quote() {
        // 1:1 pool, tiny trade, 0 fee: out slightly below in.
        let out = quote_exact_in(1_000, 1_000_000, 1_000_000, 0).unwrap();
        assert_eq!(out, 999); // 1000 * 1e6 / (1e6 + 1000) = 999.000999
    }

    #[test]
    fn fee_reduces_output() {
        let no_fee = quote_exact_in(10_000, 1_000_000, 1_000_000, 0).unwrap();
        let with_fee = quote_exact_in(10_000, 1_000_000, 1_000_000, 30).unwrap();
        assert!(with_fee < no_fee);
    }

    #[test]
    fn empty_reserves_rejected() {
        assert_eq!(quote_exact_in(100, 0, 1_000, 0), None);
        assert_eq!(quote_exact_in(100, 1_000, 0, 0), None);
        assert_eq!(quote_exact_in(0, 1_000, 1_000, 0), None);
    }

    #[test]
    fn exact_out_inverts_exact_in() {
        let (r_in, r_out, fee) = (5_000_000u64, 2_000_000u64, 30u16);
        let want_out = 12_345u64;
        let need_in = quote_exact_out(want_out, r_in, r_out, fee).unwrap();
        let got_out = quote_exact_in(need_in, r_in, r_out, fee).unwrap();
        assert!(got_out >= want_out, "paying the quoted input must deliver");
        // And it should not overshoot wildly (within rounding of a few units).
        let less = quote_exact_in(need_in.saturating_sub(3), r_in, r_out, fee).unwrap();
        assert!(less <= got_out);
    }

    #[test]
    fn front_run_worsens_victim_rate() {
        // The heart of the sandwich: the victim's rate after a front-run buy
        // is strictly worse than before.
        let (mut sol, mut tok) = (10_000_000_000u64, 50_000_000_000u64);
        let victim_in = 100_000_000u64;
        let clean_out = quote_exact_in(victim_in, sol, tok, 30).unwrap();

        let attacker_in = 500_000_000u64;
        let attacker_out = quote_exact_in(attacker_in, sol, tok, 30).unwrap();
        (sol, tok) = apply_swap(attacker_in, attacker_out, sol, tok);

        let sandwiched_out = quote_exact_in(victim_in, sol, tok, 30).unwrap();
        assert!(sandwiched_out < clean_out);
    }

    proptest! {
        #[test]
        fn output_never_exceeds_reserve(
            amount_in in 1u64..u32::MAX as u64,
            reserve_in in 1u64..u64::MAX / 2,
            reserve_out in 1u64..u32::MAX as u64,
            fee_bps in 0u16..1000,
        ) {
            if let Some(out) = quote_exact_in(amount_in, reserve_in, reserve_out, fee_bps) {
                prop_assert!(out < reserve_out);
            }
        }

        #[test]
        fn k_never_decreases(
            amount_in in 1u64..u32::MAX as u64,
            reserve_in in 1_000u64..u32::MAX as u64,
            reserve_out in 1_000u64..u32::MAX as u64,
            fee_bps in 0u16..1000,
        ) {
            if let Some(out) = quote_exact_in(amount_in, reserve_in, reserve_out, fee_bps) {
                let k_before = reserve_in as u128 * reserve_out as u128;
                let (ri, ro) = apply_swap(amount_in, out, reserve_in, reserve_out);
                let k_after = ri as u128 * ro as u128;
                prop_assert!(k_after >= k_before);
            }
        }

        #[test]
        fn bigger_input_never_yields_less(
            small in 1u64..u32::MAX as u64 / 2,
            extra in 1u64..u32::MAX as u64 / 2,
            reserve_in in 1_000u64..u32::MAX as u64,
            reserve_out in 1_000u64..u32::MAX as u64,
            fee_bps in 0u16..1000,
        ) {
            let a = quote_exact_in(small, reserve_in, reserve_out, fee_bps);
            let b = quote_exact_in(small + extra, reserve_in, reserve_out, fee_bps);
            if let (Some(a), Some(b)) = (a, b) {
                prop_assert!(b >= a);
            }
        }

        #[test]
        fn round_trip_never_profits(
            amount_in in 1_000u64..u32::MAX as u64,
            reserve_in in 1_000_000u64..u32::MAX as u64,
            reserve_out in 1_000_000u64..u32::MAX as u64,
            fee_bps in 0u16..1000,
        ) {
            // Buying then immediately selling back cannot yield more than
            // was paid (no free arbitrage against a single pool).
            if let Some(out) = quote_exact_in(amount_in, reserve_in, reserve_out, fee_bps) {
                if out > 0 {
                    let (ri, ro) = apply_swap(amount_in, out, reserve_in, reserve_out);
                    if let Some(back) = quote_exact_in(out, ro, ri, fee_bps) {
                        prop_assert!(back <= amount_in);
                    }
                }
            }
        }
    }
}
