//! AMM pool state and addressing.
//!
//! Pools trade an arbitrary pair of mints. Native SOL participates as the
//! wrapped-SOL sentinel mint ([`sandwich_ledger::native_sol_mint`]), exactly
//! like WSOL on mainnet. Token–token pools matter to the reproduction: 28%
//! of the paper's detected sandwiches traded no SOL at all and were excluded
//! from dollar quantification (§4.1).

use serde::{Deserialize, Serialize};

use sandwich_ledger::native_sol_mint;
use sandwich_types::Pubkey;

use crate::math;

/// On-chain state of one constant-product pool over the pair (x, y),
/// stored with `mint_x < mint_y` canonically.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolState {
    /// Lexicographically smaller mint of the pair.
    pub mint_x: Pubkey,
    /// Lexicographically larger mint of the pair.
    pub mint_y: Pubkey,
    /// Reserve of `mint_x` (lamports when `mint_x` is native SOL).
    pub reserve_x: u64,
    /// Reserve of `mint_y`.
    pub reserve_y: u64,
    /// LP fee in basis points.
    pub fee_bps: u16,
}

impl PoolState {
    /// Canonical (sorted) pair ordering.
    pub fn canonical_pair(a: Pubkey, b: Pubkey) -> (Pubkey, Pubkey) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Canonical pool address for a pair of mints (order-insensitive).
    pub fn address_for(a: &Pubkey, b: &Pubkey) -> Pubkey {
        let (x, y) = Self::canonical_pair(*a, *b);
        Pubkey::derive_with(&x, &format!("amm-pool:{y}"))
    }

    /// Build state from an unordered pair and its reserves.
    pub fn new(
        mint_a: Pubkey,
        reserve_a: u64,
        mint_b: Pubkey,
        reserve_b: u64,
        fee_bps: u16,
    ) -> Self {
        if mint_a <= mint_b {
            PoolState {
                mint_x: mint_a,
                mint_y: mint_b,
                reserve_x: reserve_a,
                reserve_y: reserve_b,
                fee_bps,
            }
        } else {
            PoolState {
                mint_x: mint_b,
                mint_y: mint_a,
                reserve_x: reserve_b,
                reserve_y: reserve_a,
                fee_bps,
            }
        }
    }

    /// This pool's address.
    pub fn address(&self) -> Pubkey {
        Self::address_for(&self.mint_x, &self.mint_y)
    }

    /// True when one side of the pair is native SOL.
    pub fn has_sol_leg(&self) -> bool {
        let sol = native_sol_mint();
        self.mint_x == sol || self.mint_y == sol
    }

    /// The opposite mint of the pair, if `mint` belongs to it.
    pub fn other_mint(&self, mint: &Pubkey) -> Option<Pubkey> {
        if *mint == self.mint_x {
            Some(self.mint_y)
        } else if *mint == self.mint_y {
            Some(self.mint_x)
        } else {
            None
        }
    }

    /// Reserves ordered (in, out) for a swap paying `mint_in`.
    pub fn reserves_for(&self, mint_in: &Pubkey) -> Option<(u64, u64)> {
        if *mint_in == self.mint_x {
            Some((self.reserve_x, self.reserve_y))
        } else if *mint_in == self.mint_y {
            Some((self.reserve_y, self.reserve_x))
        } else {
            None
        }
    }

    /// Quote an exact-input swap paying `mint_in`.
    pub fn quote(&self, mint_in: &Pubkey, amount_in: u64) -> Option<u64> {
        let (r_in, r_out) = self.reserves_for(mint_in)?;
        math::quote_exact_in(amount_in, r_in, r_out, self.fee_bps)
    }

    /// Apply an executed swap paying `mint_in`.
    pub fn apply(&mut self, mint_in: &Pubkey, amount_in: u64, amount_out: u64) {
        if *mint_in == self.mint_x {
            self.reserve_x += amount_in;
            self.reserve_y -= amount_out;
        } else if *mint_in == self.mint_y {
            self.reserve_y += amount_in;
            self.reserve_x -= amount_out;
        } else {
            panic!("mint not in pool");
        }
    }

    /// Marginal rate: units of `mint_in` per unit of the opposite mint.
    pub fn marginal_rate(&self, mint_in: &Pubkey) -> Option<f64> {
        let (r_in, r_out) = self.reserves_for(mint_in)?;
        Some(r_in as f64 / r_out as f64)
    }

    /// Serialize for storage in a `ProgramState` account.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("pool state serializes")
    }

    /// Deserialize from account bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        serde_json::from_slice(bytes).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sol_pool() -> PoolState {
        PoolState::new(
            native_sol_mint(),
            1_000_000_000_000,
            Pubkey::derive("mint:TEST"),
            5_000_000_000_000,
            30,
        )
    }

    #[test]
    fn canonical_ordering_is_stable() {
        let a = Pubkey::derive("mint:A");
        let b = Pubkey::derive("mint:B");
        let p1 = PoolState::new(a, 10, b, 20, 30);
        let p2 = PoolState::new(b, 20, a, 10, 30);
        assert_eq!(p1, p2);
        assert_eq!(
            PoolState::address_for(&a, &b),
            PoolState::address_for(&b, &a)
        );
    }

    #[test]
    fn serialization_roundtrip() {
        let p = sol_pool();
        assert_eq!(PoolState::from_bytes(&p.to_bytes()), Some(p));
    }

    #[test]
    fn quote_and_apply_preserve_k() {
        let mut p = sol_pool();
        let sol = native_sol_mint();
        let out = p.quote(&sol, 1_000_000_000).unwrap();
        let k_before = p.reserve_x as u128 * p.reserve_y as u128;
        p.apply(&sol, 1_000_000_000, out);
        let k_after = p.reserve_x as u128 * p.reserve_y as u128;
        assert!(k_after >= k_before);
    }

    #[test]
    fn sol_leg_detection() {
        assert!(sol_pool().has_sol_leg());
        let p = PoolState::new(
            Pubkey::derive("mint:A"),
            10,
            Pubkey::derive("mint:B"),
            20,
            30,
        );
        assert!(!p.has_sol_leg());
    }

    #[test]
    fn foreign_mint_rejected() {
        let p = sol_pool();
        let foreign = Pubkey::derive("mint:OTHER");
        assert_eq!(p.quote(&foreign, 100), None);
        assert_eq!(p.other_mint(&foreign), None);
        assert!(p.other_mint(&native_sol_mint()).is_some());
    }
}
