//! A constant-product DEX (Raydium-style) as an on-chain program, plus the
//! attacker-side sandwich-planning math and the SOL/USD oracle.
//!
//! Sandwich profitability and victim loss both derive from x·y = k price
//! impact; this crate is the "DEX pools" substitution documented in
//! DESIGN.md.

#![warn(missing_docs)]

pub mod math;
pub mod oracle;
pub mod pool;
pub mod program;
pub mod sandwich;

pub use oracle::{SolUsdOracle, PAPER_USD_PER_SOL};
pub use pool::PoolState;
pub use program::{
    amm_program_id, create_pool_ix, pool_state, swap_ix, AmmInstruction, AmmProgram,
};
pub use sandwich::{plan_optimal, plan_with_front_run, victim_min_out, SandwichPlan};
