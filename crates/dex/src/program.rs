//! The AMM as an on-chain program executed by the bank.
//!
//! Native SOL legs move as lamports on the pool account; token legs move
//! through token accounts owned by the pool address.

use serde::{Deserialize, Serialize};

use sandwich_ledger::{native_sol_mint, Instruction, Program, TxContext, TxError};
use sandwich_types::{Lamports, Pubkey};

use crate::pool::PoolState;

/// Address of the AMM program.
pub fn amm_program_id() -> Pubkey {
    Pubkey::derive("amm_program")
}

/// Instructions understood by the AMM program.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AmmInstruction {
    /// Seed a new pool from the signer's balances.
    CreatePool {
        /// One side of the pair (native SOL sentinel allowed).
        mint_a: Pubkey,
        /// Deposit of `mint_a` (lamports when native).
        amount_a: u64,
        /// The other side of the pair.
        mint_b: Pubkey,
        /// Deposit of `mint_b`.
        amount_b: u64,
        /// LP fee in basis points.
        fee_bps: u16,
    },
    /// Exact-input swap with a slippage guard.
    Swap {
        /// Mint the signer pays.
        mint_in: Pubkey,
        /// Mint the signer receives (identifies the pool with `mint_in`).
        mint_out: Pubkey,
        /// Exact input amount.
        amount_in: u64,
        /// Minimum acceptable output — the user's slippage tolerance
        /// (paper §2.2); the whole transaction fails below it.
        min_amount_out: u64,
    },
}

/// Build the `CreatePool` instruction.
pub fn create_pool_ix(
    mint_a: Pubkey,
    amount_a: u64,
    mint_b: Pubkey,
    amount_b: u64,
    fee_bps: u16,
) -> Instruction {
    Instruction::Program {
        program_id: amm_program_id(),
        data: serde_json::to_vec(&AmmInstruction::CreatePool {
            mint_a,
            amount_a,
            mint_b,
            amount_b,
            fee_bps,
        })
        .unwrap(),
    }
}

/// Build the `Swap` instruction.
pub fn swap_ix(
    mint_in: Pubkey,
    mint_out: Pubkey,
    amount_in: u64,
    min_amount_out: u64,
) -> Instruction {
    Instruction::Program {
        program_id: amm_program_id(),
        data: serde_json::to_vec(&AmmInstruction::Swap {
            mint_in,
            mint_out,
            amount_in,
            min_amount_out,
        })
        .unwrap(),
    }
}

/// The AMM program.
pub struct AmmProgram;

impl AmmProgram {
    fn fail(message: impl Into<String>) -> TxError {
        TxError::Program {
            program: amm_program_id(),
            message: message.into(),
        }
    }

    /// Move `amount` of `mint` from `from` to `to`, using lamports for the
    /// native sentinel and token accounts otherwise.
    fn move_asset(
        ctx: &mut TxContext<'_>,
        mint: &Pubkey,
        from: Pubkey,
        to: Pubkey,
        amount: u64,
    ) -> Result<(), TxError> {
        if *mint == native_sol_mint() {
            ctx.transfer_lamports(from, to, Lamports(amount))
        } else {
            ctx.transfer_tokens(*mint, from, to, amount)
        }
    }

    fn create_pool(
        ctx: &mut TxContext<'_>,
        mint_a: Pubkey,
        amount_a: u64,
        mint_b: Pubkey,
        amount_b: u64,
        fee_bps: u16,
    ) -> Result<(), TxError> {
        if mint_a == mint_b {
            return Err(Self::fail("pair must be two distinct mints"));
        }
        if amount_a == 0 || amount_b == 0 {
            return Err(Self::fail("pool must be seeded on both sides"));
        }
        if fee_bps >= 10_000 {
            return Err(Self::fail("fee must be under 100%"));
        }
        let addr = PoolState::address_for(&mint_a, &mint_b);
        if ctx.program_state(&addr, &amm_program_id()).is_ok() {
            return Err(Self::fail("pool already exists"));
        }
        let signer = ctx.signer();
        Self::move_asset(ctx, &mint_a, signer, addr, amount_a)?;
        Self::move_asset(ctx, &mint_b, signer, addr, amount_b)?;
        let state = PoolState::new(mint_a, amount_a, mint_b, amount_b, fee_bps);
        ctx.set_program_state(addr, amm_program_id(), state.to_bytes());
        Ok(())
    }

    fn swap(
        ctx: &mut TxContext<'_>,
        mint_in: Pubkey,
        mint_out: Pubkey,
        amount_in: u64,
        min_amount_out: u64,
    ) -> Result<(), TxError> {
        let addr = PoolState::address_for(&mint_in, &mint_out);
        let bytes = ctx
            .program_state(&addr, &amm_program_id())
            .map_err(|_| Self::fail("no pool for pair"))?;
        let mut state =
            PoolState::from_bytes(&bytes).ok_or_else(|| Self::fail("corrupt pool state"))?;
        if state.other_mint(&mint_in) != Some(mint_out) {
            return Err(Self::fail("pair does not match pool"));
        }
        let amount_out = state
            .quote(&mint_in, amount_in)
            .ok_or_else(|| Self::fail("unquotable swap"))?;
        if amount_out < min_amount_out {
            return Err(Self::fail(format!(
                "slippage tolerance exceeded: out {amount_out} < min {min_amount_out}"
            )));
        }
        if amount_out == 0 {
            return Err(Self::fail("swap yields nothing"));
        }
        let signer = ctx.signer();
        Self::move_asset(ctx, &mint_in, signer, addr, amount_in)?;
        Self::move_asset(ctx, &mint_out, addr, signer, amount_out)?;
        state.apply(&mint_in, amount_in, amount_out);
        ctx.set_program_state(addr, amm_program_id(), state.to_bytes());
        Ok(())
    }
}

impl Program for AmmProgram {
    fn id(&self) -> Pubkey {
        amm_program_id()
    }

    fn execute(&self, data: &[u8], ctx: &mut TxContext<'_>) -> Result<(), TxError> {
        let ix: AmmInstruction =
            serde_json::from_slice(data).map_err(|_| TxError::MalformedInstruction)?;
        match ix {
            AmmInstruction::CreatePool {
                mint_a,
                amount_a,
                mint_b,
                amount_b,
                fee_bps,
            } => Self::create_pool(ctx, mint_a, amount_a, mint_b, amount_b, fee_bps),
            AmmInstruction::Swap {
                mint_in,
                mint_out,
                amount_in,
                min_amount_out,
            } => Self::swap(ctx, mint_in, mint_out, amount_in, min_amount_out),
        }
    }
}

/// Read a pool's current state straight from a bank.
pub fn pool_state(
    bank: &sandwich_ledger::Bank,
    mint_a: &Pubkey,
    mint_b: &Pubkey,
) -> Option<PoolState> {
    let addr = PoolState::address_for(mint_a, mint_b);
    match bank.account(&addr)?.data {
        sandwich_ledger::AccountData::ProgramState { bytes, .. } => PoolState::from_bytes(&bytes),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use sandwich_ledger::{Bank, TokenInstruction, TransactionBuilder};
    use sandwich_types::Keypair;

    fn create_mint_and_fund(
        bank: &Bank,
        lp: &Keypair,
        name: &str,
        amount: u64,
        nonce: u64,
    ) -> Pubkey {
        let mint = Pubkey::derive(&format!("mint:{name}"));
        let tx = TransactionBuilder::new(*lp)
            .nonce(nonce)
            .instruction(Instruction::Token(TokenInstruction::CreateMint {
                mint,
                decimals: 6,
                symbol: name.into(),
            }))
            .instruction(Instruction::Token(TokenInstruction::MintTo {
                mint,
                to: lp.pubkey(),
                amount,
            }))
            .build();
        let meta = bank.execute_transaction(&tx).unwrap();
        assert!(meta.success, "{:?}", meta.error);
        mint
    }

    fn setup_sol_pool() -> (Bank, Keypair, Pubkey) {
        let bank = Bank::new(Keypair::from_label("validator").pubkey());
        bank.register_program(Arc::new(AmmProgram));
        let lp = Keypair::from_label("lp");
        bank.airdrop(lp.pubkey(), Lamports::from_sol(2_000.0));
        let mint = create_mint_and_fund(&bank, &lp, "MEME", 10_000_000_000_000, 100);
        let tx = TransactionBuilder::new(lp)
            .nonce(101)
            .instruction(create_pool_ix(
                native_sol_mint(),
                1_000_000_000_000,
                mint,
                5_000_000_000_000,
                30,
            ))
            .build();
        let meta = bank.execute_transaction(&tx).unwrap();
        assert!(meta.success, "{:?}", meta.error);
        (bank, lp, mint)
    }

    #[test]
    fn create_pool_moves_reserves() {
        let (bank, _, mint) = setup_sol_pool();
        let state = pool_state(&bank, &native_sol_mint(), &mint).unwrap();
        let addr = state.address();
        assert_eq!(bank.lamports(&addr), Lamports(1_000_000_000_000));
        assert_eq!(bank.token_balance(&addr, &mint), 5_000_000_000_000);
    }

    #[test]
    fn buy_swap_executes_and_updates_pool() {
        let (bank, _, mint) = setup_sol_pool();
        let sol = native_sol_mint();
        let trader = Keypair::from_label("trader");
        bank.airdrop(trader.pubkey(), Lamports::from_sol(10.0));
        let quote = pool_state(&bank, &sol, &mint)
            .unwrap()
            .quote(&sol, 1_000_000_000)
            .unwrap();
        let tx = TransactionBuilder::new(trader)
            .instruction(swap_ix(sol, mint, 1_000_000_000, quote))
            .build();
        let meta = bank.execute_transaction(&tx).unwrap();
        assert!(meta.success, "{:?}", meta.error);
        assert_eq!(bank.token_balance(&trader.pubkey(), &mint), quote);
        // Detector-visible effects: SOL debit, token credit.
        assert!(meta.sol_delta_of(&trader.pubkey()).0 < 0);
        assert_eq!(meta.token_delta_of(&trader.pubkey(), &mint), quote as i128);
    }

    #[test]
    fn slippage_guard_fails_transaction() {
        let (bank, _, mint) = setup_sol_pool();
        let sol = native_sol_mint();
        let trader = Keypair::from_label("trader");
        bank.airdrop(trader.pubkey(), Lamports::from_sol(10.0));
        let quote = pool_state(&bank, &sol, &mint)
            .unwrap()
            .quote(&sol, 1_000_000_000)
            .unwrap();
        let tx = TransactionBuilder::new(trader)
            .instruction(swap_ix(sol, mint, 1_000_000_000, quote + 1))
            .build();
        let meta = bank.execute_transaction(&tx).unwrap();
        assert!(!meta.success);
        assert!(meta.error.as_deref().unwrap().contains("slippage"));
        assert_eq!(bank.token_balance(&trader.pubkey(), &mint), 0);
    }

    #[test]
    fn token_token_pool_swaps_without_sol_legs() {
        let bank = Bank::new(Keypair::from_label("validator").pubkey());
        bank.register_program(Arc::new(AmmProgram));
        let lp = Keypair::from_label("lp");
        bank.airdrop(lp.pubkey(), Lamports::from_sol(10.0));
        let a = create_mint_and_fund(&bank, &lp, "AAA", 1_000_000_000, 1);
        let b = create_mint_and_fund(&bank, &lp, "BBB", 2_000_000_000, 2);
        let tx = TransactionBuilder::new(lp)
            .nonce(3)
            .instruction(create_pool_ix(a, 500_000_000, b, 1_000_000_000, 30))
            .build();
        assert!(bank.execute_transaction(&tx).unwrap().success);

        let trader = Keypair::from_label("trader");
        bank.airdrop(trader.pubkey(), Lamports::from_sol(1.0));
        let fund = TransactionBuilder::new(lp)
            .nonce(4)
            .token_transfer(a, trader.pubkey(), 10_000_000)
            .build();
        assert!(bank.execute_transaction(&fund).unwrap().success);

        let swap = TransactionBuilder::new(trader)
            .instruction(swap_ix(a, b, 1_000_000, 0))
            .build();
        let meta = bank.execute_transaction(&swap).unwrap();
        assert!(meta.success, "{:?}", meta.error);
        // No SOL moves besides the fee — this is the 28% "non-SOL" class.
        assert_eq!(meta.sol_deltas.len(), 2); // trader fee debit + validator credit
        assert!(meta.token_delta_of(&trader.pubkey(), &a) < 0);
        assert!(meta.token_delta_of(&trader.pubkey(), &b) > 0);
    }

    #[test]
    fn sell_swap_round_trips_at_a_loss() {
        let (bank, _, mint) = setup_sol_pool();
        let sol = native_sol_mint();
        let trader = Keypair::from_label("trader");
        bank.airdrop(trader.pubkey(), Lamports::from_sol(10.0));
        let buy = TransactionBuilder::new(trader)
            .nonce(1)
            .instruction(swap_ix(sol, mint, 1_000_000_000, 0))
            .build();
        bank.execute_transaction(&buy).unwrap();
        let held = bank.token_balance(&trader.pubkey(), &mint);
        let sell = TransactionBuilder::new(trader)
            .nonce(2)
            .instruction(swap_ix(mint, sol, held, 0))
            .build();
        let meta = bank.execute_transaction(&sell).unwrap();
        assert!(meta.success, "{:?}", meta.error);
        assert!(bank.lamports(&trader.pubkey()) < Lamports::from_sol(10.0));
    }

    #[test]
    fn duplicate_pool_rejected() {
        let (bank, lp, mint) = setup_sol_pool();
        let tx = TransactionBuilder::new(lp)
            .nonce(999)
            .instruction(create_pool_ix(native_sol_mint(), 1_000, mint, 1_000, 30))
            .build();
        let meta = bank.execute_transaction(&tx).unwrap();
        assert!(!meta.success);
        assert!(meta.error.as_deref().unwrap().contains("already exists"));
    }

    #[test]
    fn swap_against_missing_pool_fails() {
        let bank = Bank::new(Keypair::from_label("validator").pubkey());
        bank.register_program(Arc::new(AmmProgram));
        let trader = Keypair::from_label("trader");
        bank.airdrop(trader.pubkey(), Lamports::from_sol(1.0));
        let tx = TransactionBuilder::new(trader)
            .instruction(swap_ix(
                native_sol_mint(),
                Pubkey::derive("mint:NONE"),
                100,
                0,
            ))
            .build();
        let meta = bank.execute_transaction(&tx).unwrap();
        assert!(!meta.success);
        assert!(meta.error.as_deref().unwrap().contains("no pool"));
    }
}
