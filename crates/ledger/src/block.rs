//! Blocks: a slot's worth of committed transactions.

use serde::{Deserialize, Serialize};

use sandwich_types::{Hash, Pubkey, Slot};

use crate::meta::TransactionMeta;
use crate::transaction::TransactionId;

/// A produced block. The simulator keeps blocks lightweight: full
/// transactions live with their metas in the history store, and the block
/// records ordering plus the identity of the validator that led the slot.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Block {
    /// The slot this block occupies.
    pub slot: Slot,
    /// The validator that led the slot and produced this block.
    pub leader: Pubkey,
    /// Hash of the previous block.
    pub parent_hash: Hash,
    /// This block's hash.
    pub blockhash: Hash,
    /// Transaction ids in execution order.
    pub transactions: Vec<TransactionId>,
}

impl Block {
    /// Derive a block for `slot` produced by `leader` containing `metas`,
    /// chained to `parent`.
    pub fn derive(
        slot: Slot,
        leader: Pubkey,
        parent_hash: Hash,
        metas: &[TransactionMeta],
    ) -> Self {
        let mut parts: Vec<&[u8]> = vec![b"block", parent_hash.as_bytes()];
        let slot_bytes = slot.0.to_le_bytes();
        parts.push(&slot_bytes);
        parts.push(leader.as_bytes());
        let ids: Vec<TransactionId> = metas.iter().map(|m| m.tx_id).collect();
        for id in &ids {
            parts.push(&id.0);
        }
        Block {
            slot,
            leader,
            parent_hash,
            blockhash: Hash::digest_parts(&parts),
            transactions: ids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leader() -> Pubkey {
        sandwich_types::Keypair::from_label("block-leader").pubkey()
    }

    #[test]
    fn blockhash_depends_on_content() {
        let parent = Hash::digest(b"genesis");
        let a = Block::derive(Slot(1), leader(), parent, &[]);
        let b = Block::derive(Slot(2), leader(), parent, &[]);
        assert_ne!(a.blockhash, b.blockhash);
        let c = Block::derive(Slot(1), leader(), a.blockhash, &[]);
        assert_ne!(a.blockhash, c.blockhash);
    }

    #[test]
    fn blockhash_depends_on_leader() {
        let parent = Hash::digest(b"genesis");
        let other = sandwich_types::Keypair::from_label("other-leader").pubkey();
        let a = Block::derive(Slot(1), leader(), parent, &[]);
        let b = Block::derive(Slot(1), other, parent, &[]);
        assert_ne!(a.blockhash, b.blockhash);
        assert_eq!(a.leader, leader());
        assert_eq!(b.leader, other);
    }

    #[test]
    fn empty_block_has_no_transactions() {
        let b = Block::derive(Slot(0), leader(), Hash::default(), &[]);
        assert!(b.transactions.is_empty());
    }
}
