//! The bank: account state plus transaction execution.
//!
//! Execution semantics follow Solana where the paper depends on them:
//!
//! * fees (base + priority) are charged even when instructions fail;
//! * a failed instruction rolls the transaction back to fee-only;
//! * batches can execute **atomically** — all transactions succeed or none
//!   land — which is exactly the Jito bundle guarantee sandwich attackers
//!   rely on (paper §3.3).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use sandwich_types::{Hash, Lamports, Pubkey};

use crate::account::{token_account_address, Account, AccountData};
use crate::error::TxError;
use crate::instruction::{Instruction, SystemInstruction, TokenInstruction};
use crate::meta::{DeltaRecorder, TransactionMeta};
use crate::transaction::Transaction;

/// A third-party on-chain program (e.g. the DEX).
pub trait Program: Send + Sync {
    /// The program's address.
    fn id(&self) -> Pubkey;
    /// Execute one instruction payload.
    fn execute(&self, data: &[u8], ctx: &mut TxContext<'_>) -> Result<(), TxError>;
}

/// Mutable view of ledger state during one transaction, writing into a
/// bundle-scoped overlay so batches can commit or roll back atomically.
pub struct TxContext<'a> {
    base: &'a HashMap<Pubkey, Account>,
    overlay: &'a mut HashMap<Pubkey, Account>,
    recorder: &'a mut DeltaRecorder,
    signer: Pubkey,
}

impl<'a> TxContext<'a> {
    /// The transaction's fee-paying signer.
    pub fn signer(&self) -> Pubkey {
        self.signer
    }

    /// Current view of an account (overlay wins over committed state).
    pub fn account(&self, key: &Pubkey) -> Option<Account> {
        self.overlay
            .get(key)
            .or_else(|| self.base.get(key))
            .cloned()
    }

    fn account_or_wallet(&self, key: &Pubkey) -> Account {
        self.account(key).unwrap_or_else(Account::empty_wallet)
    }

    /// Write an account into the overlay.
    pub fn set_account(&mut self, key: Pubkey, account: Account) {
        self.overlay.insert(key, account);
    }

    /// Lamport balance of an account (zero if it does not exist).
    pub fn lamports(&self, key: &Pubkey) -> Lamports {
        self.account(key)
            .map(|a| a.lamports)
            .unwrap_or(Lamports::ZERO)
    }

    /// Move lamports between accounts, creating the recipient if needed.
    ///
    /// Debit is committed before the credit is read so self-transfers are
    /// exact no-ops rather than lamport mints.
    pub fn transfer_lamports(
        &mut self,
        from: Pubkey,
        to: Pubkey,
        amount: Lamports,
    ) -> Result<(), TxError> {
        let mut src = self.account_or_wallet(&from);
        src.lamports = src
            .lamports
            .checked_sub(amount)
            .ok_or(TxError::InsufficientLamports { account: from })?;
        self.set_account(from, src);
        let mut dst = self.account_or_wallet(&to);
        dst.lamports = dst.lamports.checked_add(amount).ok_or(TxError::Overflow)?;
        self.set_account(to, dst);
        self.recorder.debit_sol(from, amount);
        self.recorder.credit_sol(to, amount);
        Ok(())
    }

    /// Token balance of `owner` for `mint`.
    pub fn token_balance(&self, owner: &Pubkey, mint: &Pubkey) -> u64 {
        let addr = token_account_address(owner, mint);
        match self.account(&addr).map(|a| a.data) {
            Some(AccountData::TokenAccount { amount, .. }) => amount,
            _ => 0,
        }
    }

    /// Mint metadata, if the mint exists.
    pub fn mint(&self, mint: &Pubkey) -> Option<(Pubkey, u8, u64, String)> {
        match self.account(mint).map(|a| a.data) {
            Some(AccountData::Mint {
                authority,
                decimals,
                supply,
                symbol,
            }) => Some((authority, decimals, supply, symbol)),
            _ => None,
        }
    }

    fn require_mint(&self, mint: &Pubkey) -> Result<(), TxError> {
        if self.mint(mint).is_some() {
            Ok(())
        } else {
            Err(TxError::UnknownMint(*mint))
        }
    }

    /// Move tokens between owners, creating the recipient's token account.
    pub fn transfer_tokens(
        &mut self,
        mint: Pubkey,
        from: Pubkey,
        to: Pubkey,
        amount: u64,
    ) -> Result<(), TxError> {
        self.require_mint(&mint)?;
        self.debit_tokens(mint, from, amount)?;
        self.credit_tokens(mint, to, amount)?;
        Ok(())
    }

    /// Remove tokens from an owner's balance.
    pub fn debit_tokens(
        &mut self,
        mint: Pubkey,
        owner: Pubkey,
        amount: u64,
    ) -> Result<(), TxError> {
        let addr = token_account_address(&owner, &mint);
        let mut acct = self
            .account(&addr)
            .ok_or(TxError::InsufficientTokens { owner, mint })?;
        match &mut acct.data {
            AccountData::TokenAccount { amount: bal, .. } => {
                *bal = bal
                    .checked_sub(amount)
                    .ok_or(TxError::InsufficientTokens { owner, mint })?;
            }
            _ => return Err(TxError::BadAccountOwner { account: addr }),
        }
        self.set_account(addr, acct);
        self.recorder.debit_token(owner, mint, amount);
        Ok(())
    }

    /// Add tokens to an owner's balance, creating the account if needed.
    pub fn credit_tokens(
        &mut self,
        mint: Pubkey,
        owner: Pubkey,
        amount: u64,
    ) -> Result<(), TxError> {
        let addr = token_account_address(&owner, &mint);
        let mut acct = self.account(&addr).unwrap_or(Account {
            lamports: Lamports::ZERO,
            data: AccountData::TokenAccount {
                owner,
                mint,
                amount: 0,
            },
        });
        match &mut acct.data {
            AccountData::TokenAccount { amount: bal, .. } => {
                *bal = bal.checked_add(amount).ok_or(TxError::Overflow)?;
            }
            _ => return Err(TxError::BadAccountOwner { account: addr }),
        }
        self.set_account(addr, acct);
        self.recorder.credit_token(owner, mint, amount);
        Ok(())
    }

    /// Read program-owned opaque state.
    pub fn program_state(&self, key: &Pubkey, program: &Pubkey) -> Result<Vec<u8>, TxError> {
        match self.account(key).map(|a| a.data) {
            Some(AccountData::ProgramState { program: p, bytes }) if p == *program => Ok(bytes),
            Some(_) => Err(TxError::BadAccountOwner { account: *key }),
            None => Err(TxError::BadAccountOwner { account: *key }),
        }
    }

    /// Write program-owned opaque state.
    pub fn set_program_state(&mut self, key: Pubkey, program: Pubkey, bytes: Vec<u8>) {
        let lamports = self.lamports(&key);
        self.set_account(
            key,
            Account {
                lamports,
                data: AccountData::ProgramState { program, bytes },
            },
        );
    }
}

/// A failed atomic batch: which transaction failed and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchFailure {
    /// Index of the failing transaction within the batch.
    pub index: usize,
    /// The failure.
    pub error: TxError,
}

impl std::fmt::Display for BatchFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transaction {} failed: {}", self.index, self.error)
    }
}

impl std::error::Error for BatchFailure {}

/// Cached metric handles for committed execution paths.
struct BankMetrics {
    tx_executed: Arc<sandwich_obs::Counter>,
    tx_failed: Arc<sandwich_obs::Counter>,
    tx_rejected: Arc<sandwich_obs::Counter>,
    batches_aborted: Arc<sandwich_obs::Counter>,
    fees_lamports: Arc<sandwich_obs::Counter>,
}

impl BankMetrics {
    fn new(registry: &sandwich_obs::Registry) -> Self {
        BankMetrics {
            tx_executed: registry.counter("bank.tx_executed"),
            tx_failed: registry.counter("bank.tx_failed"),
            tx_rejected: registry.counter("bank.tx_rejected"),
            batches_aborted: registry.counter("bank.batches_aborted"),
            fees_lamports: registry.counter("bank.fees_lamports"),
        }
    }

    /// Account for a batch of landed metas.
    fn record_committed(&self, metas: &[TransactionMeta]) {
        self.tx_executed.add(metas.len() as u64);
        for meta in metas {
            if !meta.success {
                self.tx_failed.inc();
            }
            self.fees_lamports.add(meta.fee.0);
        }
    }
}

/// Account state plus execution engine.
pub struct Bank {
    accounts: RwLock<HashMap<Pubkey, Account>>,
    programs: RwLock<HashMap<Pubkey, Arc<dyn Program>>>,
    latest_blockhash: RwLock<Hash>,
    validator: Pubkey,
    verify_signatures: bool,
    metrics: RwLock<Option<BankMetrics>>,
}

impl Bank {
    /// A bank whose fees accrue to `validator`.
    pub fn new(validator: Pubkey) -> Self {
        Bank {
            accounts: RwLock::new(HashMap::new()),
            programs: RwLock::new(HashMap::new()),
            latest_blockhash: RwLock::new(Hash::digest(b"genesis")),
            validator,
            verify_signatures: true,
            metrics: RwLock::new(None),
        }
    }

    /// Record committed execution (transactions landed/failed, fees
    /// collected, batches aborted) into `registry` under the `bank.` prefix.
    /// Simulation-only paths ([`Bank::simulate_batch_atomic`]) stay silent.
    pub fn attach_metrics(&self, registry: &sandwich_obs::Registry) {
        *self.metrics.write() = Some(BankMetrics::new(registry));
    }

    /// Disable signature verification (large simulations; forging is not
    /// part of the threat model being measured).
    pub fn with_signature_verification(mut self, on: bool) -> Self {
        self.verify_signatures = on;
        self
    }

    /// The fee-collecting validator address.
    pub fn validator(&self) -> Pubkey {
        self.validator
    }

    /// Register a third-party program.
    pub fn register_program(&self, program: Arc<dyn Program>) {
        self.programs.write().insert(program.id(), program);
    }

    /// Current blockhash (updated by block production).
    pub fn latest_blockhash(&self) -> Hash {
        *self.latest_blockhash.read()
    }

    /// Advance the blockhash.
    pub fn set_latest_blockhash(&self, hash: Hash) {
        *self.latest_blockhash.write() = hash;
    }

    /// Create or grow an account out of thin air (test/simulation setup).
    pub fn airdrop(&self, key: Pubkey, lamports: Lamports) {
        let mut accounts = self.accounts.write();
        let acct = accounts.entry(key).or_insert_with(Account::empty_wallet);
        acct.lamports += lamports;
    }

    /// Install an account verbatim (test/simulation setup).
    pub fn set_account(&self, key: Pubkey, account: Account) {
        self.accounts.write().insert(key, account);
    }

    /// Read an account.
    pub fn account(&self, key: &Pubkey) -> Option<Account> {
        self.accounts.read().get(key).cloned()
    }

    /// Lamport balance (zero for missing accounts).
    pub fn lamports(&self, key: &Pubkey) -> Lamports {
        self.account(key)
            .map(|a| a.lamports)
            .unwrap_or(Lamports::ZERO)
    }

    /// Token balance of `owner` for `mint`.
    pub fn token_balance(&self, owner: &Pubkey, mint: &Pubkey) -> u64 {
        let addr = token_account_address(owner, mint);
        match self.account(&addr).map(|a| a.data) {
            Some(AccountData::TokenAccount { amount, .. }) => amount,
            _ => 0,
        }
    }

    /// Sum of all lamports on the ledger (conservation invariant in tests).
    pub fn total_lamports(&self) -> u128 {
        self.accounts
            .read()
            .values()
            .map(|a| a.lamports.0 as u128)
            .sum()
    }

    /// Execute a single transaction and commit it.
    ///
    /// `Ok(meta)` means the transaction landed (possibly with
    /// `meta.success == false` and only the fee charged); `Err` means it was
    /// rejected outright and left no trace.
    pub fn execute_transaction(&self, tx: &Transaction) -> Result<TransactionMeta, TxError> {
        let mut overlay = HashMap::new();
        let result = {
            let base = self.accounts.read();
            self.execute_with_overlay(tx, &base, &mut overlay)
        };
        let meta = match result {
            Ok(meta) => meta,
            Err(e) => {
                if let Some(m) = self.metrics.read().as_ref() {
                    m.tx_rejected.inc();
                }
                return Err(e);
            }
        };
        self.commit(overlay);
        if let Some(m) = self.metrics.read().as_ref() {
            m.record_committed(std::slice::from_ref(&meta));
        }
        Ok(meta)
    }

    /// Execute transactions atomically: either every transaction succeeds
    /// and the batch commits, or nothing lands at all.
    pub fn execute_batch_atomic(
        &self,
        txs: &[Transaction],
    ) -> Result<Vec<TransactionMeta>, BatchFailure> {
        let result = {
            let base = self.accounts.read();
            self.run_batch(txs, &base)
        };
        let (metas, overlay) = match result {
            Ok(ok) => ok,
            Err(failure) => {
                if let Some(m) = self.metrics.read().as_ref() {
                    m.batches_aborted.inc();
                }
                return Err(failure);
            }
        };
        self.commit(overlay);
        if let Some(m) = self.metrics.read().as_ref() {
            m.record_committed(&metas);
        }
        Ok(metas)
    }

    /// Execute transactions atomically against current state without
    /// committing — what a searcher's bundle simulation does.
    pub fn simulate_batch_atomic(
        &self,
        txs: &[Transaction],
    ) -> Result<Vec<TransactionMeta>, BatchFailure> {
        let base = self.accounts.read();
        self.run_batch(txs, &base).map(|(metas, _)| metas)
    }

    fn run_batch(
        &self,
        txs: &[Transaction],
        base: &HashMap<Pubkey, Account>,
    ) -> Result<(Vec<TransactionMeta>, HashMap<Pubkey, Account>), BatchFailure> {
        let mut overlay = HashMap::new();
        let mut metas = Vec::with_capacity(txs.len());
        for (index, tx) in txs.iter().enumerate() {
            match self.execute_with_overlay(tx, base, &mut overlay) {
                Ok(meta) if meta.success => metas.push(meta),
                Ok(meta) => {
                    let error = TxError::Program {
                        program: tx.signer(),
                        message: meta.error.unwrap_or_else(|| "failed".into()),
                    };
                    return Err(BatchFailure { index, error });
                }
                Err(error) => return Err(BatchFailure { index, error }),
            }
        }
        Ok((metas, overlay))
    }

    fn commit(&self, overlay: HashMap<Pubkey, Account>) {
        let mut accounts = self.accounts.write();
        for (k, v) in overlay {
            accounts.insert(k, v);
        }
    }

    /// Core execution against a base snapshot and a mutable overlay.
    fn execute_with_overlay(
        &self,
        tx: &Transaction,
        base: &HashMap<Pubkey, Account>,
        overlay: &mut HashMap<Pubkey, Account>,
    ) -> Result<TransactionMeta, TxError> {
        if self.verify_signatures && !tx.verify() {
            return Err(TxError::InvalidSignature);
        }
        let signer = tx.signer();
        let fee = tx.total_fee();

        let mut recorder = DeltaRecorder::default();
        {
            let mut ctx = TxContext {
                base,
                overlay,
                recorder: &mut recorder,
                signer,
            };
            if ctx.lamports(&signer) < fee {
                return Err(TxError::InsufficientFeeFunds { payer: signer });
            }
            ctx.transfer_lamports(signer, self.validator, fee)
                .map_err(|_| TxError::InsufficientFeeFunds { payer: signer })?;
        }

        // Snapshot after the fee so a failed instruction rolls back to
        // fee-only, as on Solana.
        let post_fee_snapshot = overlay.clone();

        let mut success = true;
        let mut error = None;
        {
            let mut ctx = TxContext {
                base,
                overlay,
                recorder: &mut recorder,
                signer,
            };
            for ix in &tx.message.instructions {
                if let Err(e) = execute_instruction(&self.programs, ix, &mut ctx) {
                    success = false;
                    error = Some(e.to_string());
                    break;
                }
            }
        }

        if !success {
            *overlay = post_fee_snapshot;
            recorder.clear();
            recorder.debit_sol(signer, fee);
            recorder.credit_sol(self.validator, fee);
        }

        let (sol_deltas, token_deltas) = recorder.finish();
        Ok(TransactionMeta {
            tx_id: tx.id(),
            signer,
            fee,
            priority_fee: tx.message.priority_fee,
            success,
            error,
            sol_deltas,
            token_deltas,
        })
    }
}

fn execute_instruction(
    programs: &RwLock<HashMap<Pubkey, Arc<dyn Program>>>,
    ix: &Instruction,
    ctx: &mut TxContext<'_>,
) -> Result<(), TxError> {
    match ix {
        Instruction::System(SystemInstruction::Transfer { to, lamports }) => {
            ctx.transfer_lamports(ctx.signer(), *to, *lamports)
        }
        Instruction::Token(tok) => execute_token(tok, ctx),
        Instruction::Program { program_id, data } => {
            let program = programs
                .read()
                .get(program_id)
                .cloned()
                .ok_or(TxError::UnknownProgram(*program_id))?;
            program.execute(data, ctx)
        }
    }
}

fn execute_token(ix: &TokenInstruction, ctx: &mut TxContext<'_>) -> Result<(), TxError> {
    match ix {
        TokenInstruction::CreateMint {
            mint,
            decimals,
            symbol,
        } => {
            if ctx.account(mint).is_some() {
                return Err(TxError::MintExists(*mint));
            }
            ctx.set_account(
                *mint,
                Account {
                    lamports: Lamports::ZERO,
                    data: AccountData::Mint {
                        authority: ctx.signer(),
                        decimals: *decimals,
                        supply: 0,
                        symbol: symbol.clone(),
                    },
                },
            );
            Ok(())
        }
        TokenInstruction::MintTo { mint, to, amount } => {
            let mut acct = ctx.account(mint).ok_or(TxError::UnknownMint(*mint))?;
            match &mut acct.data {
                AccountData::Mint {
                    authority, supply, ..
                } => {
                    if *authority != ctx.signer() {
                        return Err(TxError::NotMintAuthority { mint: *mint });
                    }
                    *supply = supply.checked_add(*amount).ok_or(TxError::Overflow)?;
                }
                _ => return Err(TxError::UnknownMint(*mint)),
            }
            ctx.set_account(*mint, acct);
            ctx.credit_tokens(*mint, *to, *amount)
        }
        TokenInstruction::Transfer { mint, to, amount } => {
            ctx.transfer_tokens(*mint, ctx.signer(), *to, *amount)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TransactionBuilder;
    use sandwich_types::{Keypair, LamportDelta, BASE_FEE};

    fn setup() -> (Bank, Keypair, Keypair) {
        let validator = Keypair::from_label("validator").pubkey();
        let bank = Bank::new(validator);
        let alice = Keypair::from_label("alice");
        let bob = Keypair::from_label("bob");
        bank.airdrop(alice.pubkey(), Lamports::from_sol(10.0));
        bank.airdrop(bob.pubkey(), Lamports::from_sol(10.0));
        (bank, alice, bob)
    }

    #[test]
    fn metrics_count_committed_and_rejected_transactions() {
        let (bank, alice, bob) = setup();
        let registry = sandwich_obs::Registry::new();
        bank.attach_metrics(&registry);

        let ok = TransactionBuilder::new(alice)
            .transfer(bob.pubkey(), Lamports(1_000))
            .build();
        let meta = bank.execute_transaction(&ok).unwrap();

        // Unfunded fee payer → rejected outright, no trace on the ledger.
        let broke = Keypair::from_label("broke-metrics");
        let rejected = TransactionBuilder::new(broke)
            .transfer(bob.pubkey(), Lamports(1))
            .build();
        assert!(bank.execute_transaction(&rejected).is_err());

        // Atomic batch with a failing transfer → aborted, nothing counted
        // as executed.
        let too_big = TransactionBuilder::new(bob)
            .nonce(9)
            .transfer(alice.pubkey(), Lamports::from_sol(500.0))
            .build();
        assert!(bank.execute_batch_atomic(&[too_big]).is_err());

        let snap = registry.snapshot();
        assert_eq!(snap.counter("bank.tx_executed"), Some(1));
        assert_eq!(snap.counter("bank.tx_failed"), Some(0));
        assert_eq!(snap.counter("bank.tx_rejected"), Some(1));
        assert_eq!(snap.counter("bank.batches_aborted"), Some(1));
        assert_eq!(snap.counter("bank.fees_lamports"), Some(meta.fee.0));
    }

    #[test]
    fn transfer_moves_lamports_and_charges_fee() {
        let (bank, alice, bob) = setup();
        let tx = TransactionBuilder::new(alice)
            .transfer(bob.pubkey(), Lamports(1_000_000))
            .build();
        let meta = bank.execute_transaction(&tx).unwrap();
        assert!(meta.success);
        assert_eq!(
            bank.lamports(&alice.pubkey()),
            Lamports::from_sol(10.0) - Lamports(1_000_000) - BASE_FEE
        );
        assert_eq!(
            bank.lamports(&bob.pubkey()),
            Lamports::from_sol(10.0) + Lamports(1_000_000)
        );
        assert_eq!(bank.lamports(&bank.validator()), BASE_FEE);
        assert_eq!(
            meta.sol_delta_of(&alice.pubkey()),
            LamportDelta(-(1_000_000 + BASE_FEE.0 as i64))
        );
    }

    #[test]
    fn failed_instruction_rolls_back_but_charges_fee() {
        let (bank, alice, bob) = setup();
        let before = bank.lamports(&alice.pubkey());
        let tx = TransactionBuilder::new(alice)
            .transfer(bob.pubkey(), Lamports::from_sol(100.0)) // more than held
            .build();
        let meta = bank.execute_transaction(&tx).unwrap();
        assert!(!meta.success);
        assert_eq!(bank.lamports(&alice.pubkey()), before - BASE_FEE);
        assert_eq!(bank.lamports(&bob.pubkey()), Lamports::from_sol(10.0));
        // Meta shows only the fee.
        assert_eq!(
            meta.sol_delta_of(&alice.pubkey()),
            LamportDelta(-(BASE_FEE.0 as i64))
        );
    }

    #[test]
    fn unfunded_fee_rejects_transaction() {
        let validator = Keypair::from_label("validator").pubkey();
        let bank = Bank::new(validator);
        let pauper = Keypair::from_label("pauper");
        let tx = TransactionBuilder::new(pauper).build();
        assert!(matches!(
            bank.execute_transaction(&tx),
            Err(TxError::InsufficientFeeFunds { .. })
        ));
    }

    #[test]
    fn forged_signature_rejected() {
        let (bank, alice, bob) = setup();
        let mut tx = TransactionBuilder::new(alice)
            .transfer(bob.pubkey(), Lamports(1))
            .build();
        tx.message.nonce = 99; // invalidates the signature
        assert_eq!(
            bank.execute_transaction(&tx),
            Err(TxError::InvalidSignature)
        );
    }

    #[test]
    fn token_lifecycle() {
        let (bank, alice, bob) = setup();
        let mint = Pubkey::derive("mint:TEST");
        let tx = TransactionBuilder::new(alice)
            .instruction(Instruction::Token(TokenInstruction::CreateMint {
                mint,
                decimals: 6,
                symbol: "TEST".into(),
            }))
            .instruction(Instruction::Token(TokenInstruction::MintTo {
                mint,
                to: alice.pubkey(),
                amount: 1_000,
            }))
            .token_transfer(mint, bob.pubkey(), 400)
            .build();
        let meta = bank.execute_transaction(&tx).unwrap();
        assert!(meta.success, "{:?}", meta.error);
        assert_eq!(bank.token_balance(&alice.pubkey(), &mint), 600);
        assert_eq!(bank.token_balance(&bob.pubkey(), &mint), 400);
        assert_eq!(meta.token_delta_of(&alice.pubkey(), &mint), 600);
        assert_eq!(meta.token_delta_of(&bob.pubkey(), &mint), 400);
        assert_eq!(meta.traded_mints(), vec![mint]);
    }

    #[test]
    fn only_authority_can_mint() {
        let (bank, alice, bob) = setup();
        let mint = Pubkey::derive("mint:AUTH");
        let create = TransactionBuilder::new(alice)
            .instruction(Instruction::Token(TokenInstruction::CreateMint {
                mint,
                decimals: 6,
                symbol: "AUTH".into(),
            }))
            .build();
        assert!(bank.execute_transaction(&create).unwrap().success);

        let steal = TransactionBuilder::new(bob)
            .instruction(Instruction::Token(TokenInstruction::MintTo {
                mint,
                to: bob.pubkey(),
                amount: 100,
            }))
            .build();
        let meta = bank.execute_transaction(&steal).unwrap();
        assert!(!meta.success);
        assert_eq!(bank.token_balance(&bob.pubkey(), &mint), 0);
    }

    #[test]
    fn atomic_batch_commits_all() {
        let (bank, alice, bob) = setup();
        let carol = Keypair::from_label("carol").pubkey();
        let txs = vec![
            TransactionBuilder::new(alice)
                .nonce(1)
                .transfer(carol, Lamports(10))
                .build(),
            TransactionBuilder::new(bob)
                .nonce(1)
                .transfer(carol, Lamports(20))
                .build(),
        ];
        let metas = bank.execute_batch_atomic(&txs).unwrap();
        assert_eq!(metas.len(), 2);
        assert_eq!(bank.lamports(&carol), Lamports(30));
    }

    #[test]
    fn atomic_batch_rolls_back_everything_on_failure() {
        let (bank, alice, bob) = setup();
        let carol = Keypair::from_label("carol").pubkey();
        let total_before = bank.total_lamports();
        let txs = vec![
            TransactionBuilder::new(alice)
                .transfer(carol, Lamports(10))
                .build(),
            // Bob tries to send more than he holds — fails.
            TransactionBuilder::new(bob)
                .transfer(carol, Lamports::from_sol(100.0))
                .build(),
        ];
        let err = bank.execute_batch_atomic(&txs).unwrap_err();
        assert_eq!(err.index, 1);
        // Nothing landed: not even the first transfer or any fee.
        assert_eq!(bank.lamports(&carol), Lamports::ZERO);
        assert_eq!(bank.lamports(&alice.pubkey()), Lamports::from_sol(10.0));
        assert_eq!(bank.total_lamports(), total_before);
    }

    #[test]
    fn batch_sees_earlier_transactions() {
        let (bank, alice, _) = setup();
        let relay = Keypair::from_label("relay");
        let sink = Keypair::from_label("sink").pubkey();
        // relay has nothing until alice funds it inside the same batch.
        let txs = vec![
            TransactionBuilder::new(alice)
                .transfer(relay.pubkey(), Lamports::from_sol(1.0))
                .build(),
            TransactionBuilder::new(relay)
                .transfer(sink, Lamports(500_000_000))
                .build(),
        ];
        bank.execute_batch_atomic(&txs).unwrap();
        assert_eq!(bank.lamports(&sink), Lamports(500_000_000));
    }

    #[test]
    fn simulate_does_not_commit() {
        let (bank, alice, bob) = setup();
        let txs = vec![TransactionBuilder::new(alice)
            .transfer(bob.pubkey(), Lamports(10))
            .build()];
        let metas = bank.simulate_batch_atomic(&txs).unwrap();
        assert!(metas[0].success);
        assert_eq!(bank.lamports(&bob.pubkey()), Lamports::from_sol(10.0));
    }

    #[test]
    fn self_transfer_is_a_no_op() {
        let (bank, alice, _) = setup();
        let before = bank.lamports(&alice.pubkey());
        let total = bank.total_lamports();
        let tx = TransactionBuilder::new(alice)
            .transfer(alice.pubkey(), Lamports(123))
            .build();
        let meta = bank.execute_transaction(&tx).unwrap();
        assert!(meta.success);
        assert_eq!(bank.lamports(&alice.pubkey()), before - BASE_FEE);
        assert_eq!(bank.total_lamports(), total);
    }

    #[test]
    fn lamports_conserved_by_execution() {
        let (bank, alice, bob) = setup();
        let total = bank.total_lamports();
        let tx = TransactionBuilder::new(alice)
            .transfer(bob.pubkey(), Lamports(123_456))
            .build();
        bank.execute_transaction(&tx).unwrap();
        assert_eq!(bank.total_lamports(), total);
    }
}
