//! A simulated Solana ledger: accounts, the system and token programs, a
//! fee-charging bank with atomic batch execution (the substrate for Jito
//! bundles), and blocks.
//!
//! This crate is the "Solana mainnet" substitution documented in DESIGN.md:
//! it produces exactly the observable effects — signers, fees, per-account
//! SOL and token balance deltas — that the paper's sandwich detector reads
//! off the real chain.

#![warn(missing_docs)]

pub mod account;
pub mod bank;
pub mod block;
pub mod error;
pub mod instruction;
pub mod meta;
pub mod transaction;

pub use account::{
    native_sol_mint, system_program_id, token_account_address, token_program_id, Account,
    AccountData,
};
pub use bank::{Bank, BatchFailure, Program, TxContext};
pub use block::Block;
pub use error::TxError;
pub use instruction::{Instruction, SystemInstruction, TokenInstruction};
pub use meta::{SolDelta, TokenDelta, TransactionMeta};
pub use transaction::{Message, Transaction, TransactionBuilder, TransactionId};
