//! Signed transactions.
//!
//! A transaction carries one fee-paying signer (sufficient for every flow in
//! the paper: swaps, transfers, tips), a priority fee, and a list of
//! instructions. Its id is the signature, as on Solana.

use serde::{Deserialize, Serialize};

use sandwich_types::{Hash, Keypair, Lamports, Pubkey, Signature};

use crate::instruction::Instruction;

/// A transaction id (the fee payer's signature on the message).
pub type TransactionId = Signature;

/// The signed content of a transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Fee payer and signer of every instruction.
    pub signer: Pubkey,
    /// Recent blockhash (freshness anchor; also makes ids unique per fork).
    pub recent_blockhash: Hash,
    /// Monotonic per-sender value so repeated identical actions get
    /// distinct ids.
    pub nonce: u64,
    /// Optional priority fee paid to the validator on top of the base fee.
    pub priority_fee: Lamports,
    /// Instructions executed in order, atomically.
    pub instructions: Vec<Instruction>,
}

impl Message {
    /// Canonical bytes that are signed.
    pub fn signing_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("message serialization cannot fail")
    }
}

/// A signed transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// The signed message.
    pub message: Message,
    /// Signature by `message.signer`; doubles as the transaction id.
    pub signature: Signature,
}

impl Transaction {
    /// The transaction id.
    pub fn id(&self) -> TransactionId {
        self.signature
    }

    /// The fee-paying signer.
    pub fn signer(&self) -> Pubkey {
        self.message.signer
    }

    /// Base fee plus priority fee.
    pub fn total_fee(&self) -> Lamports {
        sandwich_types::BASE_FEE + self.message.priority_fee
    }

    /// Verify the signature against the embedded signer address.
    pub fn verify(&self) -> bool {
        self.message
            .signer
            .verify(&self.message.signing_bytes(), &self.signature)
    }
}

/// Fluent builder for signed transactions.
pub struct TransactionBuilder {
    keypair: Keypair,
    recent_blockhash: Hash,
    nonce: u64,
    priority_fee: Lamports,
    instructions: Vec<Instruction>,
}

impl TransactionBuilder {
    /// Start building a transaction signed by `keypair`.
    pub fn new(keypair: Keypair) -> Self {
        TransactionBuilder {
            keypair,
            recent_blockhash: Hash::default(),
            nonce: 0,
            priority_fee: Lamports::ZERO,
            instructions: Vec::new(),
        }
    }

    /// Anchor to a recent blockhash.
    pub fn recent_blockhash(mut self, hash: Hash) -> Self {
        self.recent_blockhash = hash;
        self
    }

    /// Set the uniqueness nonce.
    pub fn nonce(mut self, nonce: u64) -> Self {
        self.nonce = nonce;
        self
    }

    /// Set the priority fee.
    pub fn priority_fee(mut self, fee: Lamports) -> Self {
        self.priority_fee = fee;
        self
    }

    /// Append an instruction.
    pub fn instruction(mut self, ix: Instruction) -> Self {
        self.instructions.push(ix);
        self
    }

    /// Append a SOL transfer.
    pub fn transfer(self, to: Pubkey, lamports: Lamports) -> Self {
        self.instruction(Instruction::transfer(to, lamports))
    }

    /// Append a token transfer.
    pub fn token_transfer(self, mint: Pubkey, to: Pubkey, amount: u64) -> Self {
        self.instruction(Instruction::token_transfer(mint, to, amount))
    }

    /// Sign and finish.
    pub fn build(self) -> Transaction {
        let message = Message {
            signer: self.keypair.pubkey(),
            recent_blockhash: self.recent_blockhash,
            nonce: self.nonce,
            priority_fee: self.priority_fee,
            instructions: self.instructions,
        };
        let signature = self.keypair.sign(&message.signing_bytes());
        Transaction { message, signature }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alice() -> Keypair {
        Keypair::from_label("alice")
    }

    #[test]
    fn built_transactions_verify() {
        let tx = TransactionBuilder::new(alice())
            .transfer(Keypair::from_label("bob").pubkey(), Lamports(100))
            .build();
        assert!(tx.verify());
        assert_eq!(tx.signer(), alice().pubkey());
    }

    #[test]
    fn tampered_message_fails_verification() {
        let mut tx = TransactionBuilder::new(alice())
            .transfer(Keypair::from_label("bob").pubkey(), Lamports(100))
            .build();
        tx.message.priority_fee = Lamports(1);
        assert!(!tx.verify());
    }

    #[test]
    fn nonce_changes_id() {
        let bob = Keypair::from_label("bob").pubkey();
        let a = TransactionBuilder::new(alice())
            .nonce(1)
            .transfer(bob, Lamports(1))
            .build();
        let b = TransactionBuilder::new(alice())
            .nonce(2)
            .transfer(bob, Lamports(1))
            .build();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn total_fee_includes_priority() {
        let tx = TransactionBuilder::new(alice())
            .priority_fee(Lamports(7))
            .build();
        assert_eq!(tx.total_fee(), sandwich_types::BASE_FEE + Lamports(7));
    }

    #[test]
    fn serde_roundtrip() {
        let tx = TransactionBuilder::new(alice())
            .transfer(Keypair::from_label("bob").pubkey(), Lamports(5))
            .build();
        let json = serde_json::to_string(&tx).unwrap();
        let back: Transaction = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tx);
        assert!(back.verify());
    }
}
