//! The instruction set executed by the bank.
//!
//! Built-in system and token instructions are typed; third-party programs
//! (the DEX) receive opaque payloads they decode themselves, mirroring how
//! Solana programs own their instruction encodings.

use serde::{Deserialize, Serialize};

use sandwich_types::{Lamports, Pubkey};

/// System-program instructions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemInstruction {
    /// Move lamports from the transaction signer to `to`.
    Transfer {
        /// Recipient.
        to: Pubkey,
        /// Amount moved.
        lamports: Lamports,
    },
}

/// Token-program instructions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TokenInstruction {
    /// Create a new mint controlled by the signer.
    CreateMint {
        /// Address of the new mint.
        mint: Pubkey,
        /// Decimal places.
        decimals: u8,
        /// Display symbol.
        symbol: String,
    },
    /// Issue `amount` of `mint` to `to` (signer must be mint authority).
    MintTo {
        /// The mint being issued.
        mint: Pubkey,
        /// Receiving owner.
        to: Pubkey,
        /// Raw amount issued.
        amount: u64,
    },
    /// Move `amount` of `mint` from the signer to `to`.
    Transfer {
        /// The token mint.
        mint: Pubkey,
        /// Receiving owner.
        to: Pubkey,
        /// Raw amount moved.
        amount: u64,
    },
}

/// One instruction inside a transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instruction {
    /// Built-in system program.
    System(SystemInstruction),
    /// Built-in token program.
    Token(TokenInstruction),
    /// A registered third-party program with a program-defined payload.
    Program {
        /// The program to dispatch to.
        program_id: Pubkey,
        /// Serialized program-specific instruction.
        data: Vec<u8>,
    },
}

impl Instruction {
    /// Convenience: a SOL transfer from the signer.
    pub fn transfer(to: Pubkey, lamports: Lamports) -> Self {
        Instruction::System(SystemInstruction::Transfer { to, lamports })
    }

    /// Convenience: a token transfer from the signer.
    pub fn token_transfer(mint: Pubkey, to: Pubkey, amount: u64) -> Self {
        Instruction::Token(TokenInstruction::Transfer { mint, to, amount })
    }

    /// True if this is a plain SOL transfer to `to`.
    pub fn is_transfer_to(&self, to: &Pubkey) -> bool {
        matches!(
            self,
            Instruction::System(SystemInstruction::Transfer { to: t, .. }) if t == to
        )
    }
}
