//! Transaction execution errors.

use std::fmt;

use serde::{Deserialize, Serialize};

use sandwich_types::Pubkey;

/// Why a transaction failed to execute.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxError {
    /// The signature does not verify against the fee payer's address.
    InvalidSignature,
    /// The fee payer cannot cover the transaction fee.
    InsufficientFeeFunds {
        /// The fee payer.
        payer: Pubkey,
    },
    /// A lamport transfer exceeded the sender's balance.
    InsufficientLamports {
        /// The debited account.
        account: Pubkey,
    },
    /// A token transfer exceeded the sender's balance.
    InsufficientTokens {
        /// The debited owner.
        owner: Pubkey,
        /// The token mint.
        mint: Pubkey,
    },
    /// The referenced mint does not exist.
    UnknownMint(Pubkey),
    /// A mint with this address already exists.
    MintExists(Pubkey),
    /// Only the mint authority may issue supply.
    NotMintAuthority {
        /// The mint being issued.
        mint: Pubkey,
    },
    /// No program is registered at this address.
    UnknownProgram(Pubkey),
    /// An account was expected to be owned by a program but is not.
    BadAccountOwner {
        /// The account in question.
        account: Pubkey,
    },
    /// The instruction could not be decoded by its program.
    MalformedInstruction,
    /// A program-defined failure (e.g. the DEX's slippage guard).
    Program {
        /// The failing program.
        program: Pubkey,
        /// Program-specific error text.
        message: String,
    },
    /// Arithmetic overflow during execution.
    Overflow,
    /// A transaction with this id was already processed.
    Duplicate,
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::InvalidSignature => write!(f, "invalid signature"),
            TxError::InsufficientFeeFunds { payer } => {
                write!(f, "fee payer {} cannot cover fees", payer.short())
            }
            TxError::InsufficientLamports { account } => {
                write!(f, "insufficient lamports in {}", account.short())
            }
            TxError::InsufficientTokens { owner, mint } => write!(
                f,
                "insufficient tokens of mint {} held by {}",
                mint.short(),
                owner.short()
            ),
            TxError::UnknownMint(m) => write!(f, "unknown mint {}", m.short()),
            TxError::MintExists(m) => write!(f, "mint {} already exists", m.short()),
            TxError::NotMintAuthority { mint } => {
                write!(f, "signer is not the authority of mint {}", mint.short())
            }
            TxError::UnknownProgram(p) => write!(f, "unknown program {}", p.short()),
            TxError::BadAccountOwner { account } => {
                write!(f, "account {} has unexpected owner", account.short())
            }
            TxError::MalformedInstruction => write!(f, "malformed instruction"),
            TxError::Program { program, message } => {
                write!(f, "program {} failed: {message}", program.short())
            }
            TxError::Overflow => write!(f, "arithmetic overflow"),
            TxError::Duplicate => write!(f, "duplicate transaction"),
        }
    }
}

impl std::error::Error for TxError {}
