//! Execution metadata: the per-transaction balance changes.
//!
//! This is what the paper's detector actually consumes — "the net change in
//! currencies as a result of all transactions within the bundle" (§3.2).
//! Every executed transaction yields a [`TransactionMeta`] recording SOL and
//! token deltas per account owner, exactly the data the Jito Explorer's
//! transaction-detail endpoint exposes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use sandwich_types::{LamportDelta, Lamports, Pubkey};

use crate::transaction::TransactionId;

/// SOL balance change of one account.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolDelta {
    /// The account whose balance changed.
    pub account: Pubkey,
    /// Signed change in lamports.
    pub delta: LamportDelta,
}

/// Token balance change of one owner for one mint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenDelta {
    /// The owner whose balance changed.
    pub owner: Pubkey,
    /// The token mint.
    pub mint: Pubkey,
    /// Signed change in raw token units.
    pub delta: i128,
}

/// Metadata describing one executed transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransactionMeta {
    /// The transaction id (its signature).
    pub tx_id: TransactionId,
    /// The fee-paying signer.
    pub signer: Pubkey,
    /// Total fee charged (base + priority).
    pub fee: Lamports,
    /// Priority-fee component of `fee`.
    pub priority_fee: Lamports,
    /// Whether the instructions executed successfully.
    pub success: bool,
    /// Error text if `success` is false (fee still charged).
    pub error: Option<String>,
    /// SOL changes, including the fee debit and transfer credits.
    pub sol_deltas: Vec<SolDelta>,
    /// Token changes keyed by owner wallet.
    pub token_deltas: Vec<TokenDelta>,
}

impl TransactionMeta {
    /// Net SOL change of `account` in this transaction.
    pub fn sol_delta_of(&self, account: &Pubkey) -> LamportDelta {
        self.sol_deltas
            .iter()
            .filter(|d| d.account == *account)
            .map(|d| d.delta)
            .sum()
    }

    /// Net token change of `owner` for `mint` in this transaction.
    pub fn token_delta_of(&self, owner: &Pubkey, mint: &Pubkey) -> i128 {
        self.token_deltas
            .iter()
            .filter(|d| d.owner == *owner && d.mint == *mint)
            .map(|d| d.delta)
            .sum()
    }

    /// The set of mints whose balances changed, in sorted order.
    pub fn traded_mints(&self) -> Vec<Pubkey> {
        let mut mints: Vec<Pubkey> = self
            .token_deltas
            .iter()
            .filter(|d| d.delta != 0)
            .map(|d| d.mint)
            .collect();
        mints.sort();
        mints.dedup();
        mints
    }

    /// True when this transaction only moves SOL from the signer to the
    /// given recipients (plus fees) and touches no tokens. Used to spot
    /// tip-only transactions (paper §3.2 criterion 5).
    ///
    /// One non-recipient credit exactly equal to the fee is permitted: the
    /// validator's fee income, which appears in on-chain balance deltas.
    pub fn is_sol_transfer_only_to(&self, recipients: &[Pubkey]) -> bool {
        if !self.token_deltas.is_empty() {
            return false;
        }
        let mut fee_credits = 0usize;
        for d in &self.sol_deltas {
            if d.delta.is_gain() {
                if recipients.contains(&d.account) {
                    continue;
                }
                if d.delta.magnitude() == self.fee && fee_credits == 0 {
                    fee_credits = 1;
                    continue;
                }
                return false;
            }
            // Debits can only come from the signer.
            if d.delta != LamportDelta::ZERO && d.account != self.signer {
                return false;
            }
        }
        true
    }
}

/// Accumulates deltas while a transaction executes.
#[derive(Default, Debug)]
pub struct DeltaRecorder {
    sol: BTreeMap<Pubkey, i64>,
    tokens: BTreeMap<(Pubkey, Pubkey), i128>,
}

impl DeltaRecorder {
    /// Record a SOL credit.
    pub fn credit_sol(&mut self, account: Pubkey, amount: Lamports) {
        *self.sol.entry(account).or_insert(0) += amount.0 as i64;
    }

    /// Record a SOL debit.
    pub fn debit_sol(&mut self, account: Pubkey, amount: Lamports) {
        *self.sol.entry(account).or_insert(0) -= amount.0 as i64;
    }

    /// Record a token credit.
    pub fn credit_token(&mut self, owner: Pubkey, mint: Pubkey, amount: u64) {
        *self.tokens.entry((owner, mint)).or_insert(0) += amount as i128;
    }

    /// Record a token debit.
    pub fn debit_token(&mut self, owner: Pubkey, mint: Pubkey, amount: u64) {
        *self.tokens.entry((owner, mint)).or_insert(0) -= amount as i128;
    }

    /// Drop everything recorded so far (used when instructions fail and the
    /// transaction rolls back to fee-only).
    pub fn clear(&mut self) {
        self.sol.clear();
        self.tokens.clear();
    }

    /// Finish into delta lists, omitting zero entries.
    pub fn finish(self) -> (Vec<SolDelta>, Vec<TokenDelta>) {
        let sol = self
            .sol
            .into_iter()
            .filter(|(_, d)| *d != 0)
            .map(|(account, d)| SolDelta {
                account,
                delta: LamportDelta(d),
            })
            .collect();
        let tokens = self
            .tokens
            .into_iter()
            .filter(|(_, d)| *d != 0)
            .map(|((owner, mint), delta)| TokenDelta { owner, mint, delta })
            .collect();
        (sol, tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_types::Keypair;

    fn pk(label: &str) -> Pubkey {
        Keypair::from_label(label).pubkey()
    }

    fn meta_with(sol: Vec<SolDelta>, tokens: Vec<TokenDelta>, signer: Pubkey) -> TransactionMeta {
        TransactionMeta {
            tx_id: Default::default(),
            signer,
            fee: Lamports(5_000),
            priority_fee: Lamports::ZERO,
            success: true,
            error: None,
            sol_deltas: sol,
            token_deltas: tokens,
        }
    }

    #[test]
    fn recorder_nets_out_and_drops_zeros() {
        let a = pk("a");
        let b = pk("b");
        let mint = Pubkey::derive("mint");
        let mut rec = DeltaRecorder::default();
        rec.credit_sol(a, Lamports(10));
        rec.debit_sol(a, Lamports(10));
        rec.debit_sol(b, Lamports(3));
        rec.credit_token(a, mint, 7);
        let (sol, tok) = rec.finish();
        assert_eq!(sol.len(), 1);
        assert_eq!(sol[0].account, b);
        assert_eq!(sol[0].delta, LamportDelta(-3));
        assert_eq!(
            tok,
            vec![TokenDelta {
                owner: a,
                mint,
                delta: 7
            }]
        );
    }

    #[test]
    fn traded_mints_sorted_unique() {
        let a = pk("a");
        let m1 = Pubkey::derive("m1");
        let m2 = Pubkey::derive("m2");
        let meta = meta_with(
            vec![],
            vec![
                TokenDelta {
                    owner: a,
                    mint: m2,
                    delta: 1,
                },
                TokenDelta {
                    owner: a,
                    mint: m1,
                    delta: -1,
                },
                TokenDelta {
                    owner: a,
                    mint: m2,
                    delta: 2,
                },
                TokenDelta {
                    owner: a,
                    mint: m1,
                    delta: 0,
                },
            ],
            a,
        );
        let mut expected = vec![m1, m2];
        expected.sort();
        assert_eq!(meta.traded_mints(), expected);
    }

    #[test]
    fn tip_only_detection() {
        let payer = pk("payer");
        let tip = Pubkey::derive("tip-account");
        let meta = meta_with(
            vec![
                SolDelta {
                    account: payer,
                    delta: LamportDelta(-10_000),
                },
                SolDelta {
                    account: tip,
                    delta: LamportDelta(5_000),
                },
            ],
            vec![],
            payer,
        );
        assert!(meta.is_sol_transfer_only_to(&[tip]));

        let other = pk("other");
        let meta2 = meta_with(
            vec![
                SolDelta {
                    account: payer,
                    delta: LamportDelta(-10_000),
                },
                SolDelta {
                    account: other,
                    delta: LamportDelta(6_000),
                },
            ],
            vec![],
            payer,
        );
        assert!(!meta2.is_sol_transfer_only_to(&[tip]));

        // A single fee-sized credit (the validator's fee income) is allowed,
        // but only once.
        let validator = pk("validator");
        let meta3 = meta_with(
            vec![
                SolDelta {
                    account: payer,
                    delta: LamportDelta(-10_000),
                },
                SolDelta {
                    account: validator,
                    delta: LamportDelta(5_000),
                },
                SolDelta {
                    account: tip,
                    delta: LamportDelta(5_000),
                },
            ],
            vec![],
            payer,
        );
        assert!(meta3.is_sol_transfer_only_to(&[tip]));
        let meta4 = meta_with(
            vec![
                SolDelta {
                    account: payer,
                    delta: LamportDelta(-10_000),
                },
                SolDelta {
                    account: validator,
                    delta: LamportDelta(5_000),
                },
                SolDelta {
                    account: other,
                    delta: LamportDelta(5_000),
                },
            ],
            vec![],
            payer,
        );
        assert!(!meta4.is_sol_transfer_only_to(&[tip]));
    }

    #[test]
    fn tip_only_rejects_token_movement() {
        let payer = pk("payer");
        let tip = Pubkey::derive("tip-account");
        let meta = meta_with(
            vec![SolDelta {
                account: tip,
                delta: LamportDelta(1_000),
            }],
            vec![TokenDelta {
                owner: payer,
                mint: Pubkey::derive("m"),
                delta: 1,
            }],
            payer,
        );
        assert!(!meta.is_sol_transfer_only_to(&[tip]));
    }

    #[test]
    fn delta_lookups_sum_duplicates() {
        let a = pk("a");
        let mint = Pubkey::derive("m");
        let meta = meta_with(
            vec![
                SolDelta {
                    account: a,
                    delta: LamportDelta(5),
                },
                SolDelta {
                    account: a,
                    delta: LamportDelta(-2),
                },
            ],
            vec![
                TokenDelta {
                    owner: a,
                    mint,
                    delta: 10,
                },
                TokenDelta {
                    owner: a,
                    mint,
                    delta: -4,
                },
            ],
            a,
        );
        assert_eq!(meta.sol_delta_of(&a), LamportDelta(3));
        assert_eq!(meta.token_delta_of(&a, &mint), 6);
    }
}
