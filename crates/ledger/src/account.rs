//! Accounts and their typed state.
//!
//! Real Solana accounts are raw byte blobs owned by programs. The detector
//! and the explorer API only ever look at *decoded* state (balances, mints,
//! pool reserves), so this simulation stores accounts in decoded form, with
//! an opaque byte variant reserved for third-party programs such as the DEX.

use serde::{Deserialize, Serialize};

use sandwich_types::{Lamports, Pubkey};

/// Address of the built-in system program.
pub fn system_program_id() -> Pubkey {
    Pubkey::derive("system_program")
}

/// Address of the built-in token program.
pub fn token_program_id() -> Pubkey {
    Pubkey::derive("token_program")
}

/// The mint address used to denote native SOL in trade records.
///
/// Solana wraps SOL as the WSOL mint for DEX trades; we use a fixed derived
/// address the same way.
pub fn native_sol_mint() -> Pubkey {
    Pubkey::derive("native_sol_mint")
}

/// Typed account state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccountData {
    /// A plain wallet with no extra state.
    Wallet,
    /// A token mint.
    Mint {
        /// Who may issue new supply.
        authority: Pubkey,
        /// Decimal places of the token.
        decimals: u8,
        /// Total issued supply (raw units).
        supply: u64,
        /// Human-readable symbol for reports.
        symbol: String,
    },
    /// A token balance held by `owner` for `mint`.
    TokenAccount {
        /// The wallet that owns this balance.
        owner: Pubkey,
        /// The token mint.
        mint: Pubkey,
        /// Raw token amount.
        amount: u64,
    },
    /// Program-owned opaque state (e.g. AMM pool reserves).
    ProgramState {
        /// The owning program.
        program: Pubkey,
        /// Program-defined serialized state.
        bytes: Vec<u8>,
    },
}

/// An on-ledger account: lamport balance plus typed state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Account {
    /// SOL balance.
    pub lamports: Lamports,
    /// Typed state.
    pub data: AccountData,
}

impl Account {
    /// A wallet holding `lamports`.
    pub fn wallet(lamports: Lamports) -> Self {
        Account {
            lamports,
            data: AccountData::Wallet,
        }
    }

    /// An empty wallet.
    pub fn empty_wallet() -> Self {
        Account::wallet(Lamports::ZERO)
    }

    /// Token amount if this is a token account.
    pub fn token_amount(&self) -> Option<u64> {
        match &self.data {
            AccountData::TokenAccount { amount, .. } => Some(*amount),
            _ => None,
        }
    }
}

/// Derived address of the token account holding `owner`'s balance of `mint`.
///
/// Mirrors Solana's associated-token-account derivation: one canonical
/// address per (owner, mint) pair.
pub fn token_account_address(owner: &Pubkey, mint: &Pubkey) -> Pubkey {
    Pubkey::derive_with(owner, &format!("ata:{mint}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_types::Keypair;

    #[test]
    fn ata_derivation_is_canonical() {
        let owner = Keypair::from_label("o").pubkey();
        let mint = Pubkey::derive("mint:DOGE");
        assert_eq!(
            token_account_address(&owner, &mint),
            token_account_address(&owner, &mint)
        );
        let other_mint = Pubkey::derive("mint:CAT");
        assert_ne!(
            token_account_address(&owner, &mint),
            token_account_address(&owner, &other_mint)
        );
    }

    #[test]
    fn program_ids_are_distinct() {
        assert_ne!(system_program_id(), token_program_id());
        assert_ne!(system_program_id(), native_sol_mint());
    }

    #[test]
    fn wallet_constructor() {
        let a = Account::wallet(Lamports(10));
        assert_eq!(a.lamports, Lamports(10));
        assert_eq!(a.token_amount(), None);
    }
}
