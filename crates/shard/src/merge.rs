//! Shard partials and the pure merge functions that fold them.
//!
//! Every `/api/*` endpoint decomposes into a per-shard partial (served
//! under `/shard/*`) and an associative, commutative-by-construction
//! merge. The merged values feed `sandwich_query::render`, the same
//! rendering code the single-engine path uses — so byte-identity across
//! shard counts reduces to the merge functions reproducing the
//! single-index aggregates, which the property tests pin.
//!
//! Merge semantics per endpoint:
//!
//! - **summary** — coverage and totals are field-wise sums (`max_slot`
//!   by max); distinct attacker/pool counts are *not* summable, so
//!   shards ship their key lists and the router counts the union.
//! - **days** — rollups are dense from day 0 on every shard; merging is
//!   element-wise addition up to the longest list, labels agree by
//!   construction (same clock).
//! - **attackers / pools** — group by key, sum the aggregates, then
//!   re-sort with the exact leaderboard comparators from
//!   `sandwich_query::index`; ranks fall out of the merged order.
//! - **detail recency / slot ranges** — refs are globally ordered by
//!   `(slot, bundle_id)`; each shard's refs are a subsequence of the
//!   global order, so any global top/bottom-K is contained in the union
//!   of per-shard top/bottom-Ks (the prefix property the router's
//!   re-pagination relies on).

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use sandwich_query::{
    sort_attacker_entries, sort_pool_entries, sort_validator_entries, window_minutes,
    AttackerEntry, DayRollup, IndexCoverage, IndexTotals, LiveMinute, PoolEntry, SandwichRef,
    ValidatorEntry,
};
use sandwich_types::Pubkey;

/// Shard partial for `GET /api/summary`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SummaryPartial {
    /// Store generation this shard answered for.
    pub generation: String,
    /// This shard's exact coverage block (its slice of the manifest).
    pub coverage: IndexCoverage,
    /// This shard's totals.
    pub totals: IndexTotals,
    /// Days this shard's rollups span (dense from day 0).
    pub days: u64,
    /// Distinct attacker addresses on this shard (for union counting).
    pub attacker_keys: Vec<Pubkey>,
    /// Distinct pool mints on this shard (for union counting).
    pub pool_keys: Vec<Pubkey>,
}

/// Shard partial for `GET /api/days`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaysPartial {
    /// Store generation this shard answered for.
    pub generation: String,
    /// Per-day rollups, dense from day 0.
    pub days: Vec<DayRollup>,
}

/// Shard partial for `GET /api/attackers` (and the leaderboard half of
/// attacker detail): every attacker entry, refs cleared (the router never
/// needs them and they dominate the wire size).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackersPartial {
    /// Store generation this shard answered for.
    pub generation: String,
    /// This shard's attacker entries (any order; the router re-sorts).
    pub entries: Vec<AttackerEntry>,
}

/// Shard partial for `GET /api/attacker/{pubkey}`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackerDetailPartial {
    /// Store generation this shard answered for.
    pub generation: String,
    /// Every attacker entry (rank needs the whole leaderboard).
    pub entries: Vec<AttackerEntry>,
    /// The target attacker's newest refs, **oldest first**, capped.
    pub recent: Vec<SandwichRef>,
}

/// Shard partial for `GET /api/pool/{mint}`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolDetailPartial {
    /// Store generation this shard answered for.
    pub generation: String,
    /// Every pool entry (rank needs the whole leaderboard).
    pub pools: Vec<PoolEntry>,
    /// Distinct attackers in the target pool on this shard.
    pub attackers: Vec<Pubkey>,
    /// The target pool's newest refs, **oldest first**, capped.
    pub recent: Vec<SandwichRef>,
}

/// Shard partial for `GET /api/validators` (and the leaderboard half of
/// validator detail): every validator entry, refs cleared but
/// `sandwich_slots` retained — the distinct-block counts merge by slot
/// union, not by sum.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidatorsPartial {
    /// Store generation this shard answered for.
    pub generation: String,
    /// This shard's validator entries (any order; the router re-sorts).
    pub entries: Vec<ValidatorEntry>,
}

/// Shard partial for `GET /api/validator/{pubkey}`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidatorDetailPartial {
    /// Store generation this shard answered for.
    pub generation: String,
    /// Every validator entry (rank needs the whole leaderboard).
    pub entries: Vec<ValidatorEntry>,
    /// The target validator's newest refs, **oldest first**, capped.
    pub recent: Vec<SandwichRef>,
}

/// Shard partial for `GET /api/sandwiches`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangePartial {
    /// Store generation this shard answered for.
    pub generation: String,
    /// In-range sandwiches on this shard (the full count, not `refs.len()`).
    pub total: u64,
    /// The first `min(total, need)` in-range refs, slot order.
    pub refs: Vec<SandwichRef>,
}

/// Shard partial for `GET /api/live`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LivePartial {
    /// Store generation this shard answered for.
    pub generation: String,
    /// This shard's newest indexed slot (its contribution to the tip).
    pub tip_slot: u64,
    /// Sandwiches strictly after the cursor on this shard (full count).
    pub total_after: u64,
    /// The first `min(total_after, need)` post-cursor refs, slot order.
    pub refs: Vec<SandwichRef>,
    /// This shard's rolling per-minute window at its own tip.
    pub minutes: Vec<LiveMinute>,
}

/// Field-wise sum of shard coverage blocks. Because the shard map
/// partitions every manifest entry (serving and quarantined) into exactly
/// one shard, the sum equals the single-engine coverage block.
pub fn merge_coverage(parts: &[IndexCoverage]) -> IndexCoverage {
    let mut merged = IndexCoverage::default();
    for c in parts {
        merged.segments_total += c.segments_total;
        merged.segments_scanned += c.segments_scanned;
        merged.segments_quarantined += c.segments_quarantined;
        merged.segments_failed += c.segments_failed;
        merged.bundles_scanned += c.bundles_scanned;
        merged.bundles_quarantined += c.bundles_quarantined;
        merged.bundles_failed += c.bundles_failed;
    }
    merged
}

/// Field-wise sum of shard totals (`max_slot` by max).
pub fn merge_totals(parts: &[IndexTotals]) -> IndexTotals {
    let mut merged = IndexTotals::default();
    for t in parts {
        merged.segments += t.segments;
        merged.bundles += t.bundles;
        merged.sandwiches += t.sandwiches;
        merged.non_sol_sandwiches += t.non_sol_sandwiches;
        merged.defensive += t.defensive;
        merged.victim_loss_lamports += t.victim_loss_lamports;
        merged.attacker_gain_lamports += t.attacker_gain_lamports;
        merged.tips_lamports += t.tips_lamports;
        merged.max_slot = merged.max_slot.max(t.max_slot);
    }
    merged
}

/// Distinct keys across shard key lists.
pub fn distinct_count(lists: &[Vec<Pubkey>]) -> u64 {
    let set: BTreeSet<&Pubkey> = lists.iter().flatten().collect();
    set.len() as u64
}

/// Element-wise sum of dense day-rollup lists; the merged list is as long
/// as the longest input and every day keeps its label.
pub fn merge_days(parts: &[Vec<DayRollup>]) -> Vec<DayRollup> {
    let len = parts.iter().map(|d| d.len()).max().unwrap_or(0);
    let mut merged: Vec<DayRollup> = (0..len as u64)
        .map(|day| DayRollup {
            day,
            bundles_by_len: vec![0; 5],
            ..DayRollup::default()
        })
        .collect();
    for part in parts {
        for rollup in part {
            let into = &mut merged[rollup.day as usize];
            if into.label.is_empty() {
                into.label = rollup.label.clone();
            }
            into.bundles += rollup.bundles;
            for (a, b) in into.bundles_by_len.iter_mut().zip(&rollup.bundles_by_len) {
                *a += b;
            }
            into.sandwiches += rollup.sandwiches;
            into.defensive += rollup.defensive;
            into.victim_loss_lamports += rollup.victim_loss_lamports;
            into.attacker_gain_lamports += rollup.attacker_gain_lamports;
            into.tips_lamports += rollup.tips_lamports;
        }
    }
    merged
}

/// Group shard attacker entries by address, sum the aggregates, and
/// re-sort into leaderboard order. Refs are dropped (rank and row data
/// never need them on the router).
pub fn merge_attackers(parts: Vec<Vec<AttackerEntry>>) -> Vec<AttackerEntry> {
    let mut by_key: HashMap<Pubkey, AttackerEntry> = HashMap::new();
    for entry in parts.into_iter().flatten() {
        let merged = by_key
            .entry(entry.attacker)
            .or_insert_with(|| AttackerEntry {
                attacker: entry.attacker,
                sandwiches: 0,
                attacker_gain_lamports: 0,
                victim_loss_lamports: 0,
                tips_lamports: 0,
                refs: Vec::new(),
            });
        merged.sandwiches += entry.sandwiches;
        merged.attacker_gain_lamports += entry.attacker_gain_lamports;
        merged.victim_loss_lamports += entry.victim_loss_lamports;
        merged.tips_lamports += entry.tips_lamports;
    }
    let mut merged: Vec<AttackerEntry> = by_key.into_values().collect();
    sort_attacker_entries(&mut merged);
    merged
}

/// Group shard pool entries by mint, sum the aggregates, and re-sort into
/// leaderboard order. The distinct-attacker count is **not** summable and
/// is zeroed here; the router overwrites it for the one pool it renders
/// (from the unioned [`PoolDetailPartial::attackers`] lists). The
/// leaderboard comparator never reads it, so ranks are unaffected.
pub fn merge_pools(parts: Vec<Vec<PoolEntry>>) -> Vec<PoolEntry> {
    let mut by_key: HashMap<Pubkey, PoolEntry> = HashMap::new();
    for entry in parts.into_iter().flatten() {
        let merged = by_key.entry(entry.mint).or_insert_with(|| PoolEntry {
            mint: entry.mint,
            sandwiches: 0,
            victim_loss_lamports: 0,
            attackers: 0,
            refs: Vec::new(),
        });
        merged.sandwiches += entry.sandwiches;
        merged.victim_loss_lamports += entry.victim_loss_lamports;
    }
    let mut merged: Vec<PoolEntry> = by_key.into_values().collect();
    sort_pool_entries(&mut merged);
    merged
}

/// Group shard validator entries by pubkey and merge. The schedule is a
/// pure function of the manifest's spec, so every shard ships the same
/// validator set with the same stakes; only the slot-derived aggregates
/// differ:
///
/// - `blocks_led` merges by **max**: each shard reports the schedule
///   counted through its own tip slot, `blocks_led(v, max_slot)` is
///   monotone non-decreasing in `max_slot`, and the global tip is the
///   max of shard tips — so the element-wise max reproduces the count
///   the single engine computes at the global tip.
/// - `sandwich_slots` merges by **sorted union**: a boundary slot can
///   straddle two shards' segments, so a sum would double-count the
///   block.
/// - Everything else is a field-wise sum.
///
/// The merged list is re-sorted with the exact single-engine comparator.
pub fn merge_validators(parts: Vec<Vec<ValidatorEntry>>) -> Vec<ValidatorEntry> {
    let mut by_key: HashMap<Pubkey, ValidatorEntry> = HashMap::new();
    for entry in parts.into_iter().flatten() {
        match by_key.entry(entry.pubkey) {
            std::collections::hash_map::Entry::Vacant(vacant) => {
                vacant.insert(ValidatorEntry {
                    refs: Vec::new(),
                    ..entry
                });
            }
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                let merged = occupied.get_mut();
                merged.blocks_led = merged.blocks_led.max(entry.blocks_led);
                merged.sandwich_slots.extend(entry.sandwich_slots);
                merged.sandwiches += entry.sandwiches;
                merged.attacker_gain_lamports += entry.attacker_gain_lamports;
                merged.victim_loss_lamports += entry.victim_loss_lamports;
                merged.tips_lamports += entry.tips_lamports;
            }
        }
    }
    let mut merged: Vec<ValidatorEntry> = by_key.into_values().collect();
    for entry in &mut merged {
        entry.sandwich_slots.sort_unstable();
        entry.sandwich_slots.dedup();
    }
    sort_validator_entries(&mut merged);
    merged
}

/// Merge per-shard recency tails (each oldest-first) into the global
/// newest-first list capped at `cap`. Correct because each shard's tail
/// contains every ref that can appear in the global tail (the prefix
/// property), so concatenating, re-sorting, and keeping the last `cap`
/// reproduces the single-engine answer.
pub fn merge_recent(tails: Vec<Vec<SandwichRef>>, cap: usize) -> Vec<SandwichRef> {
    let mut all: Vec<SandwichRef> = tails.into_iter().flatten().collect();
    all.sort_by_key(|a| (a.slot, a.bundle_id.0));
    let start = all.len().saturating_sub(cap);
    let mut recent = all.split_off(start);
    recent.reverse();
    recent
}

/// Merge range partials: the global in-range total and the slot-ordered
/// union of the shipped prefixes (long enough to slice any page the
/// request can ask for, by the same prefix property).
pub fn merge_range(parts: Vec<RangePartial>) -> (usize, Vec<SandwichRef>) {
    let total: usize = parts.iter().map(|p| p.total as usize).sum();
    let mut refs: Vec<SandwichRef> = parts.into_iter().flat_map(|p| p.refs).collect();
    refs.sort_by_key(|a| (a.slot, a.bundle_id.0));
    (total, refs)
}

/// Merge live partials into the global tail page inputs: the tip is the
/// max of shard tips, the post-cursor total the sum, the rows the
/// slot-ordered union of the shipped prefixes (the same prefix property
/// as [`merge_range`] — each shard ships at least as many post-cursor
/// refs as the page can use), and the minute window is the per-minute
/// sum re-windowed at the global tip. Every shard's window is a superset
/// of its contribution to the global window (its tip is ≤ the global
/// tip, so its window starts at or before the global window's start).
pub fn merge_live(parts: Vec<LivePartial>) -> (u64, usize, Vec<SandwichRef>, Vec<LiveMinute>) {
    let tip = parts.iter().map(|p| p.tip_slot).max().unwrap_or(0);
    let total_after: usize = parts.iter().map(|p| p.total_after as usize).sum();
    let mut refs = Vec::new();
    let mut minutes = Vec::new();
    for p in parts {
        refs.extend(p.refs);
        minutes.extend(p.minutes);
    }
    refs.sort_by_key(|a| (a.slot, a.bundle_id.0));
    let minutes = window_minutes(minutes, tip);
    (tip, total_after, refs, minutes)
}
