//! [`RouterService`] — scatter-gather over the shard partial APIs.
//!
//! The router is the only public face of a sharded deployment: it serves
//! the exact `/api/*` surface `queryd` does, parses requests with the
//! same `QueryRequest` code, fans each one out to every shard's
//! `/shard/*` partial endpoint over real sockets, folds the partials with
//! the pure merges in [`crate::merge`], and renders through
//! `sandwich_query::render` — the same response-building code the
//! single-engine path uses. That shared tail is what makes responses
//! byte-identical at every shard count.
//!
//! Consistency: the router pins a generation per request and rejects any
//! partial answered at a different one with a `503` (a reload is in
//! flight; the client retries). Failed fan-outs are never left in the
//! cache. `/readyz` aggregates shard readiness and reports
//! degraded-but-serving while at least one shard is ready.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use serde::de::DeserializeOwned;

use sandwich_net::{HttpClient, Method, Request, Response, Router};
use sandwich_obs::{names, Registry};
use sandwich_query::render::{self, error_response, DETAIL_REF_CAP};
use sandwich_query::{CacheOutcome, CachedResponse, QueryRequest, ResponseCache, SandwichRef};
use sandwich_types::Hash;

use crate::merge::{
    distinct_count, merge_attackers, merge_coverage, merge_days, merge_live, merge_pools,
    merge_range, merge_recent, merge_totals, merge_validators, AttackerDetailPartial,
    AttackersPartial, DaysPartial, LivePartial, PoolDetailPartial, RangePartial, SummaryPartial,
    ValidatorDetailPartial, ValidatorsPartial,
};

/// How often a router long-poll re-fans out looking for rows past the
/// cursor (coarser than the single-engine tick: each probe costs a
/// scatter-gather).
const LONG_POLL_TICK: Duration = Duration::from_millis(25);

/// Tunables for the scatter-gather router.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Response-cache shards (merged responses, keyed by generation).
    pub cache_shards: usize,
    /// Entries per cache shard.
    pub cache_per_shard: usize,
    /// Bound on concurrently-admitted API requests; excess load is shed
    /// with `503` + `Retry-After`. `/healthz`, `/readyz`, and `/metrics`
    /// are always exempt.
    pub max_in_flight: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            cache_shards: 8,
            cache_per_shard: 128,
            max_in_flight: 256,
        }
    }
}

/// A shard partial that carries the generation it answered for.
trait Partial: DeserializeOwned + Send + 'static {
    /// The generation the shard answered at.
    fn generation(&self) -> &str;
}

macro_rules! impl_partial {
    ($($ty:ty),+) => {
        $(impl Partial for $ty {
            fn generation(&self) -> &str {
                &self.generation
            }
        })+
    };
}

impl_partial!(
    SummaryPartial,
    DaysPartial,
    AttackersPartial,
    AttackerDetailPartial,
    PoolDetailPartial,
    RangePartial,
    LivePartial,
    ValidatorsPartial,
    ValidatorDetailPartial
);

struct RouterInner {
    shards: Vec<HttpClient>,
    generation: RwLock<String>,
    cache: ResponseCache,
    registry: Registry,
    in_flight: AtomicUsize,
    max_in_flight: usize,
}

/// Decrements the in-flight gauge when an admitted request finishes.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// The scatter-gather router over N shard services.
#[derive(Clone)]
pub struct RouterService {
    inner: Arc<RouterInner>,
}

impl RouterService {
    /// A router over the shard listeners at `shards`, expecting every
    /// partial to be answered at `generation` until told otherwise.
    pub fn new(
        shards: Vec<SocketAddr>,
        generation: String,
        config: RouterConfig,
        registry: Registry,
    ) -> RouterService {
        RouterService {
            inner: Arc::new(RouterInner {
                shards: shards.into_iter().map(HttpClient::new).collect(),
                generation: RwLock::new(generation),
                cache: ResponseCache::new(config.cache_shards, config.cache_per_shard),
                registry,
                in_flight: AtomicUsize::new(0),
                max_in_flight: config.max_in_flight,
            }),
        }
    }

    /// The generation the router currently expects shards to answer at.
    pub fn generation(&self) -> String {
        self.inner.generation.read().clone()
    }

    /// Move the router to a new generation (after the shards reloaded).
    /// Old-generation cache entries become unreachable by key prefix.
    pub fn set_generation(&self, generation: String) {
        *self.inner.generation.write() = generation;
    }

    /// Number of shards fanned out to.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    fn admit(&self) -> Option<InFlightGuard<'_>> {
        let inner = &self.inner;
        let prev = inner.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= inner.max_in_flight {
            inner.in_flight.fetch_sub(1, Ordering::Release);
            inner.registry.counter(names::QUERY_SHED).inc();
            None
        } else {
            Some(InFlightGuard(&inner.in_flight))
        }
    }

    /// Fan one partial request out to every shard; all must answer 200 at
    /// `expected` generation or the whole fan-out fails with the 503 the
    /// client should retry on. Latency, width, and straggler metrics are
    /// recorded either way.
    async fn fetch<T: Partial>(
        &self,
        path: String,
        expected: &str,
    ) -> Result<Vec<T>, CachedResponse> {
        let inner = &self.inner;
        let n = inner.shards.len();
        inner.registry.counter(names::QUERY_SHARD_FANOUTS).inc();
        inner
            .registry
            .histogram(names::QUERY_SHARD_FANOUT_WIDTH)
            .observe(n as f64);

        let path = Arc::new(path);
        let mut set = tokio::task::JoinSet::new();
        for (shard, client) in inner.shards.iter().enumerate() {
            let client = *client;
            let path = path.clone();
            set.spawn(async move {
                let started = Instant::now();
                let result = client.get(&path).await;
                (shard, started.elapsed(), result)
            });
        }

        let mut latencies: Vec<Option<Duration>> = vec![None; n];
        let mut partials: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut failure: Option<String> = None;
        while let Some(joined) = set.join_next().await {
            let Ok((shard, elapsed, result)) = joined else {
                failure = Some("a fan-out task died".to_string());
                continue;
            };
            latencies[shard] = Some(elapsed);
            inner
                .registry
                .histogram(&format!("{}{shard}", names::QUERY_SHARD_LATENCY_PREFIX))
                .observe(elapsed.as_secs_f64());
            match result {
                Err(error) => failure = Some(format!("shard {shard}: {error}")),
                Ok(response) if response.status != 200 => {
                    failure = Some(format!("shard {shard} answered {}", response.status));
                }
                Ok(response) => match serde_json::from_slice::<T>(&response.body) {
                    Err(error) => {
                        failure =
                            Some(format!("shard {shard} sent an unreadable partial: {error}"));
                    }
                    Ok(partial) if partial.generation() != expected => {
                        failure = Some(format!(
                            "shard {shard} is at generation {}, router expects {expected}",
                            partial.generation()
                        ));
                    }
                    Ok(partial) => partials[shard] = Some(partial),
                },
            }
        }

        // Stragglers: shards that took more than twice the fastest answer.
        let done: Vec<Duration> = latencies.iter().flatten().copied().collect();
        if done.len() > 1 {
            let fastest = done.iter().min().copied().unwrap_or_default();
            let stragglers = done.iter().filter(|l| **l > fastest * 2).count() as u64;
            if stragglers > 0 {
                inner
                    .registry
                    .counter(names::QUERY_SHARD_STRAGGLERS)
                    .add(stragglers);
            }
        }

        if let Some(message) = failure {
            inner
                .registry
                .counter(names::QUERY_SHARD_FANOUT_FAILURES)
                .inc();
            return Err(error_response(
                503,
                format!("scatter-gather failed: {message}"),
            ));
        }
        Ok(partials.into_iter().flatten().collect())
    }

    /// One `/api/live` scatter-gather, returning the rendered page plus
    /// the number of rows it carries (the long-poll loop needs the count
    /// without re-parsing the body). A failed fan-out returns the 503
    /// with a zero count.
    async fn evaluate_live(
        &self,
        generation: &str,
        after_slot: u64,
        after_id: &Hash,
        limit: usize,
    ) -> (CachedResponse, usize) {
        let parts: Vec<LivePartial> = match self
            .fetch(
                format!("/shard/live?after_slot={after_slot}&after_id={after_id}&need={limit}"),
                generation,
            )
            .await
        {
            Ok(parts) => parts,
            Err(failed) => return (failed, 0),
        };
        let started = Instant::now();
        let (tip, total_after, refs, minutes) = merge_live(parts);
        let rows: Vec<SandwichRef> = refs.into_iter().take(limit).collect();
        let count = rows.len();
        let response = render::live_page(
            generation,
            after_slot,
            after_id,
            tip,
            total_after,
            limit,
            rows,
            minutes,
        );
        self.inner
            .registry
            .histogram(names::QUERY_SHARD_MERGE_SECONDS)
            .observe(started.elapsed().as_secs_f64());
        (response, count)
    }

    /// Scatter, gather, merge, render: one `/api/*` answer at `generation`.
    async fn evaluate(&self, generation: &str, query: &QueryRequest) -> CachedResponse {
        let registry = self.inner.registry.clone();
        let merged_at = |started: Instant| {
            registry
                .histogram(names::QUERY_SHARD_MERGE_SECONDS)
                .observe(started.elapsed().as_secs_f64());
        };
        match query {
            QueryRequest::Summary => {
                let parts: Vec<SummaryPartial> =
                    match self.fetch("/shard/summary".to_string(), generation).await {
                        Ok(parts) => parts,
                        Err(failed) => return failed,
                    };
                let started = Instant::now();
                let coverage =
                    merge_coverage(&parts.iter().map(|p| p.coverage.clone()).collect::<Vec<_>>());
                let totals =
                    merge_totals(&parts.iter().map(|p| p.totals.clone()).collect::<Vec<_>>());
                let days = parts.iter().map(|p| p.days).max().unwrap_or(0);
                let attackers = distinct_count(
                    &parts
                        .iter()
                        .map(|p| p.attacker_keys.clone())
                        .collect::<Vec<_>>(),
                );
                let pools = distinct_count(
                    &parts
                        .iter()
                        .map(|p| p.pool_keys.clone())
                        .collect::<Vec<_>>(),
                );
                let response =
                    render::summary(generation, &coverage, &totals, days, attackers, pools);
                merged_at(started);
                response
            }
            QueryRequest::Days => {
                let parts: Vec<DaysPartial> =
                    match self.fetch("/shard/days".to_string(), generation).await {
                        Ok(parts) => parts,
                        Err(failed) => return failed,
                    };
                let started = Instant::now();
                let merged = merge_days(&parts.into_iter().map(|p| p.days).collect::<Vec<_>>());
                let response = render::days(generation, &merged);
                merged_at(started);
                response
            }
            QueryRequest::Attackers { limit, after } => {
                let parts: Vec<AttackersPartial> =
                    match self.fetch("/shard/attackers".to_string(), generation).await {
                        Ok(parts) => parts,
                        Err(failed) => return failed,
                    };
                let started = Instant::now();
                let entries = merge_attackers(parts.into_iter().map(|p| p.entries).collect());
                let response = render::attackers_page(generation, &entries, *limit, *after);
                merged_at(started);
                response
            }
            QueryRequest::Attacker { pubkey } => {
                let parts: Vec<AttackerDetailPartial> = match self
                    .fetch(format!("/shard/attacker/{pubkey}"), generation)
                    .await
                {
                    Ok(parts) => parts,
                    Err(failed) => return failed,
                };
                let started = Instant::now();
                let recent = merge_recent(
                    parts.iter().map(|p| p.recent.clone()).collect(),
                    DETAIL_REF_CAP,
                );
                let entries = merge_attackers(parts.into_iter().map(|p| p.entries).collect());
                let response = match entries.iter().position(|e| e.attacker == *pubkey) {
                    None => render::unknown_attacker(pubkey),
                    Some(rank) => render::attacker_detail(generation, rank, &entries[rank], recent),
                };
                merged_at(started);
                response
            }
            QueryRequest::Pool { mint } => {
                let parts: Vec<PoolDetailPartial> =
                    match self.fetch(format!("/shard/pool/{mint}"), generation).await {
                        Ok(parts) => parts,
                        Err(failed) => return failed,
                    };
                let started = Instant::now();
                let recent = merge_recent(
                    parts.iter().map(|p| p.recent.clone()).collect(),
                    DETAIL_REF_CAP,
                );
                let attackers = distinct_count(
                    &parts
                        .iter()
                        .map(|p| p.attackers.clone())
                        .collect::<Vec<_>>(),
                );
                let pools = merge_pools(parts.into_iter().map(|p| p.pools).collect());
                let response = match pools.iter().position(|e| e.mint == *mint) {
                    None => render::unknown_pool(mint),
                    Some(rank) => {
                        // The merged entry's distinct-attacker count is a
                        // placeholder; the unioned shard lists are exact.
                        let mut entry = pools[rank].clone();
                        entry.attackers = attackers;
                        render::pool_detail(generation, rank, &entry, recent)
                    }
                };
                merged_at(started);
                response
            }
            QueryRequest::Validators { limit, after } => {
                let parts: Vec<ValidatorsPartial> = match self
                    .fetch("/shard/validators".to_string(), generation)
                    .await
                {
                    Ok(parts) => parts,
                    Err(failed) => return failed,
                };
                let started = Instant::now();
                let entries = merge_validators(parts.into_iter().map(|p| p.entries).collect());
                let response = render::validators_page(generation, &entries, *limit, *after);
                merged_at(started);
                response
            }
            QueryRequest::Validator { pubkey } => {
                let parts: Vec<ValidatorDetailPartial> = match self
                    .fetch(format!("/shard/validator/{pubkey}"), generation)
                    .await
                {
                    Ok(parts) => parts,
                    Err(failed) => return failed,
                };
                let started = Instant::now();
                let recent = merge_recent(
                    parts.iter().map(|p| p.recent.clone()).collect(),
                    DETAIL_REF_CAP,
                );
                let entries = merge_validators(parts.into_iter().map(|p| p.entries).collect());
                let response = match entries.iter().position(|e| e.pubkey == *pubkey) {
                    None => render::unknown_validator(pubkey),
                    Some(rank) => {
                        render::validator_detail(generation, rank, &entries[rank], recent)
                    }
                };
                merged_at(started);
                response
            }
            QueryRequest::Sandwiches {
                from_slot,
                to_slot,
                limit,
                after,
            } => {
                // Each shard ships its first `after + limit` in-range refs;
                // the union contains every ref the page can need (each
                // shard's refs are a subsequence of the global slot order).
                let need = after.saturating_add(*limit);
                let parts: Vec<RangePartial> = match self
                    .fetch(
                        format!(
                            "/shard/sandwiches?from_slot={from_slot}&to_slot={to_slot}&need={need}"
                        ),
                        generation,
                    )
                    .await
                {
                    Ok(parts) => parts,
                    Err(failed) => return failed,
                };
                let started = Instant::now();
                let (total, refs) = merge_range(parts);
                let start = (*after).min(refs.len());
                let end = after.saturating_add(*limit).min(refs.len());
                let response = render::sandwiches_page(
                    generation,
                    *from_slot,
                    *to_slot,
                    total,
                    *limit,
                    *after,
                    refs[start..end].to_vec(),
                );
                merged_at(started);
                response
            }
            QueryRequest::Live {
                after_slot,
                after_id,
                limit,
                ..
            } => {
                self.evaluate_live(generation, *after_slot, after_id, *limit)
                    .await
                    .0
            }
        }
    }

    async fn handle(&self, endpoint: &'static str, request: Request) -> Response {
        let inner = &self.inner;
        inner.registry.counter(names::QUERY_REQUESTS).inc();
        let timer = Instant::now();

        let Some(_guard) = self.admit() else {
            let shed = error_response(503, "server at capacity, retry shortly");
            return Response::new(shed.status, shed.body)
                .header("content-type", &shed.content_type)
                .header("retry-after", "1");
        };

        // One generation per request: every shard must answer at it.
        let generation = self.generation();

        let parsed = QueryRequest::parse(endpoint, &request);

        // Live long-poll: uncached bounded retry loop. Each probe re-reads
        // the router generation (a reload may land mid-wait) and re-fans
        // out; the loop answers as soon as a probe carries rows, or with
        // the final probe's response at the deadline (including a 503
        // when the fan-out is failing — the client's retry signal).
        if let Ok(QueryRequest::Live {
            after_slot,
            after_id,
            limit,
            wait_ms,
        }) = &parsed
        {
            inner.registry.counter(names::QUERY_LIVE_REQUESTS).inc();
            if *wait_ms > 0 {
                inner.registry.counter(names::QUERY_LIVE_LONG_POLLS).inc();
                let waited = Instant::now();
                let deadline = Duration::from_millis(*wait_ms);
                loop {
                    let generation = self.generation();
                    let (response, rows) = self
                        .evaluate_live(&generation, *after_slot, after_id, *limit)
                        .await;
                    if rows > 0 || waited.elapsed() >= deadline {
                        if rows > 0 {
                            inner
                                .registry
                                .counter(names::QUERY_LIVE_ROWS)
                                .add(rows as u64);
                        }
                        inner
                            .registry
                            .histogram(names::QUERY_LIVE_WAIT_SECONDS)
                            .observe(waited.elapsed().as_secs_f64());
                        inner
                            .registry
                            .histogram(&format!("{}{endpoint}", names::QUERY_SECONDS_PREFIX))
                            .observe(timer.elapsed().as_secs_f64());
                        return Response::new(response.status, response.body.clone())
                            .header("content-type", &response.content_type)
                            .header("x-query-generation", &generation);
                    }
                    tokio::time::sleep(LONG_POLL_TICK).await;
                }
            }
        }

        let (cached, outcome, evicted, key) = match parsed {
            Err(message) => (
                Arc::new(error_response(400, message)),
                CacheOutcome::Miss,
                0,
                None,
            ),
            Ok(query) => {
                let key = format!("{generation}|{}", query.canonical_key());
                let compute = {
                    let router = self.clone();
                    let generation = generation.clone();
                    move || async move { router.evaluate(&generation, &query).await }
                };
                let (cached, outcome, evicted) =
                    inner.cache.get_or_compute_async(&key, compute).await;
                (cached, outcome, evicted, Some(key))
            }
        };

        // A failed fan-out must not pin a 503 for the generation's
        // lifetime: evict it so the next request retries the shards.
        if let Some(key) = key {
            if outcome == CacheOutcome::Miss && cached.status >= 500 {
                inner.cache.invalidate(&key);
            }
        }

        match outcome {
            CacheOutcome::Hit => inner.registry.counter(names::QUERY_CACHE_HITS).inc(),
            CacheOutcome::Miss => inner.registry.counter(names::QUERY_CACHE_MISSES).inc(),
            CacheOutcome::Deduped => {
                inner
                    .registry
                    .counter(names::QUERY_CACHE_SINGLE_FLIGHT_WAITS)
                    .inc();
                inner.registry.counter(names::QUERY_CACHE_HITS).inc();
            }
        }
        if evicted > 0 {
            inner
                .registry
                .counter(names::QUERY_CACHE_EVICTIONS)
                .add(evicted);
        }
        inner
            .registry
            .histogram(&format!("{}{endpoint}", names::QUERY_SECONDS_PREFIX))
            .observe(timer.elapsed().as_secs_f64());

        Response::new(cached.status, cached.body.clone())
            .header("content-type", &cached.content_type)
            .header("x-query-generation", &generation)
    }

    /// `GET /healthz`: liveness of the router itself — never fans out.
    fn health_response(&self) -> Response {
        let body = format!(
            "{{\"status\":\"ok\",\"generation\":\"{}\",\"shards\":{}}}",
            self.generation(),
            self.shard_count()
        );
        Response::new(200, body.into_bytes()).header("content-type", "application/json")
    }

    /// `GET /readyz`: aggregated readiness. 200 while at least one shard
    /// is ready (`degraded: true` when not all are); 503 when none are.
    async fn ready_response(&self) -> Response {
        let inner = &self.inner;
        let n = inner.shards.len();
        let mut set = tokio::task::JoinSet::new();
        for client in &inner.shards {
            let client = *client;
            set.spawn(async move {
                matches!(client.get("/readyz").await, Ok(response) if response.status == 200)
            });
        }
        let mut ready = 0usize;
        while let Some(joined) = set.join_next().await {
            if joined.unwrap_or(false) {
                ready += 1;
            }
        }
        let ok = ready >= 1;
        let body = format!(
            "{{\"ready\":{ok},\"degraded\":{},\"shards\":{n},\"ready_shards\":{ready},\"generation\":\"{}\"}}",
            ready < n,
            self.generation()
        );
        let response = Response::new(if ok { 200 } else { 503 }, body.into_bytes())
            .header("content-type", "application/json");
        if ok {
            response
        } else {
            response.header("retry-after", "3")
        }
    }

    /// The public `/api/*` router (plus health probes and `/metrics`).
    pub fn router(&self) -> Router {
        let endpoints: [(&'static str, &'static str); 9] = [
            ("summary", "/api/summary"),
            ("days", "/api/days"),
            ("attackers", "/api/attackers"),
            ("attacker", "/api/attacker/{pubkey}"),
            ("pool", "/api/pool/{mint}"),
            ("sandwiches", "/api/sandwiches"),
            ("live", "/api/live"),
            ("validators", "/api/validators"),
            ("validator", "/api/validator/{pubkey}"),
        ];
        let mut router = Router::new();
        for (endpoint, path) in endpoints {
            let service = self.clone();
            router = router.route(Method::Get, path, move |request: Request| {
                let service = service.clone();
                async move { service.handle(endpoint, request).await }
            });
        }
        let service = self.clone();
        router = router.route(Method::Get, "/healthz", move |_request: Request| {
            let service = service.clone();
            async move { service.health_response() }
        });
        let service = self.clone();
        router = router.route(Method::Get, "/readyz", move |_request: Request| {
            let service = service.clone();
            async move { service.ready_response().await }
        });
        router.with_metrics(self.inner.registry.clone())
    }
}
