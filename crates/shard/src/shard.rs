//! [`ShardService`] — one shard's engine and its `/shard/*` partial API.
//!
//! A shard owns a slice of the manifest (per the [`crate::ShardMap`]),
//! builds its index with `build_index_subset` over exactly that slice,
//! persists it under a shard-and-fingerprint-qualified file name
//! (`query-index.shard-{i}of{n}-{fp}.bin`, same `SWQIX01` frame), and
//! serves merge-ready partials from its own response cache. Coverage is
//! exact per shard: a shard whose slice contains quarantined or
//! unreadable segments reports them in its own coverage block, and the
//! router's sum reproduces the whole-store block.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use sandwich_net::{Method, Request, Response, Router};
use sandwich_obs::{names, Registry};
use sandwich_query::render::{error_response, DETAIL_REF_CAP};
use sandwich_query::{
    build_index_subset, first_ref_after_cursor, generation_of, live_minutes, load_index_as,
    save_index_as, AttackerEntry, CachedResponse, Engine, PoolEntry, QueryConfig, ResponseCache,
    SandwichRef, ValidatorEntry,
};
use sandwich_store::BundleStore;
use sandwich_types::{Hash, Pubkey};

use crate::map::ShardMap;
use crate::merge::{
    AttackerDetailPartial, AttackersPartial, DaysPartial, LivePartial, PoolDetailPartial,
    RangePartial, SummaryPartial, ValidatorDetailPartial, ValidatorsPartial,
};

/// File name of one shard's persisted index: qualified by shard id, shard
/// count, and the assignment fingerprint so a re-plan never aliases a
/// stale index (the generation inside the frame is still checked on load).
pub fn shard_index_file(shard: usize, shards: usize, fingerprint: &str) -> String {
    format!("query-index.shard-{shard}of{shards}-{fingerprint}.bin")
}

/// Leading file-name prefix of every per-shard index (for garbage
/// collection of stale fingerprints).
pub const SHARD_INDEX_PREFIX: &str = "query-index.shard-";

/// Tunables for one shard service.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Directory of the sealed bundle store.
    pub store_dir: PathBuf,
    /// Index-build semantics (detector, threshold, clock, threads).
    pub query: QueryConfig,
    /// This shard's id (index into the shard map).
    pub shard: usize,
    /// Response-cache shards.
    pub cache_shards: usize,
    /// Entries per cache shard.
    pub cache_per_shard: usize,
}

impl ShardConfig {
    /// Paper-default semantics for shard `shard` over `store_dir`.
    pub fn new(store_dir: impl Into<PathBuf>, shard: usize) -> Self {
        ShardConfig {
            store_dir: store_dir.into(),
            query: QueryConfig::default(),
            shard,
            cache_shards: 4,
            cache_per_shard: 64,
        }
    }
}

/// An owned, validated shard query (the `Request` itself is not `Clone`,
/// and the single-flight compute closure must own its inputs).
enum ShardQuery {
    Summary,
    Days,
    Attackers,
    Attacker(Pubkey),
    Pool(Pubkey),
    Validators,
    Validator(Pubkey),
    Range {
        from_slot: u64,
        to_slot: u64,
        need: usize,
    },
    Live {
        after_slot: u64,
        after_id: Hash,
        need: usize,
    },
}

impl ShardQuery {
    /// Canonical cache-key tail (unique per distinct answer).
    fn canonical(&self) -> String {
        match self {
            ShardQuery::Summary => "summary".to_string(),
            ShardQuery::Days => "days".to_string(),
            ShardQuery::Attackers => "attackers".to_string(),
            ShardQuery::Attacker(pubkey) => format!("attacker/{pubkey}"),
            ShardQuery::Pool(mint) => format!("pool/{mint}"),
            ShardQuery::Validators => "validators".to_string(),
            ShardQuery::Validator(pubkey) => format!("validator/{pubkey}"),
            ShardQuery::Range {
                from_slot,
                to_slot,
                need,
            } => format!("sandwiches?from={from_slot}&to={to_slot}&need={need}"),
            ShardQuery::Live {
                after_slot,
                after_id,
                need,
            } => format!("live?after={after_slot:016x}.{after_id}&need={need}"),
        }
    }
}

struct ShardState {
    engine: Arc<Engine>,
    fingerprint: String,
    shards: usize,
}

struct ShardInner {
    config: ShardConfig,
    state: RwLock<ShardState>,
    cache: ResponseCache,
    registry: Registry,
    last_install_ok: AtomicBool,
}

/// One shard: an engine over its manifest slice plus the partial API.
#[derive(Clone)]
pub struct ShardService {
    inner: Arc<ShardInner>,
}

/// Load the shard's persisted index when it verifies, rebuild its subset
/// from segments when it does not, and record which happened.
fn load_or_build_shard(
    config: &ShardConfig,
    map: &ShardMap,
    registry: &Registry,
) -> std::io::Result<ShardState> {
    let store = BundleStore::open(&config.store_dir)?;
    let generation = generation_of(store.manifest());
    if map.generation != generation {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "shard map generation {} does not match manifest {generation}",
                map.generation
            ),
        ));
    }
    let (serving, quarantined) = map.resolve(store.manifest(), config.shard).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("stale shard map: {e}"),
        )
    })?;
    let fingerprint = map.fingerprint(config.shard);
    let file = shard_index_file(config.shard, map.shard_count(), &fingerprint);
    let index = match load_index_as(store.dir(), &file, &generation) {
        Ok(index) => {
            registry.counter(names::QUERY_INDEX_LOADS).inc();
            index
        }
        Err(_) => {
            let started = Instant::now();
            let index = build_index_subset(&store, &config.query, &serving, &quarantined)?;
            registry
                .histogram(names::QUERY_INDEX_BUILD_SECONDS)
                .observe(started.elapsed().as_secs_f64());
            registry.counter(names::QUERY_INDEX_REBUILDS).inc();
            save_index_as(store.dir(), &index, &file)?;
            index
        }
    };
    if index.coverage.segments_failed > 0 {
        registry
            .counter(names::QUERY_INDEX_SEGMENTS_FAILED)
            .add(index.coverage.segments_failed);
    }
    Ok(ShardState {
        engine: Arc::new(Engine::new(Arc::new(index))),
        fingerprint,
        shards: map.shard_count(),
    })
}

impl ShardService {
    /// Open the store and build (or load) this shard's slice of the index
    /// per `map`. Metrics land in `registry`.
    pub fn open(
        config: ShardConfig,
        map: &ShardMap,
        registry: Registry,
    ) -> std::io::Result<ShardService> {
        let state = load_or_build_shard(&config, map, &registry)?;
        let cache = ResponseCache::new(config.cache_shards, config.cache_per_shard);
        Ok(ShardService {
            inner: Arc::new(ShardInner {
                config,
                state: RwLock::new(state),
                cache,
                registry,
                last_install_ok: AtomicBool::new(true),
            }),
        })
    }

    /// Swap in the engine for a (possibly new) shard map — the reload
    /// path after a seal or a rebalance. Returns `true` when a different
    /// generation or assignment went live. A failed install keeps the
    /// last good engine serving and flips `/readyz` until one succeeds.
    pub fn install(&self, map: &ShardMap) -> std::io::Result<bool> {
        let result = self.install_inner(map);
        self.inner
            .last_install_ok
            .store(result.is_ok(), Ordering::Release);
        result
    }

    fn install_inner(&self, map: &ShardMap) -> std::io::Result<bool> {
        {
            let state = self.inner.state.read();
            if state.engine.generation() == map.generation
                && state.fingerprint == map.fingerprint(self.inner.config.shard)
                && state.shards == map.shard_count()
            {
                return Ok(false);
            }
        }
        let state = load_or_build_shard(&self.inner.config, map, &self.inner.registry)?;
        *self.inner.state.write() = state;
        self.inner.registry.counter(names::QUERY_RELOADS).inc();
        Ok(true)
    }

    /// This shard's id.
    pub fn shard(&self) -> usize {
        self.inner.config.shard
    }

    /// The generation currently being served.
    pub fn generation(&self) -> String {
        self.inner.state.read().engine.generation().to_string()
    }

    /// The engine snapshot currently serving (for tests and benches).
    pub fn engine_snapshot(&self) -> Arc<Engine> {
        self.inner.state.read().engine.clone()
    }

    fn engine(&self) -> Arc<Engine> {
        self.inner.state.read().engine.clone()
    }

    fn json<T: serde::Serialize>(value: &T) -> CachedResponse {
        CachedResponse {
            status: 200,
            content_type: "application/json".to_string(),
            body: serde_json::to_vec(value).unwrap_or_default(),
        }
    }

    fn summary_partial(engine: &Engine) -> CachedResponse {
        let index = engine.index();
        Self::json(&SummaryPartial {
            generation: index.generation.clone(),
            coverage: index.coverage.clone(),
            totals: index.totals.clone(),
            days: index.days.len() as u64,
            attacker_keys: index.attackers.iter().map(|e| e.attacker).collect(),
            pool_keys: index.pools.iter().map(|e| e.mint).collect(),
        })
    }

    /// Entries with refs cleared: rank and row data only, off the wire.
    fn wire_attackers(engine: &Engine) -> Vec<AttackerEntry> {
        engine
            .index()
            .attackers
            .iter()
            .map(|e| AttackerEntry {
                refs: Vec::new(),
                ..e.clone()
            })
            .collect()
    }

    fn wire_pools(engine: &Engine) -> Vec<PoolEntry> {
        engine
            .index()
            .pools
            .iter()
            .map(|e| PoolEntry {
                refs: Vec::new(),
                ..e.clone()
            })
            .collect()
    }

    /// Entries with refs cleared; `sandwich_slots` stays on the wire
    /// (the router's distinct-block merge needs the slot union).
    fn wire_validators(engine: &Engine) -> Vec<ValidatorEntry> {
        engine
            .validator_entries()
            .iter()
            .map(|e| ValidatorEntry {
                refs: Vec::new(),
                ..e.clone()
            })
            .collect()
    }

    fn validator_detail_partial(engine: &Engine, pubkey: &Pubkey) -> CachedResponse {
        let recent = engine
            .validator_entry(pubkey)
            .map(|(_, entry)| engine.ref_tail(&entry.refs, DETAIL_REF_CAP))
            .unwrap_or_default();
        Self::json(&ValidatorDetailPartial {
            generation: engine.generation().to_string(),
            entries: Self::wire_validators(engine),
            recent,
        })
    }

    fn attacker_detail_partial(engine: &Engine, pubkey: &Pubkey) -> CachedResponse {
        let recent = engine
            .attacker_entry(pubkey)
            .map(|(_, entry)| engine.ref_tail(&entry.refs, DETAIL_REF_CAP))
            .unwrap_or_default();
        Self::json(&AttackerDetailPartial {
            generation: engine.generation().to_string(),
            entries: Self::wire_attackers(engine),
            recent,
        })
    }

    fn pool_detail_partial(engine: &Engine, mint: &Pubkey) -> CachedResponse {
        let (attackers, recent) = match engine.pool_entry(mint) {
            None => (Vec::new(), Vec::new()),
            Some((_, entry)) => {
                let all: Vec<SandwichRef> = engine.ref_tail(&entry.refs, usize::MAX);
                let set: std::collections::BTreeSet<Pubkey> =
                    all.iter().map(|r| r.attacker).collect();
                (
                    set.into_iter().collect(),
                    engine.ref_tail(&entry.refs, DETAIL_REF_CAP),
                )
            }
        };
        Self::json(&PoolDetailPartial {
            generation: engine.generation().to_string(),
            pools: Self::wire_pools(engine),
            attackers,
            recent,
        })
    }

    fn range_partial(engine: &Engine, from_slot: u64, to_slot: u64, need: usize) -> CachedResponse {
        let refs = &engine.index().refs;
        let start = sandwich_query::index::first_ref_at_or_after(refs, from_slot);
        let end = match to_slot.checked_add(1) {
            Some(bound) => sandwich_query::index::first_ref_at_or_after(refs, bound),
            None => refs.len(),
        };
        let in_range = &refs[start..end];
        Self::json(&RangePartial {
            generation: engine.generation().to_string(),
            total: in_range.len() as u64,
            refs: in_range.iter().take(need).cloned().collect(),
        })
    }

    fn live_partial(
        engine: &Engine,
        after_slot: u64,
        after_id: &Hash,
        need: usize,
    ) -> CachedResponse {
        let index = engine.index();
        let refs = &index.refs;
        let start = first_ref_after_cursor(refs, after_slot, after_id);
        let after = &refs[start..];
        Self::json(&LivePartial {
            generation: engine.generation().to_string(),
            tip_slot: index.totals.max_slot,
            total_after: after.len() as u64,
            refs: after.iter().take(need).cloned().collect(),
            minutes: live_minutes(refs, index.totals.max_slot),
        })
    }

    async fn handle(&self, kind: &'static str, request: Request) -> Response {
        let engine = self.engine();
        let generation = engine.generation().to_string();

        // Parse into an owned query (Request is not Clone) or a 400.
        let parsed: Result<ShardQuery, String> = match kind {
            "summary" => Ok(ShardQuery::Summary),
            "days" => Ok(ShardQuery::Days),
            "attackers" => Ok(ShardQuery::Attackers),
            "validators" => Ok(ShardQuery::Validators),
            "attacker" | "pool" | "validator" => {
                let param = if kind == "pool" { "mint" } else { "pubkey" };
                match request.path_param(param).map(str::parse::<Pubkey>) {
                    Some(Ok(key)) if kind == "attacker" => Ok(ShardQuery::Attacker(key)),
                    Some(Ok(key)) if kind == "validator" => Ok(ShardQuery::Validator(key)),
                    Some(Ok(key)) => Ok(ShardQuery::Pool(key)),
                    _ => Err(format!("invalid {param}")),
                }
            }
            "sandwiches" => {
                let parse = |key: &str, default: u64| -> Result<u64, String> {
                    match request.query.get(key) {
                        None => Ok(default),
                        Some(raw) => raw
                            .parse::<u64>()
                            .map_err(|_| format!("query parameter {key:?} must be an integer")),
                    }
                };
                match (
                    parse("from_slot", 0),
                    parse("to_slot", u64::MAX),
                    parse("need", u64::MAX),
                ) {
                    (Ok(f), Ok(t), Ok(n)) if f <= t => Ok(ShardQuery::Range {
                        from_slot: f,
                        to_slot: t,
                        need: n.min(usize::MAX as u64) as usize,
                    }),
                    (Ok(f), Ok(t), Ok(_)) => Err(format!("from_slot {f} exceeds to_slot {t}")),
                    (Err(e), ..) | (_, Err(e), _) | (_, _, Err(e)) => Err(e),
                }
            }
            "live" => {
                let after_slot = match request.query.get("after_slot") {
                    None => Ok(0),
                    Some(raw) => raw.parse::<u64>().map_err(|_| {
                        "query parameter \"after_slot\" must be an integer".to_string()
                    }),
                };
                let after_id = match request.query.get("after_id") {
                    None => Ok(Hash([0u8; 32])),
                    Some(raw) => Hash::from_base58(raw)
                        .ok_or_else(|| "query parameter \"after_id\" must be base58".to_string()),
                };
                let need = match request.query.get("need") {
                    None => Ok(usize::MAX),
                    Some(raw) => raw
                        .parse::<usize>()
                        .map_err(|_| "query parameter \"need\" must be an integer".to_string()),
                };
                match (after_slot, after_id, need) {
                    (Ok(after_slot), Ok(after_id), Ok(need)) => Ok(ShardQuery::Live {
                        after_slot,
                        after_id,
                        need,
                    }),
                    (Err(e), ..) | (_, Err(e), _) | (_, _, Err(e)) => Err(e),
                }
            }
            other => Err(format!("unknown shard endpoint {other:?}")),
        };

        let cached = match parsed {
            Err(message) => Arc::new(error_response(400, message)),
            Ok(query) => {
                let key = format!("{generation}|{}", query.canonical());
                let compute = {
                    let engine = engine.clone();
                    move || match query {
                        ShardQuery::Summary => Self::summary_partial(&engine),
                        ShardQuery::Days => Self::json(&DaysPartial {
                            generation: engine.generation().to_string(),
                            days: engine.index().days.clone(),
                        }),
                        ShardQuery::Attackers => Self::json(&AttackersPartial {
                            generation: engine.generation().to_string(),
                            entries: Self::wire_attackers(&engine),
                        }),
                        ShardQuery::Attacker(pubkey) => {
                            Self::attacker_detail_partial(&engine, &pubkey)
                        }
                        ShardQuery::Pool(mint) => Self::pool_detail_partial(&engine, &mint),
                        ShardQuery::Validators => Self::json(&ValidatorsPartial {
                            generation: engine.generation().to_string(),
                            entries: Self::wire_validators(&engine),
                        }),
                        ShardQuery::Validator(pubkey) => {
                            Self::validator_detail_partial(&engine, &pubkey)
                        }
                        ShardQuery::Range {
                            from_slot,
                            to_slot,
                            need,
                        } => Self::range_partial(&engine, from_slot, to_slot, need),
                        ShardQuery::Live {
                            after_slot,
                            after_id,
                            need,
                        } => Self::live_partial(&engine, after_slot, &after_id, need),
                    }
                };
                let (cached, _outcome, _evicted) =
                    self.inner.cache.get_or_compute(&key, compute).await;
                cached
            }
        };

        Response::new(cached.status, cached.body.clone())
            .header("content-type", &cached.content_type)
            .header("x-query-generation", &generation)
    }

    fn health_response(&self) -> Response {
        let body = format!(
            "{{\"status\":\"ok\",\"shard\":{},\"generation\":\"{}\"}}",
            self.shard(),
            self.generation()
        );
        Response::new(200, body.into_bytes()).header("content-type", "application/json")
    }

    fn ready_response(&self) -> Response {
        let ok = self.inner.last_install_ok.load(Ordering::Acquire);
        let engine = self.engine();
        let body = format!(
            "{{\"ready\":{ok},\"shard\":{},\"complete\":{},\"generation\":\"{}\"}}",
            self.shard(),
            engine.index().coverage.complete(),
            engine.generation()
        );
        let response = Response::new(if ok { 200 } else { 503 }, body.into_bytes())
            .header("content-type", "application/json");
        if ok {
            response
        } else {
            response.header("retry-after", "3")
        }
    }

    /// The partial API router (plus `GET /metrics` from the registry).
    pub fn router(&self) -> Router {
        let endpoints: [(&'static str, &'static str); 9] = [
            ("summary", "/shard/summary"),
            ("days", "/shard/days"),
            ("attackers", "/shard/attackers"),
            ("attacker", "/shard/attacker/{pubkey}"),
            ("pool", "/shard/pool/{mint}"),
            ("sandwiches", "/shard/sandwiches"),
            ("live", "/shard/live"),
            ("validators", "/shard/validators"),
            ("validator", "/shard/validator/{pubkey}"),
        ];
        let mut router = Router::new();
        for (kind, path) in endpoints {
            let service = self.clone();
            router = router.route(Method::Get, path, move |request: Request| {
                let service = service.clone();
                async move { service.handle(kind, request).await }
            });
        }
        let service = self.clone();
        router = router.route(Method::Get, "/healthz", move |_request: Request| {
            let service = service.clone();
            async move { service.health_response() }
        });
        let service = self.clone();
        router = router.route(Method::Get, "/readyz", move |_request: Request| {
            let service = service.clone();
            async move { service.ready_response() }
        });
        router.with_metrics(self.inner.registry.clone())
    }
}
