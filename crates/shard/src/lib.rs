//! Horizontal sharding for the query-serving subsystem.
//!
//! One `queryd` owns one store directory and one index; this crate
//! partitions the sealed segments by slot range across N shard engines
//! and serves them behind a scatter-gather router:
//!
//! - [`map`] — the [`ShardMap`]: a persisted, generation-keyed assignment
//!   of every manifest segment (serving and quarantined) to exactly one
//!   shard, planned deterministically by slot order and balanced by
//!   bundle count.
//! - [`merge`] — the wire partials each shard serves under `/shard/*`
//!   and the pure, associative merge functions the router folds them
//!   with. Merged inputs feed the same `sandwich-query` render layer the
//!   single-engine path uses, so responses are byte-identical at every
//!   shard count.
//! - [`shard`] — [`ShardService`]: one engine per shard, built with
//!   `build_index_subset` over the shard's slice of the manifest,
//!   persisted per-shard, with its own response cache and health probes.
//! - [`router`] — [`RouterService`]: fans `/api/*` out to the shards,
//!   checks generation agreement, merges partials, re-paginates, and
//!   aggregates `/healthz` / `/readyz` (degraded-but-serving while at
//!   least one shard is ready).
//! - [`cluster`] — single-process assembly: N shard listeners plus the
//!   router over real sockets, so multi-node is a config change, not a
//!   rewrite.

#![warn(missing_docs)]

pub mod cluster;
pub mod map;
pub mod merge;
pub mod router;
pub mod shard;

pub use cluster::{ClusterConfig, ServingCluster};
pub use map::{ShardMap, ShardMapReject, ShardSpec, SHARD_MAP_FILE, SHARD_MAP_MAGIC};
pub use router::{RouterConfig, RouterService};
pub use shard::{shard_index_file, ShardConfig, ShardService, SHARD_INDEX_PREFIX};
