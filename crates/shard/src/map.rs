//! The [`ShardMap`]: which shard owns which segment.
//!
//! Planning is deterministic: serving segments are ordered by slot range
//! (`min_slot`, then `max_slot`, then file name) and cut into N
//! contiguous groups balanced by cumulative bundle count, so each shard
//! owns a slot range and a roughly equal share of the data. Quarantined
//! segments are assigned to the shard whose slot range covers them, so a
//! disjoint exhaustive partition of *all* manifest entries exists and the
//! router's summed coverage equals the single-engine coverage exactly.
//!
//! The map persists next to the manifest as `shard-map.bin`, framed like
//! the query index (`SWSMAP1\n` · JSON body · FNV-1a 64 checksum (LE) ·
//! `SWSEND1\n`) and keyed to the manifest generation: any manifest change
//! (a new seal, a quarantine, a rebalance) invalidates it, and the next
//! open re-plans. Writes go through the store's durable-write primitive
//! (temp file + fsync + atomic rename + directory fsync), so a crash
//! mid-swap leaves the previous map or none — never a torn frame.

use std::path::Path;

use serde::{Deserialize, Serialize};

use sandwich_store::{crash, fnv1a64, Manifest, SegmentMeta};

/// Shard-map file name inside a store directory (next to `manifest.json`).
pub const SHARD_MAP_FILE: &str = "shard-map.bin";

/// Leading magic of a persisted shard map (includes the format version).
pub const SHARD_MAP_MAGIC: &[u8; 8] = b"SWSMAP1\n";

/// Trailing magic of a persisted shard map.
const SHARD_MAP_FOOTER_MAGIC: &[u8; 8] = b"SWSEND1\n";

/// One shard's slice of the manifest.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Shard id (index into [`ShardMap::shards`]).
    pub shard: u64,
    /// Serving segment file names owned by this shard, manifest order.
    pub segments: Vec<String>,
    /// Quarantined segment file names accounted to this shard.
    pub quarantined: Vec<String>,
    /// Bundles inside the serving segments (planning weight).
    pub bundles: u64,
    /// Lowest slot this shard serves (0 when empty).
    pub min_slot: u64,
    /// Highest slot this shard serves (0 when empty).
    pub max_slot: u64,
}

/// The complete assignment for one manifest generation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    /// The manifest generation this map partitions.
    pub generation: String,
    /// One spec per shard; every manifest entry appears in exactly one.
    pub shards: Vec<ShardSpec>,
}

/// Why a persisted shard map was not trusted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardMapReject {
    /// No persisted map exists yet.
    Missing,
    /// Bad leading or trailing magic, or too short to frame.
    BadFrame,
    /// Body checksum disagrees with the footer (corruption).
    BadChecksum,
    /// The body does not parse as a shard map.
    BadBody,
    /// The map describes a different manifest generation.
    StaleGeneration {
        /// Generation recorded in the file.
        found: String,
        /// Generation of the live manifest.
        expected: String,
    },
    /// The map was planned for a different shard count.
    ShardCountMismatch {
        /// Shards in the file.
        found: usize,
        /// Shards requested now.
        expected: usize,
    },
}

impl std::fmt::Display for ShardMapReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardMapReject::Missing => write!(f, "no persisted shard map"),
            ShardMapReject::BadFrame => write!(f, "bad shard-map framing"),
            ShardMapReject::BadChecksum => write!(f, "shard-map checksum mismatch"),
            ShardMapReject::BadBody => write!(f, "shard-map body does not parse"),
            ShardMapReject::StaleGeneration { found, expected } => {
                write!(f, "shard-map generation {found} != manifest {expected}")
            }
            ShardMapReject::ShardCountMismatch { found, expected } => {
                write!(f, "shard map has {found} shards, {expected} requested")
            }
        }
    }
}

/// Slot-order sort key shared by planning and quarantine assignment.
fn slot_key(meta: &SegmentMeta) -> (u64, u64, String) {
    (meta.min_slot, meta.max_slot, meta.file.clone())
}

impl ShardMap {
    /// Plan a fresh map for `manifest` across `shards` shards.
    /// Deterministic: depends only on the manifest contents.
    pub fn plan(manifest: &Manifest, shards: usize) -> ShardMap {
        let n = shards.max(1);
        let mut specs: Vec<ShardSpec> = (0..n)
            .map(|i| ShardSpec {
                shard: i as u64,
                ..ShardSpec::default()
            })
            .collect();

        let mut serving: Vec<&SegmentMeta> = manifest.segments.iter().collect();
        serving.sort_by_key(|m| slot_key(m));
        let total: u64 = serving.iter().map(|m| m.bundles).sum();
        let mut cum = 0u64;
        let mut shard = 0usize;
        for (i, meta) in serving.iter().enumerate() {
            if total == 0 {
                shard = i % n;
            } else {
                // Advance while this shard has met its pro-rata quota of
                // the total bundle count; contiguity in slot order is
                // what makes a shard a slot range.
                while shard + 1 < n && cum * n as u64 >= total * (shard as u64 + 1) {
                    shard += 1;
                }
            }
            let spec = &mut specs[shard];
            if spec.segments.is_empty() {
                spec.min_slot = meta.min_slot;
                spec.max_slot = meta.max_slot;
            } else {
                spec.min_slot = spec.min_slot.min(meta.min_slot);
                spec.max_slot = spec.max_slot.max(meta.max_slot);
            }
            spec.segments.push(meta.file.clone());
            spec.bundles += meta.bundles;
            cum += meta.bundles;
        }

        // Quarantined segments: owned by the last shard whose range
        // starts at or before them (slot affinity), shard 0 otherwise.
        let mut quarantined: Vec<&sandwich_store::QuarantinedSegment> =
            manifest.quarantined().iter().collect();
        quarantined.sort_by_key(|q| slot_key(&q.meta));
        for q in quarantined {
            let owner = specs
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.segments.is_empty() && s.min_slot <= q.meta.min_slot)
                .map(|(i, _)| i)
                .next_back()
                .unwrap_or(0);
            specs[owner].quarantined.push(q.meta.file.clone());
        }

        ShardMap {
            generation: sandwich_query::generation_of(manifest),
            shards: specs,
        }
    }

    /// Number of shards in this map.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A 16-hex FNV-1a 64 fingerprint of one shard's assignment — embedded
    /// in the shard's persisted index file name so a re-plan (different
    /// shard count, rebalanced layout) can never alias a stale index.
    pub fn fingerprint(&self, shard: usize) -> String {
        let spec = &self.shards[shard];
        let mut bytes = Vec::new();
        for file in spec.segments.iter().chain(&spec.quarantined) {
            bytes.extend_from_slice(file.as_bytes());
            bytes.push(b'\n');
        }
        format!("{:016x}", fnv1a64(&bytes))
    }

    /// Resolve one shard's file names back to indices into
    /// `manifest.segments` / `manifest.quarantined()`. Fails when the map
    /// references a file the manifest no longer lists (stale map).
    pub fn resolve(
        &self,
        manifest: &Manifest,
        shard: usize,
    ) -> Result<(Vec<usize>, Vec<usize>), ShardMapReject> {
        let spec = &self.shards[shard];
        let mut serving = Vec::with_capacity(spec.segments.len());
        for file in &spec.segments {
            let i = manifest
                .segments
                .iter()
                .position(|m| &m.file == file)
                .ok_or(ShardMapReject::BadBody)?;
            serving.push(i);
        }
        // Serve in manifest order so per-shard scans fold partials in the
        // same order an unsharded scan would within this slice.
        serving.sort_unstable();
        let mut quarantined = Vec::with_capacity(spec.quarantined.len());
        for file in &spec.quarantined {
            let i = manifest
                .quarantined()
                .iter()
                .position(|q| &q.meta.file == file)
                .ok_or(ShardMapReject::BadBody)?;
            quarantined.push(i);
        }
        quarantined.sort_unstable();
        Ok((serving, quarantined))
    }

    /// Persist this map durably next to the manifest (atomic swap: the
    /// previous map stays intact until the rename).
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let body = serde_json::to_vec(self)?;
        let mut image = Vec::with_capacity(body.len() + 24);
        image.extend_from_slice(SHARD_MAP_MAGIC);
        image.extend_from_slice(&body);
        image.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        image.extend_from_slice(SHARD_MAP_FOOTER_MAGIC);
        crash::write_durable_with(&dir.join(SHARD_MAP_FILE), &image, &[], None)
    }

    /// Load the persisted map, trusting it only when the framing, the
    /// checksum, the manifest generation, and the shard count all verify.
    pub fn load(
        dir: &Path,
        expected_generation: &str,
        expected_shards: usize,
    ) -> Result<ShardMap, ShardMapReject> {
        let image = match std::fs::read(dir.join(SHARD_MAP_FILE)) {
            Ok(image) => image,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ShardMapReject::Missing)
            }
            Err(_) => return Err(ShardMapReject::BadFrame),
        };
        let frame = SHARD_MAP_MAGIC.len() + 8 + SHARD_MAP_FOOTER_MAGIC.len();
        if image.len() < frame
            || &image[..SHARD_MAP_MAGIC.len()] != SHARD_MAP_MAGIC
            || &image[image.len() - SHARD_MAP_FOOTER_MAGIC.len()..] != SHARD_MAP_FOOTER_MAGIC
        {
            return Err(ShardMapReject::BadFrame);
        }
        let body = &image[SHARD_MAP_MAGIC.len()..image.len() - 8 - SHARD_MAP_FOOTER_MAGIC.len()];
        let checksum = u64::from_le_bytes(
            image[image.len() - 8 - SHARD_MAP_FOOTER_MAGIC.len()
                ..image.len() - SHARD_MAP_FOOTER_MAGIC.len()]
                .try_into()
                .expect("8-byte checksum slice"),
        );
        if fnv1a64(body) != checksum {
            return Err(ShardMapReject::BadChecksum);
        }
        let map: ShardMap = serde_json::from_slice(body).map_err(|_| ShardMapReject::BadBody)?;
        if map.generation != expected_generation {
            return Err(ShardMapReject::StaleGeneration {
                found: map.generation,
                expected: expected_generation.to_string(),
            });
        }
        if map.shard_count() != expected_shards {
            return Err(ShardMapReject::ShardCountMismatch {
                found: map.shard_count(),
                expected: expected_shards,
            });
        }
        Ok(map)
    }

    /// Load a valid persisted map or plan, persist, and return a fresh
    /// one. The common open path for shard clusters.
    pub fn load_or_plan(
        dir: &Path,
        manifest: &Manifest,
        shards: usize,
    ) -> std::io::Result<ShardMap> {
        let generation = sandwich_query::generation_of(manifest);
        match ShardMap::load(dir, &generation, shards) {
            Ok(map) => Ok(map),
            Err(_) => {
                let map = ShardMap::plan(manifest, shards);
                map.save(dir)?;
                Ok(map)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_store::StoreWriter;
    use sandwich_types::{Hash, Keypair, Lamports, Slot};

    fn seed_store(tag: &str, segments: u64, per_segment: u64) -> sandwich_store::BundleStore {
        let dir = std::env::temp_dir().join(format!("swmap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let kp = Keypair::from_label("map");
        let mut w = StoreWriter::create(&dir).unwrap();
        for seg in 0..segments {
            let bundles: Vec<_> = (0..per_segment)
                .map(|i| sandwich_store::CollectedBundle {
                    bundle_id: Hash::digest(&(seg * 1000 + i).to_le_bytes()),
                    slot: Slot(seg * 500 + i),
                    timestamp_ms: (seg * 500 + i) * 400,
                    tip: Lamports(10_000),
                    tx_ids: vec![kp.sign(&(seg * 1000 + i).to_le_bytes())],
                })
                .collect();
            w.seal_segment(bundles, Vec::new(), Vec::new()).unwrap();
        }
        w.into_reader()
    }

    #[test]
    fn plan_partitions_every_segment_exactly_once() {
        let store = seed_store("plan", 10, 8);
        for n in [1, 2, 3, 4, 8, 16] {
            let map = ShardMap::plan(store.manifest(), n);
            assert_eq!(map.shard_count(), n);
            let mut seen: Vec<&String> = map.shards.iter().flat_map(|s| &s.segments).collect();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), 10, "n={n}: every segment exactly once");
            // Contiguity: shard slot ranges are non-decreasing.
            let mins: Vec<u64> = map
                .shards
                .iter()
                .filter(|s| !s.segments.is_empty())
                .map(|s| s.min_slot)
                .collect();
            let mut sorted = mins.clone();
            sorted.sort_unstable();
            assert_eq!(mins, sorted, "n={n}: slot-ordered shards");
        }
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn persisted_map_roundtrips_and_rejects() {
        let store = seed_store("persist", 4, 5);
        let dir = store.dir().to_path_buf();
        let map = ShardMap::plan(store.manifest(), 2);
        map.save(&dir).unwrap();

        let back = ShardMap::load(&dir, &map.generation, 2).unwrap();
        assert_eq!(back, map);

        assert!(matches!(
            ShardMap::load(&dir, &map.generation, 4),
            Err(ShardMapReject::ShardCountMismatch {
                found: 2,
                expected: 4
            })
        ));
        assert!(matches!(
            ShardMap::load(&dir, "0000000000000000", 2),
            Err(ShardMapReject::StaleGeneration { .. })
        ));

        let path = dir.join(SHARD_MAP_FILE);
        let mut image = std::fs::read(&path).unwrap();
        let mid = image.len() / 2;
        image[mid] ^= 0x08;
        std::fs::write(&path, &image).unwrap();
        assert_eq!(
            ShardMap::load(&dir, &map.generation, 2).unwrap_err(),
            ShardMapReject::BadChecksum
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resolve_maps_names_back_to_manifest_indices() {
        let store = seed_store("resolve", 6, 4);
        let map = ShardMap::plan(store.manifest(), 3);
        let mut all: Vec<usize> = Vec::new();
        for shard in 0..3 {
            let (serving, quarantined) = map.resolve(store.manifest(), shard).unwrap();
            assert!(quarantined.is_empty());
            all.extend(serving);
        }
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn fingerprint_tracks_assignment_changes() {
        let store = seed_store("fp", 8, 4);
        let two = ShardMap::plan(store.manifest(), 2);
        let four = ShardMap::plan(store.manifest(), 4);
        assert_ne!(two.fingerprint(0), four.fingerprint(0));
        assert_eq!(
            two.fingerprint(0),
            ShardMap::plan(store.manifest(), 2).fingerprint(0)
        );
        std::fs::remove_dir_all(store.dir()).unwrap();
    }
}
