//! Single-process cluster assembly: N shard listeners plus the router.
//!
//! The shard boundary is a socket from day one — every shard gets its own
//! listener and the router talks to them over HTTP exactly as it would
//! across machines — so moving a shard to another host is a config
//! change, not a rewrite. [`ServingCluster`] owns the whole stack:
//! plan-or-load the [`crate::ShardMap`], build each shard's engine, bind
//! the listeners, and put the scatter-gather router in front.

use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;

use sandwich_net::Server;
use sandwich_obs::Registry;
use sandwich_query::{generation_of, QueryConfig};
use sandwich_store::{BundleStore, Manifest};

use crate::map::ShardMap;
use crate::router::{RouterConfig, RouterService};
use crate::shard::{shard_index_file, ShardConfig, ShardService, SHARD_INDEX_PREFIX};

/// Tunables for one serving cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Directory of the sealed bundle store.
    pub store_dir: PathBuf,
    /// Number of shards to partition the store across.
    pub shards: usize,
    /// Index-build semantics, applied to every shard. `query.threads` is
    /// the *total* thread budget; it is split across shard builds.
    pub query: QueryConfig,
    /// Bind address for the router listener.
    pub router_addr: String,
    /// Bind address for each shard listener (port 0 for ephemeral).
    pub shard_addr: String,
    /// Router response-cache shards.
    pub cache_shards: usize,
    /// Entries per router cache shard.
    pub cache_per_shard: usize,
    /// Router admission-control bound.
    pub max_in_flight: usize,
}

impl ClusterConfig {
    /// Paper-default semantics: `shards` shards over `store_dir`, all
    /// listeners on ephemeral loopback ports.
    pub fn new(store_dir: impl Into<PathBuf>, shards: usize) -> Self {
        ClusterConfig {
            store_dir: store_dir.into(),
            shards: shards.max(1),
            query: QueryConfig::default(),
            router_addr: "127.0.0.1:0".to_string(),
            shard_addr: "127.0.0.1:0".to_string(),
            cache_shards: 8,
            cache_per_shard: 128,
            max_in_flight: 256,
        }
    }
}

/// A live sharded deployment: N shard servers, their services, and the
/// router server in front.
pub struct ServingCluster {
    config: ClusterConfig,
    services: Vec<ShardService>,
    shard_servers: Vec<Server>,
    router: RouterService,
    router_server: Server,
}

/// Remove per-shard index files that no current assignment references
/// (left behind by rebalances and shard-count changes). Best-effort: a
/// failure to remove is ignored, a stale file only costs disk.
fn gc_stale_shard_indexes(dir: &std::path::Path, map: &ShardMap) {
    let expected: std::collections::BTreeSet<String> = (0..map.shard_count())
        .map(|shard| shard_index_file(shard, map.shard_count(), &map.fingerprint(shard)))
        .collect();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        if name.starts_with(SHARD_INDEX_PREFIX) && !expected.contains(&name) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

impl ServingCluster {
    /// Open the store, load-or-plan the shard map, build every shard's
    /// engine, and serve: N shard listeners plus the router.
    pub async fn serve(config: ClusterConfig, registry: Registry) -> io::Result<ServingCluster> {
        let store = BundleStore::open(&config.store_dir)?;
        let map = ShardMap::load_or_plan(store.dir(), store.manifest(), config.shards)?;
        gc_stale_shard_indexes(store.dir(), &map);
        drop(store);

        // Split the thread budget across shard builds so an N-shard
        // cluster uses the same total parallelism as a single engine.
        let per_shard_threads = (config.query.threads / config.shards).max(1);

        let mut services = Vec::with_capacity(config.shards);
        let mut shard_servers = Vec::with_capacity(config.shards);
        let mut shard_addrs = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let mut shard_config = ShardConfig::new(&config.store_dir, shard);
            shard_config.query = config.query.clone();
            shard_config.query.threads = per_shard_threads;
            let service = ShardService::open(shard_config, &map, registry.clone())?;
            let server = Server::bind(&config.shard_addr, service.router()).await?;
            shard_addrs.push(server.local_addr());
            services.push(service);
            shard_servers.push(server);
        }

        let router = RouterService::new(
            shard_addrs,
            map.generation.clone(),
            RouterConfig {
                cache_shards: config.cache_shards,
                cache_per_shard: config.cache_per_shard,
                max_in_flight: config.max_in_flight,
            },
            registry.clone(),
        );
        let router_server = Server::bind(&config.router_addr, router.router()).await?;

        Ok(ServingCluster {
            config,
            services,
            shard_servers,
            router,
            router_server,
        })
    }

    /// Address of the public `/api/*` listener.
    pub fn router_addr(&self) -> SocketAddr {
        self.router_server.local_addr()
    }

    /// Addresses of the shard partial listeners, in shard order.
    pub fn shard_addrs(&self) -> Vec<SocketAddr> {
        self.shard_servers.iter().map(Server::local_addr).collect()
    }

    /// The shard services (for tests that drive installs directly).
    pub fn services(&self) -> &[ShardService] {
        &self.services
    }

    /// The generation the router is serving.
    pub fn generation(&self) -> String {
        self.router.generation()
    }

    /// Re-check the manifest; when its generation changed (a seal or a
    /// rebalance landed), re-plan the shard map, install the new slices
    /// on every shard, then move the router forward. Returns `true` when
    /// a new generation went live.
    ///
    /// Ordering matters: shards first, router last. A request racing the
    /// reload either sees the old generation everywhere (served from the
    /// old engines — shards keep them until the install swaps), or the
    /// router already moved and any shard still behind answers at the
    /// wrong generation, which the router converts to a retryable 503 —
    /// never a torn merge. If an install fails midway the router stays on
    /// the old generation and the failed shard flips its `/readyz`.
    pub fn reload(&self) -> io::Result<bool> {
        let manifest = Manifest::load(&self.config.store_dir)?;
        let generation = generation_of(&manifest);
        if generation == self.router.generation() {
            return Ok(false);
        }
        let map = ShardMap::load_or_plan(&self.config.store_dir, &manifest, self.config.shards)?;
        for service in &self.services {
            service.install(&map)?;
        }
        gc_stale_shard_indexes(&self.config.store_dir, &map);
        self.router.set_generation(generation);
        Ok(true)
    }

    /// Shut the whole cluster down: router first, then the shards.
    pub async fn shutdown(self) {
        self.router_server.shutdown().await;
        for server in self.shard_servers {
            server.shutdown().await;
        }
    }
}
