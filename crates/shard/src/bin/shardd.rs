//! `shardd` — the sharded analytics API daemon.
//!
//! Opens a sealed bundle store, partitions it across N shard engines per
//! the persisted shard map (planning one on first run), and serves the
//! same `/api/*` surface as `queryd` through a scatter-gather router.
//! Every shard gets its own listener; the router talks to them over HTTP,
//! so a multi-node deployment is a config change, not a rewrite.
//!
//! Environment:
//! - `SANDWICH_SHARD_STORE`   — store directory (default `collector.store`)
//! - `SANDWICH_SHARD_ADDR`    — router bind address (default `127.0.0.1:8080`)
//! - `SANDWICH_SHARDS`        — shard count (default 4)
//! - `SANDWICH_SHARD_THREADS` — total index-build workers, split across
//!   shards (default 4)
//! - `SANDWICH_SHARD_MAX_INFLIGHT` — router admission-control bound
//!   (default 256)
//! - `SANDWICH_SHARDD_ONCE=1` — exit right after startup (smoke tests)
//!
//! `GET /healthz` answers 200 while the router serves; `GET /readyz`
//! aggregates shard readiness and stays 200 while at least one shard is
//! ready (`degraded: true` when some are not).
//!
//! The daemon watches the manifest (cheap stat, no JSON parse) every few
//! seconds; when a seal or a rebalance lands it re-plans the shard map,
//! installs the new slices on every shard, and moves the router forward
//! atomically. The router's `/api/live` merges per-shard live pages so
//! the streaming tail is byte-identical to a single-engine `queryd`.

use std::time::Duration;

use sandwich_obs::Registry;
use sandwich_shard::{ClusterConfig, ServingCluster};
use sandwich_store::SealWatcher;

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

fn main() {
    let store_dir = env_or("SANDWICH_SHARD_STORE", "collector.store");
    let addr = env_or("SANDWICH_SHARD_ADDR", "127.0.0.1:8080");
    let shards: usize = env_or("SANDWICH_SHARDS", "4").parse().unwrap_or(4);
    let threads: usize = env_or("SANDWICH_SHARD_THREADS", "4").parse().unwrap_or(4);
    let max_in_flight: usize = env_or("SANDWICH_SHARD_MAX_INFLIGHT", "256")
        .parse()
        .unwrap_or(256);
    let once = env_or("SANDWICH_SHARDD_ONCE", "0") == "1";

    let mut config = ClusterConfig::new(&store_dir, shards);
    config.router_addr = addr.clone();
    config.query.threads = threads;
    config.max_in_flight = max_in_flight;
    let registry = Registry::new();

    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    runtime.block_on(async move {
        let cluster = match ServingCluster::serve(config, registry).await {
            Ok(cluster) => cluster,
            Err(e) => {
                eprintln!("shardd: cannot serve store at {store_dir}: {e}");
                std::process::exit(2);
            }
        };
        println!(
            "shardd: serving store {} on http://{} across {} shards (generation {})",
            store_dir,
            cluster.router_addr(),
            cluster.shard_addrs().len(),
            cluster.generation()
        );
        if once {
            cluster.shutdown().await;
            return;
        }
        let mut watcher = SealWatcher::new(std::path::Path::new(&store_dir));
        watcher.changed(); // arm at the already-served manifest
        loop {
            tokio::time::sleep(Duration::from_secs(3)).await;
            if !watcher.changed() {
                continue;
            }
            match cluster.reload() {
                Ok(true) => {
                    println!("shardd: reloaded, generation {}", cluster.generation())
                }
                Ok(false) => {}
                Err(e) => eprintln!("shardd: reload failed: {e}"),
            }
        }
    });
}
