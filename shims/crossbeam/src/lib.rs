//! Offline shim for `crossbeam`.
//!
//! The workspace declares crossbeam (the simulator once used scoped threads)
//! but no longer calls into it; this placeholder satisfies the dependency
//! graph offline. A minimal `scope` is provided in case a caller returns.

/// Spawn scoped threads, mirroring `crossbeam::scope`'s shape over
/// `std::thread::scope`.
pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
{
    Ok(std::thread::scope(f))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins() {
        let mut n = 0;
        super::scope(|s| {
            s.spawn(|| 1);
            n = 2;
        })
        .unwrap();
        assert_eq!(n, 2);
    }
}
