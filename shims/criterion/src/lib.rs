//! Offline shim for `criterion`: a small wall-clock benchmark harness.
//!
//! The real crate does statistical analysis, outlier rejection, and HTML
//! reports. This shim keeps the *interface* the benches are written against —
//! `Criterion`, `benchmark_group`, `bench_with_input`, `Throughput`,
//! `criterion_group!`/`criterion_main!` — and measures honestly but simply:
//! a warm-up/calibration pass sizes the per-sample iteration count, then
//! `sample_size` timed samples are reported as min/mean/max ns per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque a value to the optimiser so the benchmarked work is not elided.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Unit of work per iteration, used to derive a rate from the timing.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many items.
    Elements(u64),
}

/// A benchmark's display name.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id that is just the parameter's `Display` form (`.../100`).
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, p: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{p}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Benchmark driver; holds the timing budget configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Calibration time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.into().id, None, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            stats: None,
        };
        f(&mut bencher);
        match bencher.stats {
            Some(stats) => report(id, throughput, &stats),
            None => eprintln!("{id:<44} (no iter() call; nothing measured)"),
        }
    }
}

/// One benchmark's result: per-iteration times in nanoseconds.
struct Stats {
    min_ns: f64,
    mean_ns: f64,
    max_ns: f64,
}

fn report(id: &str, throughput: Option<Throughput>, stats: &Stats) {
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(
                "  thrpt: {}/s",
                human_bytes(n as f64 / (stats.mean_ns * 1e-9))
            )
        }
        Some(Throughput::Elements(n)) => {
            format!(
                "  thrpt: {} elem/s",
                human_count(n as f64 / (stats.mean_ns * 1e-9))
            )
        }
        None => String::new(),
    };
    eprintln!(
        "{:<44} time: [{} {} {}]{}",
        id,
        human_time(stats.min_ns),
        human_time(stats.mean_ns),
        human_time(stats.max_ns),
        rate
    );
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn human_bytes(bytes_per_s: f64) -> String {
    if bytes_per_s < 1024.0 {
        format!("{bytes_per_s:.1} B")
    } else if bytes_per_s < 1024.0 * 1024.0 {
        format!("{:.1} KiB", bytes_per_s / 1024.0)
    } else if bytes_per_s < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", bytes_per_s / (1024.0 * 1024.0))
    } else {
        format!("{:.1} GiB", bytes_per_s / (1024.0 * 1024.0 * 1024.0))
    }
}

fn human_count(per_s: f64) -> String {
    if per_s < 1_000.0 {
        format!("{per_s:.1}")
    } else if per_s < 1_000_000.0 {
        format!("{:.1}K", per_s / 1_000.0)
    } else {
        format!("{:.1}M", per_s / 1_000_000.0)
    }
}

/// Handed to each benchmark closure; `iter` does the measuring.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Time `f`, called in batches sized during warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up doubles as calibration: how many calls fit in the budget?
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        let sample_budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((sample_budget_ns / per_iter_ns) as u64).max(1);

        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        let mut total_ns = 0.0f64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let sample_ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            min_ns = min_ns.min(sample_ns);
            max_ns = max_ns.max(sample_ns);
            total_ns += sample_ns;
        }
        self.stats = Some(Stats {
            min_ns,
            mean_ns: total_ns / self.sample_size as f64,
            max_ns,
        });
    }
}

/// A set of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput used for rate reporting on subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, &mut f);
        self
    }

    /// Run a parameterised benchmark in this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let throughput = self.throughput;
        self.criterion
            .run_one(&full, throughput, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group. (No summary output in the shim.)
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        c.bench_function("shim/self_test", |b| b.iter(|| black_box(41u64) + 1));
        let mut group = c.benchmark_group("shim/group");
        group.throughput(Throughput::Elements(3));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_macro_compiles() {
        fn target(c: &mut Criterion) {
            c.bench_function("shim/macro_target", |b| b.iter(|| black_box(1)));
        }
        criterion_group! {
            name = benches;
            config = Criterion::default()
                .warm_up_time(Duration::from_millis(2))
                .measurement_time(Duration::from_millis(10))
                .sample_size(2);
            targets = target
        }
        benches();
    }
}
