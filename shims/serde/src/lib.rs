//! Offline shim for `serde`.
//!
//! The real crate's visitor architecture is replaced by a concrete value
//! tree: serializers accept a [`__private::Value`] and deserializers hand one
//! out. The trait *signatures* mirror real serde closely enough that the
//! workspace's hand-written impls (base58 pubkeys/signatures/hashes) and the
//! shimmed `serde_derive` output compile unchanged:
//!
//! - `Serialize::serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error>`
//! - `Deserialize::deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error>`
//! - `serde::de::Error::custom`, `serde::de::DeserializeOwned`
//!
//! Integers are carried as `i128`/`u128` so token deltas round-trip exactly;
//! object keys keep insertion order so JSON output is deterministic.

// Let the derive expansion's `::serde::` paths resolve inside this crate's
// own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization error handling, mirroring `serde::ser`.
pub mod ser {
    use std::fmt::Display;

    /// Errors a serializer can produce.
    pub trait Error: Sized + Display {
        /// Build an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization error handling, mirroring `serde::de`.
pub mod de {
    use std::fmt::Display;

    /// Errors a deserializer can produce.
    pub trait Error: Sized + Display {
        /// Build an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

/// A type that can render itself into a [`__private::Value`].
pub trait Serialize {
    /// Serialize `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for serialized values.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Accept a fully built value tree.
    fn serialize_value(self, value: __private::Value) -> Result<Self::Ok, Self::Error>;

    /// Serialize a string (the form hand-written impls use).
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(__private::Value::Str(v.to_owned()))
    }

    /// Serialize a bool.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(__private::Value::Bool(v))
    }

    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(__private::Value::UInt(v as u128))
    }

    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(__private::Value::Int(v as i128))
    }

    /// Serialize a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(__private::Value::Float(v))
    }

    /// Serialize a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(__private::Value::Null)
    }
}

/// A source of deserialized values.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Surrender the input as a value tree.
    fn take_value(self) -> Result<__private::Value, Self::Error>;
}

/// A type constructible from a [`__private::Value`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

pub mod __private {
    //! Value model and helpers used by the derive expansion. Public so
    //! generated code can reach it; not a stable API.

    use super::{de, Deserialize, Deserializer, Serialize, Serializer};
    use std::fmt;
    use std::marker::PhantomData;

    /// A JSON-shaped value tree. Object keys keep insertion order.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A signed integer (i128 keeps token deltas exact).
        Int(i128),
        /// An unsigned integer.
        UInt(u128),
        /// A float.
        Float(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in insertion order.
        Obj(Vec<(String, Value)>),
    }

    /// Serializer producing a [`Value`]; cannot actually fail.
    pub struct ValueSerializer;

    /// Error type for [`ValueSerializer`] — required by the trait bounds but
    /// never constructed by the value path itself.
    #[derive(Debug)]
    pub struct ValueError(pub String);

    impl fmt::Display for ValueError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl super::ser::Error for ValueError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            ValueError(msg.to_string())
        }
    }

    impl de::Error for ValueError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            ValueError(msg.to_string())
        }
    }

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = ValueError;

        fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
            Ok(value)
        }
    }

    /// Render any serializable value into a tree.
    pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
        value
            .serialize(ValueSerializer)
            .expect("value-tree serialization is infallible")
    }

    /// Deserializer over an owned [`Value`] with a caller-chosen error type.
    pub struct ValueDeserializer<E> {
        value: Value,
        _marker: PhantomData<fn() -> E>,
    }

    impl<E> ValueDeserializer<E> {
        /// Wrap a value.
        pub fn new(value: Value) -> Self {
            ValueDeserializer {
                value,
                _marker: PhantomData,
            }
        }
    }

    impl<'de, E: de::Error> Deserializer<'de> for ValueDeserializer<E> {
        type Error = E;

        fn take_value(self) -> Result<Value, E> {
            Ok(self.value)
        }
    }

    /// Build a `T` out of a value tree.
    pub fn from_value<T, E>(value: Value) -> Result<T, E>
    where
        T: de::DeserializeOwned,
        E: de::Error,
    {
        T::deserialize(ValueDeserializer::<E>::new(value))
    }

    /// Remove `key` from an object body and deserialize it. Missing keys
    /// deserialize from `Null`, which lets `Option` fields default to `None`
    /// (matching serde) while other types report the missing field.
    pub fn take_field<T, E>(obj: &mut Vec<(String, Value)>, key: &str) -> Result<T, E>
    where
        T: de::DeserializeOwned,
        E: de::Error,
    {
        match obj.iter().position(|(k, _)| k == key) {
            Some(idx) => from_value(obj.remove(idx).1),
            None => from_value(Value::Null)
                .map_err(|_: E| E::custom(format_args!("missing field `{key}`"))),
        }
    }

    impl Serialize for Value {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_value(self.clone())
        }
    }

    impl<'de> Deserialize<'de> for Value {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            deserializer.take_value()
        }
    }
}

use __private::Value;

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::UInt(*self as u128))
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Int(*self as i128))
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(*self as f64))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(serializer),
            None => serializer.serialize_value(Value::Null),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Arr(self.iter().map(__private::to_value).collect()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), __private::to_value(v)))
                .collect(),
        ))
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Sort for deterministic output; the real crate leaves hash order.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), __private::to_value(v)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        serializer.serialize_value(Value::Obj(entries))
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Arr(vec![$(__private::to_value(&self.$n)),+]))
            }
        }
    )*};
}
serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

fn type_error<E: de::Error>(expected: &str, got: &Value) -> E {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) | Value::UInt(_) => "integer",
        Value::Float(_) => "float",
        Value::Str(_) => "string",
        Value::Arr(_) => "array",
        Value::Obj(_) => "object",
    };
    E::custom(format_args!("expected {expected}, found {kind}"))
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let out = match &v {
                    Value::Int(n) => <$t>::try_from(*n).ok(),
                    Value::UInt(n) => <$t>::try_from(*n).ok(),
                    _ => None,
                };
                out.ok_or_else(|| type_error(stringify!($t), &v))
            }
        }
    )*};
}
deserialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(type_error("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Float(f) => Ok(f),
            Value::Int(n) => Ok(n as f64),
            Value::UInt(n) => Ok(n as f64),
            other => Err(type_error("float", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(type_error("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(<D::Error as de::Error>::custom(
                "expected single-character string",
            )),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(()),
            other => Err(type_error("null", &other)),
        }
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            other => __private::from_value(other).map(Some),
        }
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Arr(items) => items.into_iter().map(__private::from_value).collect(),
            other => Err(type_error("array", &other)),
        }
    }
}

impl<'de, T: de::DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(d)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| de::Error::custom(format!("expected array of length {N}, got {got}")))
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<'de, V: de::DeserializeOwned> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Obj(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, __private::from_value(v)?)))
                .collect(),
            other => Err(type_error("object", &other)),
        }
    }
}

impl<'de, V: de::DeserializeOwned> Deserialize<'de> for std::collections::HashMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Obj(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, __private::from_value(v)?)))
                .collect(),
            other => Err(type_error("object", &other)),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: de::DeserializeOwned),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                match d.take_value()? {
                    Value::Arr(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($({ let _ = $n; __private::from_value::<$t, __D::Error>(it.next().unwrap())? },)+))
                    }
                    other => Err(type_error("tuple array", &other)),
                }
            }
        }
    )*};
}
deserialize_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::__private::{from_value, to_value, Value, ValueError};
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_value(&42u64), Value::UInt(42));
        assert_eq!(to_value(&-7i64), Value::Int(-7));
        assert_eq!(to_value(&true), Value::Bool(true));
        assert_eq!(to_value("hi"), Value::Str("hi".into()));
        let n: u64 = from_value::<u64, ValueError>(Value::Int(9)).unwrap();
        assert_eq!(n, 9);
        let x: i128 = from_value::<i128, ValueError>(Value::Int(i128::MIN)).unwrap();
        assert_eq!(x, i128::MIN);
        assert!(from_value::<u8, ValueError>(Value::Int(-1)).is_err());
    }

    #[test]
    fn options_and_vecs() {
        assert_eq!(to_value(&Option::<u32>::None), Value::Null);
        assert_eq!(to_value(&Some(1u32)), Value::UInt(1));
        let v: Vec<Option<u8>> =
            from_value::<_, ValueError>(Value::Arr(vec![Value::Null, Value::UInt(3)])).unwrap();
        assert_eq!(v, vec![None, Some(3)]);
    }

    #[test]
    fn derive_struct_and_enum() {
        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        #[serde(rename_all = "camelCase")]
        struct Wire {
            tip_lamports: u64,
            note: Option<String>,
        }

        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        enum Kind {
            Plain,
            Tagged(u32),
            Shaped { count: u8 },
        }

        let w = Wire {
            tip_lamports: 5,
            note: None,
        };
        let v = to_value(&w);
        assert_eq!(
            v,
            Value::Obj(vec![
                ("tipLamports".into(), Value::UInt(5)),
                ("note".into(), Value::Null),
            ])
        );
        let back: Wire = from_value::<_, ValueError>(v).unwrap();
        assert_eq!(back, w);
        // Missing Option field defaults to None.
        let partial = Value::Obj(vec![("tipLamports".into(), Value::UInt(9))]);
        let back: Wire = from_value::<_, ValueError>(partial).unwrap();
        assert_eq!(
            back,
            Wire {
                tip_lamports: 9,
                note: None
            }
        );

        assert_eq!(to_value(&Kind::Plain), Value::Str("Plain".into()));
        let tagged = to_value(&Kind::Tagged(7));
        assert_eq!(tagged, Value::Obj(vec![("Tagged".into(), Value::UInt(7))]));
        let shaped = to_value(&Kind::Shaped { count: 2 });
        let back: Kind = from_value::<_, ValueError>(shaped).unwrap();
        assert_eq!(back, Kind::Shaped { count: 2 });
        let back: Kind = from_value::<_, ValueError>(tagged).unwrap();
        assert_eq!(back, Kind::Tagged(7));
        let back: Kind = from_value::<_, ValueError>(Value::Str("Plain".into())).unwrap();
        assert_eq!(back, Kind::Plain);
    }

    #[test]
    fn transparent_newtype() {
        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        #[serde(transparent)]
        struct Wrapper(u64);

        assert_eq!(to_value(&Wrapper(11)), Value::UInt(11));
        let w: Wrapper = from_value::<_, ValueError>(Value::UInt(11)).unwrap();
        assert_eq!(w, Wrapper(11));
    }
}
