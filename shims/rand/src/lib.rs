//! Offline shim for `rand` 0.8: the subset the simulator and key generation
//! use — `Rng::{gen, gen_range, gen_bool, fill}`, `SeedableRng::seed_from_u64`,
//! and a deterministic `StdRng`.
//!
//! The core generator is xoshiro256++ seeded through splitmix64, so
//! `StdRng::seed_from_u64(seed)` is deterministic across runs and platforms.
//! That is the property the measurement scenarios rely on (fixed-seed runs
//! reproduce the paper's figures); no attempt is made to match the real
//! crate's stream bit-for-bit.

use std::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// User-facing sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a type with a standard uniform distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fill a byte buffer with uniform bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore>(rng: &mut R) -> i128 {
        u128::sample(rng) as i128
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore>(rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type.
    type Output;
    /// Draw one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end - self.start) as u64;
                // Rejection sampling over the widest multiple of `span` to
                // avoid modulo bias.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return (self.start as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any seed
            // cannot produce four zero words, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let n = rng.gen_range(10usize..20);
            assert!((10..20).contains(&n));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_changes_buffer() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 32];
        rng.fill(&mut buf);
        assert_ne!(buf, [0u8; 32]);
    }
}
