//! Offline shim for `parking_lot`: the subset this workspace uses, as thin
//! wrappers over `std::sync`. The parking_lot API differs from std's in two
//! ways that matter here: guards are obtained without a `Result` (no lock
//! poisoning), and the constructors are `const`. Both are preserved; a
//! poisoned std lock (a thread panicked while holding it) is transparently
//! recovered, matching parking_lot's no-poisoning semantics.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock and return its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
