//! Offline shim for `tokio`: a small thread-backed async runtime.
//!
//! Design, in one paragraph: every task (the `block_on` caller and each
//! `spawn`) runs on its own OS thread with a private poll loop. The loop
//! polls the task's future with a real waker that unparks the thread; if the
//! future is pending it parks for at most 250µs and re-polls. Because of
//! that bounded park there is no reactor — I/O futures run over
//! `std::net` sockets in non-blocking mode and simply return `Pending` on
//! `WouldBlock`, relying on the timed re-poll. Cross-task events that can be
//! signalled precisely (task completion, watch-channel sends) wake the
//! registered waker immediately, so joins and shutdown propagate without
//! waiting out the park interval.
//!
//! Surface: `spawn`/`JoinHandle`, `task::JoinSet`, `sync::watch`,
//! `net::{TcpListener, TcpStream}` with `into_split`, buffered async I/O
//! traits, `time::sleep`, a 2-branch `select!`, `runtime::Builder`/`Runtime`,
//! and the `#[tokio::test]`/`#[tokio::main]` attribute re-exports. Exactly
//! what this workspace uses; nothing more.

use std::future::Future;

pub use tokio_macros::{main, test};

/// Runtime plumbing used by the attribute macros and `select!`. Public for
/// macro expansion; not a stable API.
pub mod macros_support {
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::task::{Context, Poll, Wake, Waker};
    use std::time::Duration;

    /// How long a task thread parks before re-polling a pending future.
    /// Bounds the latency of every I/O readiness check (there is no
    /// reactor), so it is kept small.
    pub(crate) const PARK_INTERVAL: Duration = Duration::from_micros(250);

    struct ThreadWaker {
        thread: std::thread::Thread,
        notified: AtomicBool,
    }

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.notified.store(true, Ordering::SeqCst);
            self.thread.unpark();
        }

        fn wake_by_ref(self: &Arc<Self>) {
            self.notified.store(true, Ordering::SeqCst);
            self.thread.unpark();
        }
    }

    /// Drive a future to completion on the current thread.
    pub fn block_on<F: Future>(fut: F) -> F::Output {
        let mut fut = std::pin::pin!(fut);
        let waker_state = Arc::new(ThreadWaker {
            thread: std::thread::current(),
            notified: AtomicBool::new(false),
        });
        let waker = Waker::from(waker_state.clone());
        let mut cx = Context::from_waker(&waker);
        loop {
            if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
                return v;
            }
            if !waker_state.notified.swap(false, Ordering::SeqCst) {
                std::thread::park_timeout(PARK_INTERVAL);
                waker_state.notified.store(false, Ordering::SeqCst);
            }
        }
    }

    /// Outcome of a 2-way select.
    pub enum Either2<A, B> {
        /// First branch completed.
        A(A),
        /// Second branch completed.
        B(B),
    }

    /// Future racing two futures, biased toward the first.
    pub struct Select2<F1, F2> {
        f1: F1,
        f2: F2,
    }

    /// Race `f1` against `f2`; the loser is dropped (cancelled).
    pub fn select2<F1: Future, F2: Future>(f1: F1, f2: F2) -> Select2<F1, F2> {
        Select2 { f1, f2 }
    }

    impl<F1: Future, F2: Future> Future for Select2<F1, F2> {
        type Output = Either2<F1::Output, F2::Output>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            // SAFETY: fields are pinned structurally; they are never moved
            // out of `self` after being pinned here.
            let this = unsafe { self.get_unchecked_mut() };
            if let Poll::Ready(v) = unsafe { Pin::new_unchecked(&mut this.f1) }.poll(cx) {
                return Poll::Ready(Either2::A(v));
            }
            if let Poll::Ready(v) = unsafe { Pin::new_unchecked(&mut this.f2) }.poll(cx) {
                return Poll::Ready(Either2::B(v));
            }
            Poll::Pending
        }
    }
}

/// Race two async operations, running the winning branch's body.
///
/// Supports the two-branch forms this workspace uses: block bodies without a
/// separating comma and expression bodies with one.
#[macro_export]
macro_rules! select {
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:expr $(,)?) => {
        match $crate::macros_support::select2($f1, $f2).await {
            $crate::macros_support::Either2::A($p1) => $b1,
            $crate::macros_support::Either2::B($p2) => $b2,
        }
    };
    ($p1:pat = $f1:expr => $b1:expr, $p2:pat = $f2:expr => $b2:expr $(,)?) => {
        match $crate::macros_support::select2($f1, $f2).await {
            $crate::macros_support::Either2::A($p1) => $b1,
            $crate::macros_support::Either2::B($p2) => $b2,
        }
    };
}

/// Spawn a future onto its own thread; returns a handle that can be awaited.
pub fn spawn<F>(fut: F) -> task::JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    task::spawn_inner(fut)
}

pub mod task {
    //! Task handles and collections.

    use super::macros_support::block_on;
    use std::fmt;
    use std::future::Future;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::pin::Pin;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    /// A spawned task failed (panicked).
    pub struct JoinError {
        msg: String,
    }

    impl fmt::Debug for JoinError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "JoinError({})", self.msg)
        }
    }

    impl fmt::Display for JoinError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "task failed: {}", self.msg)
        }
    }

    impl std::error::Error for JoinError {}

    struct TaskState<T> {
        result: Mutex<Option<Result<T, JoinError>>>,
        waker: Mutex<Option<Waker>>,
    }

    impl<T> TaskState<T> {
        /// Non-blocking completion check; takes the result if finished.
        fn try_take(&self) -> Option<Result<T, JoinError>> {
            self.result.lock().unwrap().take()
        }

        fn register(&self, waker: &Waker) {
            *self.waker.lock().unwrap() = Some(waker.clone());
        }
    }

    /// Handle to a spawned task; awaiting it yields the task's output.
    pub struct JoinHandle<T> {
        state: Arc<TaskState<T>>,
    }

    pub(crate) fn spawn_inner<F>(fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let state = Arc::new(TaskState {
            result: Mutex::new(None),
            waker: Mutex::new(None),
        });
        let task_state = state.clone();
        std::thread::Builder::new()
            .name("tokio-shim-task".into())
            .spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| block_on(fut)));
                let outcome = outcome.map_err(|payload| {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "panic".to_string());
                    JoinError { msg }
                });
                *task_state.result.lock().unwrap() = Some(outcome);
                if let Some(w) = task_state.waker.lock().unwrap().take() {
                    w.wake();
                }
            })
            .expect("spawn task thread");
        JoinHandle { state }
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            // Register before checking so a completion between the check and
            // the park still wakes us.
            self.state.register(cx.waker());
            match self.state.try_take() {
                Some(result) => Poll::Ready(result),
                None => Poll::Pending,
            }
        }
    }

    /// A dynamic collection of spawned tasks, reaped as they finish.
    pub struct JoinSet<T> {
        tasks: Vec<JoinHandle<T>>,
    }

    impl<T: Send + 'static> JoinSet<T> {
        /// An empty set.
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            JoinSet { tasks: Vec::new() }
        }

        /// Number of tasks not yet reaped.
        pub fn len(&self) -> usize {
            self.tasks.len()
        }

        /// Whether the set is empty.
        pub fn is_empty(&self) -> bool {
            self.tasks.is_empty()
        }

        /// Spawn a task into the set.
        pub fn spawn<F>(&mut self, fut: F)
        where
            F: Future<Output = T> + Send + 'static,
        {
            self.tasks.push(spawn_inner(fut));
        }

        /// Reap one finished task without waiting.
        pub fn try_join_next(&mut self) -> Option<Result<T, JoinError>> {
            for i in 0..self.tasks.len() {
                if let Some(result) = self.tasks[i].state.try_take() {
                    self.tasks.swap_remove(i);
                    return Some(result);
                }
            }
            None
        }

        /// Wait for the next task to finish; `None` when the set is empty.
        pub async fn join_next(&mut self) -> Option<Result<T, JoinError>> {
            std::future::poll_fn(|cx| {
                if self.tasks.is_empty() {
                    return Poll::Ready(None);
                }
                for t in &self.tasks {
                    t.state.register(cx.waker());
                }
                match self.try_join_next() {
                    Some(result) => Poll::Ready(Some(result)),
                    None => Poll::Pending,
                }
            })
            .await
        }
    }
}

pub mod sync {
    //! Synchronization primitives.

    pub mod watch {
        //! A single-value broadcast channel: receivers observe the latest
        //! value and can await changes.

        use std::fmt;
        use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
        use std::sync::{Arc, Mutex};
        use std::task::{Poll, Waker};

        struct Shared<T> {
            value: Mutex<T>,
            version: AtomicU64,
            senders: AtomicUsize,
            wakers: Mutex<Vec<Waker>>,
        }

        impl<T> Shared<T> {
            fn wake_all(&self) {
                for w in self.wakers.lock().unwrap().drain(..) {
                    w.wake();
                }
            }
        }

        /// Sending half.
        pub struct Sender<T> {
            shared: Arc<Shared<T>>,
        }

        /// Receiving half; tracks which version it has seen.
        pub struct Receiver<T> {
            shared: Arc<Shared<T>>,
            last_seen: u64,
        }

        /// All senders dropped before a new value was observed.
        #[derive(Debug)]
        pub struct RecvError;

        impl fmt::Display for RecvError {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("watch channel closed")
            }
        }

        /// All receivers dropped.
        #[derive(Debug)]
        pub struct SendError<T>(pub T);

        /// Create a channel holding `init`; receivers start having seen it.
        pub fn channel<T>(init: T) -> (Sender<T>, Receiver<T>) {
            let shared = Arc::new(Shared {
                value: Mutex::new(init),
                version: AtomicU64::new(0),
                senders: AtomicUsize::new(1),
                wakers: Mutex::new(Vec::new()),
            });
            (
                Sender {
                    shared: shared.clone(),
                },
                Receiver {
                    shared,
                    last_seen: 0,
                },
            )
        }

        impl<T> Sender<T> {
            /// Publish a new value, waking waiting receivers. The shim never
            /// reports closure (receiver side is not counted) — harmless for
            /// the workspace's fire-and-forget shutdown signalling.
            pub fn send(&self, value: T) -> Result<(), SendError<T>> {
                *self.shared.value.lock().unwrap() = value;
                self.shared.version.fetch_add(1, Ordering::SeqCst);
                self.shared.wake_all();
                Ok(())
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                self.shared.senders.fetch_sub(1, Ordering::SeqCst);
                self.shared.wake_all();
            }
        }

        impl<T> Clone for Receiver<T> {
            fn clone(&self) -> Self {
                Receiver {
                    shared: self.shared.clone(),
                    last_seen: self.last_seen,
                }
            }
        }

        impl<T: Clone> Receiver<T> {
            /// A copy of the latest value (marks it seen).
            pub fn borrow_and_update(&mut self) -> T {
                self.last_seen = self.shared.version.load(Ordering::SeqCst);
                self.shared.value.lock().unwrap().clone()
            }
        }

        impl<T> Receiver<T> {
            /// Wait until a value newer than the last seen one is published.
            pub async fn changed(&mut self) -> Result<(), RecvError> {
                std::future::poll_fn(|cx| {
                    let version = self.shared.version.load(Ordering::SeqCst);
                    if version != self.last_seen {
                        self.last_seen = version;
                        return Poll::Ready(Ok(()));
                    }
                    if self.shared.senders.load(Ordering::SeqCst) == 0 {
                        return Poll::Ready(Err(RecvError));
                    }
                    self.shared.wakers.lock().unwrap().push(cx.waker().clone());
                    Poll::Pending
                })
                .await
            }
        }
    }
}

pub mod time {
    //! Timers. Granularity is the runtime's park interval (~250µs).

    use std::future::Future;
    use std::task::Poll;
    use std::time::{Duration, Instant};

    /// Sleep for at least `duration`.
    pub async fn sleep(duration: Duration) {
        let deadline = Instant::now() + duration;
        std::future::poll_fn(|_cx| {
            if Instant::now() >= deadline {
                Poll::Ready(())
            } else {
                // No timer wheel: the task thread re-polls on its park
                // interval, which bounds oversleep to ~250µs.
                Poll::Pending
            }
        })
        .await
    }

    /// Error returned by [`timeout`] when the deadline elapses first.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Elapsed;

    impl std::fmt::Display for Elapsed {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "deadline has elapsed")
        }
    }

    impl std::error::Error for Elapsed {}

    /// Run `fut` for at most `duration`; the loser is dropped (cancelled).
    pub async fn timeout<F: Future>(duration: Duration, fut: F) -> Result<F::Output, Elapsed> {
        match crate::macros_support::select2(fut, sleep(duration)).await {
            crate::macros_support::Either2::A(v) => Ok(v),
            crate::macros_support::Either2::B(()) => Err(Elapsed),
        }
    }

    /// Errors from the `time` module (mirrors tokio's layout).
    pub mod error {
        pub use super::Elapsed;
    }
}

pub mod io {
    //! Async I/O traits over non-blocking `std` sockets.

    use std::io;
    use std::task::{Context, Poll};

    /// Byte-stream reads; `Pending` on `WouldBlock`.
    pub trait AsyncRead {
        /// Attempt to read into `buf`.
        fn poll_read(&mut self, cx: &mut Context<'_>, buf: &mut [u8]) -> Poll<io::Result<usize>>;
    }

    /// Byte-stream writes; `Pending` on `WouldBlock`.
    pub trait AsyncWrite {
        /// Attempt to write from `buf`.
        fn poll_write(&mut self, cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>>;
        /// Attempt to flush buffered data.
        fn poll_flush(&mut self, cx: &mut Context<'_>) -> Poll<io::Result<()>>;
    }

    /// Convenience read methods, mirroring tokio's extension trait.
    pub trait AsyncReadExt: AsyncRead {
        /// Read some bytes into `buf`; 0 means EOF.
        fn read(&mut self, buf: &mut [u8]) -> impl std::future::Future<Output = io::Result<usize>>
        where
            Self: Sized,
        {
            std::future::poll_fn(move |cx| self.poll_read(cx, buf))
        }

        /// Fill `buf` completely or fail with `UnexpectedEof`.
        fn read_exact(
            &mut self,
            buf: &mut [u8],
        ) -> impl std::future::Future<Output = io::Result<usize>>
        where
            Self: Sized,
        {
            async move {
                let mut filled = 0;
                while filled < buf.len() {
                    let n =
                        std::future::poll_fn(|cx| self.poll_read(cx, &mut buf[filled..])).await?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "early eof in read_exact",
                        ));
                    }
                    filled += n;
                }
                Ok(filled)
            }
        }

        /// Read until EOF, appending to `out`.
        fn read_to_end(
            &mut self,
            out: &mut Vec<u8>,
        ) -> impl std::future::Future<Output = io::Result<usize>>
        where
            Self: Sized,
        {
            async move {
                let mut total = 0;
                let mut chunk = [0u8; 4096];
                loop {
                    let n = std::future::poll_fn(|cx| self.poll_read(cx, &mut chunk)).await?;
                    if n == 0 {
                        return Ok(total);
                    }
                    out.extend_from_slice(&chunk[..n]);
                    total += n;
                }
            }
        }
    }

    impl<T: AsyncRead> AsyncReadExt for T {}

    /// Convenience write methods, mirroring tokio's extension trait.
    pub trait AsyncWriteExt: AsyncWrite {
        /// Write all of `buf`.
        fn write_all(&mut self, buf: &[u8]) -> impl std::future::Future<Output = io::Result<()>>
        where
            Self: Sized,
        {
            async move {
                let mut written = 0;
                while written < buf.len() {
                    let n = std::future::poll_fn(|cx| self.poll_write(cx, &buf[written..])).await?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "write returned 0 bytes",
                        ));
                    }
                    written += n;
                }
                Ok(())
            }
        }

        /// Flush the stream.
        fn flush(&mut self) -> impl std::future::Future<Output = io::Result<()>>
        where
            Self: Sized,
        {
            std::future::poll_fn(move |cx| self.poll_flush(cx))
        }
    }

    impl<T: AsyncWrite> AsyncWriteExt for T {}

    /// Buffered reader over an [`AsyncRead`].
    pub struct BufReader<R> {
        inner: R,
        buf: Vec<u8>,
        pos: usize,
    }

    impl<R: AsyncRead> BufReader<R> {
        /// Wrap `inner` with an 8 KiB buffer.
        pub fn new(inner: R) -> Self {
            BufReader {
                inner,
                buf: Vec::new(),
                pos: 0,
            }
        }

        fn buffered(&self) -> &[u8] {
            &self.buf[self.pos..]
        }

        /// Refill the internal buffer if empty; Ready(0) means EOF.
        fn poll_fill(&mut self, cx: &mut Context<'_>) -> Poll<io::Result<usize>> {
            if self.pos < self.buf.len() {
                return Poll::Ready(Ok(self.buf.len() - self.pos));
            }
            self.buf.resize(8192, 0);
            self.pos = 0;
            match self.inner.poll_read(cx, &mut self.buf) {
                Poll::Ready(Ok(n)) => {
                    self.buf.truncate(n);
                    Poll::Ready(Ok(n))
                }
                Poll::Ready(Err(e)) => {
                    self.buf.clear();
                    Poll::Ready(Err(e))
                }
                Poll::Pending => {
                    self.buf.clear();
                    Poll::Pending
                }
            }
        }
    }

    impl<R: AsyncRead> AsyncRead for BufReader<R> {
        fn poll_read(&mut self, cx: &mut Context<'_>, buf: &mut [u8]) -> Poll<io::Result<usize>> {
            match self.poll_fill(cx) {
                Poll::Ready(Ok(0)) => Poll::Ready(Ok(0)),
                Poll::Ready(Ok(_)) => {
                    let available = self.buffered();
                    let n = available.len().min(buf.len());
                    buf[..n].copy_from_slice(&available[..n]);
                    self.pos += n;
                    Poll::Ready(Ok(n))
                }
                Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
                Poll::Pending => Poll::Pending,
            }
        }
    }

    /// Line-oriented reads over a buffered reader.
    pub trait AsyncBufReadExt {
        /// Append one `\n`-terminated line (newline included) to `dst`;
        /// returns bytes read, 0 at EOF.
        fn read_line(
            &mut self,
            dst: &mut String,
        ) -> impl std::future::Future<Output = io::Result<usize>>;
    }

    impl<R: AsyncRead> AsyncBufReadExt for BufReader<R> {
        async fn read_line(&mut self, dst: &mut String) -> io::Result<usize> {
            {
                let mut collected = Vec::new();
                loop {
                    let available = std::future::poll_fn(|cx| self.poll_fill(cx)).await?;
                    if available == 0 {
                        break; // EOF
                    }
                    let buffered = self.buffered();
                    if let Some(idx) = buffered.iter().position(|&b| b == b'\n') {
                        collected.extend_from_slice(&buffered[..=idx]);
                        self.pos += idx + 1;
                        break;
                    }
                    let take = buffered.len();
                    collected.extend_from_slice(buffered);
                    self.pos += take;
                }
                let n = collected.len();
                let text = String::from_utf8(collected).map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        "stream did not contain valid UTF-8",
                    )
                })?;
                dst.push_str(&text);
                Ok(n)
            }
        }
    }
}

pub mod net {
    //! Non-blocking TCP over `std::net`.

    use super::io::{AsyncRead, AsyncWrite};
    use std::io::{self, Read, Write};
    use std::net::{SocketAddr, ToSocketAddrs};
    use std::sync::Arc;
    use std::task::{Context, Poll};

    fn nonblocking_io<T>(result: io::Result<T>) -> Poll<io::Result<T>> {
        match result {
            Ok(v) => Poll::Ready(Ok(v)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }

    /// A TCP listener accepting non-blocking streams.
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        /// Bind to `addr` (port 0 picks an ephemeral port).
        pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
            let inner = std::net::TcpListener::bind(addr)?;
            inner.set_nonblocking(true)?;
            Ok(TcpListener { inner })
        }

        /// The bound address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Wait for an inbound connection.
        pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            std::future::poll_fn(|_cx| {
                nonblocking_io(self.inner.accept()).map(|r| {
                    r.and_then(|(stream, peer)| {
                        stream.set_nonblocking(true)?;
                        Ok((TcpStream::new(stream), peer))
                    })
                })
            })
            .await
        }
    }

    /// A non-blocking TCP stream.
    pub struct TcpStream {
        inner: Arc<std::net::TcpStream>,
    }

    impl TcpStream {
        fn new(inner: std::net::TcpStream) -> Self {
            TcpStream {
                inner: Arc::new(inner),
            }
        }

        /// Connect to `addr`. The connect itself is synchronous (loopback
        /// peers in this workspace accept instantly); the resulting stream
        /// is non-blocking.
        pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
            let stream = std::net::TcpStream::connect(addr)?;
            stream.set_nonblocking(true)?;
            Ok(TcpStream::new(stream))
        }

        /// The peer address.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }

        /// Split into independently usable read and write halves.
        pub fn into_split(self) -> (tcp::OwnedReadHalf, tcp::OwnedWriteHalf) {
            (
                tcp::OwnedReadHalf {
                    inner: self.inner.clone(),
                },
                tcp::OwnedWriteHalf { inner: self.inner },
            )
        }
    }

    impl AsyncRead for TcpStream {
        fn poll_read(&mut self, _cx: &mut Context<'_>, buf: &mut [u8]) -> Poll<io::Result<usize>> {
            nonblocking_io((&*self.inner).read(buf))
        }
    }

    impl AsyncWrite for TcpStream {
        fn poll_write(&mut self, _cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>> {
            nonblocking_io((&*self.inner).write(buf))
        }

        fn poll_flush(&mut self, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
            nonblocking_io((&*self.inner).flush())
        }
    }

    pub mod tcp {
        //! Owned halves of a split [`super::TcpStream`].

        use super::*;

        /// Read half; shares the socket with the write half.
        pub struct OwnedReadHalf {
            pub(super) inner: Arc<std::net::TcpStream>,
        }

        /// Write half; the socket closes when both halves are dropped.
        pub struct OwnedWriteHalf {
            pub(super) inner: Arc<std::net::TcpStream>,
        }

        impl AsyncRead for OwnedReadHalf {
            fn poll_read(
                &mut self,
                _cx: &mut Context<'_>,
                buf: &mut [u8],
            ) -> Poll<io::Result<usize>> {
                nonblocking_io((&*self.inner).read(buf))
            }
        }

        impl AsyncWrite for OwnedWriteHalf {
            fn poll_write(&mut self, _cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>> {
                nonblocking_io((&*self.inner).write(buf))
            }

            fn poll_flush(&mut self, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
                nonblocking_io((&*self.inner).flush())
            }
        }
    }
}

pub mod runtime {
    //! Runtime construction. The shim has exactly one runtime behaviour —
    //! builders exist so call sites written against real tokio compile.

    use std::future::Future;
    use std::io;

    /// Builder mirroring `tokio::runtime::Builder`.
    pub struct Builder {
        _private: (),
    }

    impl Builder {
        /// Multi-thread flavor (the shim spawns a thread per task anyway).
        pub fn new_multi_thread() -> Builder {
            Builder { _private: () }
        }

        /// Current-thread flavor.
        pub fn new_current_thread() -> Builder {
            Builder { _private: () }
        }

        /// Accepted and ignored: the shim is always thread-per-task.
        pub fn worker_threads(&mut self, _n: usize) -> &mut Builder {
            self
        }

        /// Accepted and ignored: all drivers are always available.
        pub fn enable_all(&mut self) -> &mut Builder {
            self
        }

        /// Build a runtime handle.
        pub fn build(&mut self) -> io::Result<Runtime> {
            Ok(Runtime { _private: () })
        }
    }

    /// Handle that can drive futures to completion.
    pub struct Runtime {
        _private: (),
    }

    impl Runtime {
        /// A default runtime.
        pub fn new() -> io::Result<Runtime> {
            Builder::new_multi_thread().build()
        }

        /// Run `fut` to completion on the calling thread.
        pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
            super::macros_support::block_on(fut)
        }
    }
}

pub use task::JoinHandle;

/// Drive a future to completion on the current thread (outside any runtime).
pub fn block_in_place<F: Future>(fut: F) -> F::Output {
    macros_support::block_on(fut)
}

#[cfg(test)]
mod tests {
    use super::io::{AsyncBufReadExt, AsyncReadExt, AsyncWriteExt, BufReader};
    use super::macros_support::block_on;
    use super::sync::watch;
    use super::task::JoinSet;
    use std::time::{Duration, Instant};

    #[test]
    fn spawn_and_join() {
        let out = block_on(async {
            let h = super::spawn(async { 21 * 2 });
            h.await.unwrap()
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn join_error_on_panic() {
        let result = block_on(async { super::spawn(async { panic!("boom") }).await });
        assert!(result.is_err());
    }

    #[test]
    fn sleep_is_roughly_right() {
        let start = Instant::now();
        block_on(super::time::sleep(Duration::from_millis(20)));
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(20));
        assert!(elapsed < Duration::from_millis(500));
    }

    #[test]
    fn watch_signals_change() {
        block_on(async {
            let (tx, mut rx) = watch::channel(false);
            let h = super::spawn(async move {
                rx.changed().await.unwrap();
                true
            });
            super::time::sleep(Duration::from_millis(5)).await;
            tx.send(true).unwrap();
            assert!(h.await.unwrap());
        });
    }

    #[test]
    fn select_prefers_ready_branch() {
        block_on(async {
            let quick = async { 1u32 };
            let slow = async {
                super::time::sleep(Duration::from_secs(5)).await;
                2u32
            };
            let n = select! {
                v = quick => v,
                _ = slow => 0,
            };
            assert_eq!(n, 1);
        });
    }

    #[test]
    fn join_set_drains() {
        block_on(async {
            let mut set = JoinSet::new();
            for i in 0..8u64 {
                set.spawn(async move { i });
            }
            let mut total = 0;
            while let Some(v) = set.join_next().await {
                total += v.unwrap();
            }
            assert_eq!(total, 28);
        });
    }

    #[test]
    fn tcp_round_trip_with_bufreader() {
        block_on(async {
            let listener = super::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = super::spawn(async move {
                let (stream, _) = listener.accept().await.unwrap();
                let (read, mut write) = stream.into_split();
                let mut reader = BufReader::new(read);
                let mut line = String::new();
                reader.read_line(&mut line).await.unwrap();
                write.write_all(b"pong\nrest").await.unwrap();
                write.flush().await.unwrap();
                line
            });
            let mut client = super::net::TcpStream::connect(addr).await.unwrap();
            client.write_all(b"ping\n").await.unwrap();
            let (read, _write) = client.into_split();
            let mut reader = BufReader::new(read);
            let mut line = String::new();
            reader.read_line(&mut line).await.unwrap();
            assert_eq!(line, "pong\n");
            let mut rest = Vec::new();
            reader.read_to_end(&mut rest).await.unwrap();
            assert_eq!(rest, b"rest");
            assert_eq!(server.await.unwrap(), "ping\n");
        });
    }

    #[test]
    fn read_exact_across_chunks() {
        block_on(async {
            let listener = super::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let writer = super::spawn(async move {
                let (stream, _) = listener.accept().await.unwrap();
                let (_r, mut w) = stream.into_split();
                for chunk in [b"ab".as_slice(), b"cd", b"ef"] {
                    w.write_all(chunk).await.unwrap();
                    super::time::sleep(Duration::from_millis(2)).await;
                }
            });
            let client = super::net::TcpStream::connect(addr).await.unwrap();
            let (read, _w) = client.into_split();
            let mut reader = BufReader::new(read);
            let mut buf = [0u8; 6];
            reader.read_exact(&mut buf).await.unwrap();
            assert_eq!(&buf, b"abcdef");
            writer.await.unwrap();
        });
    }
}
