//! Offline shim for `bytes`: an immutable, cheaply clonable byte buffer.
//!
//! Only the surface the HTTP layer uses: construction from owned buffers,
//! `Deref`/slicing, length, and equality. Cloning is an `Arc` bump, which is
//! the property the real crate is used for (response bodies are cloned into
//! connection tasks).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The buffer as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copy out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::from(v.as_bytes())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::from(&v[..])
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.0.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_slicing() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        let c = b.clone();
        assert_eq!(c, b);
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from("ab")[..], b"ab");
    }
}
