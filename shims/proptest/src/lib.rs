//! Offline shim for `proptest`: deterministic random testing without
//! shrinking.
//!
//! The real crate explores failing inputs and shrinks them to minimal
//! counterexamples. This shim keeps the *interface* — `proptest!`,
//! `Strategy`, `any`, `prop::collection::vec`, `prop_assert*` — but runs a
//! fixed number of deterministically seeded cases per test (seed derived from
//! the test's module path and name, so failures reproduce across runs). No
//! shrinking: a failing case reports its inputs' case index instead.

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` iterations.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed `prop_assert*`; carried out of the case body as an `Err`.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::Range;

    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real crate there is no value tree: `sample` draws one
    /// concrete value and no shrinking happens afterwards.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    // The rand shim's `gen_range` tops out at 64-bit spans; sample 128-bit
    // ranges here so strategies like `-1_000_000i128..1_000_000i128` work.
    impl Strategy for Range<i128> {
        type Value = i128;

        fn sample(&self, rng: &mut StdRng) -> i128 {
            assert!(self.start < self.end, "empty i128 strategy range");
            let span = self.end.wrapping_sub(self.start) as u128;
            let zone = u128::MAX - (u128::MAX % span);
            loop {
                let v = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
                if v < zone {
                    return self.start.wrapping_add((v % span) as i128);
                }
            }
        }
    }

    impl Strategy for Range<u128> {
        type Value = u128;

        fn sample(&self, rng: &mut StdRng) -> u128 {
            assert!(self.start < self.end, "empty u128 strategy range");
            let span = self.end - self.start;
            let zone = u128::MAX - (u128::MAX % span);
            loop {
                let v = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
                if v < zone {
                    return self.start + v % span;
                }
            }
        }
    }

    /// Types with a canonical full-range strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        /// Draw one unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    arbitrary_via_standard!(
        u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f64, f32
    );

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut StdRng) -> [u8; N] {
            rng.gen()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Namespaced strategy constructors (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use std::ops::Range;

        use rand::rngs::StdRng;
        use rand::Rng;

        use crate::strategy::Strategy;

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = if self.size.start + 1 == self.size.end {
                    self.size.start
                } else {
                    rng.gen_range(self.size.clone())
                };
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// A `Vec` of `size`-range length with elements from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec-strategy size range");
            VecStrategy { elem, size }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use rand::rngs::StdRng;
        use rand::Rng;

        use crate::strategy::Strategy;

        /// The fair-coin strategy (`prop::bool::ANY`).
        pub struct Any;

        /// Fair coin flip.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn sample(&self, rng: &mut StdRng) -> bool {
                rng.gen()
            }
        }
    }
}

/// Runtime support for the `proptest!` expansion. Not part of the public API.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// FNV-1a over the test's full path: a stable per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declare deterministic property tests.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by
/// `fn name(arg in strategy, ...) { body }` items. Attributes on the items
/// (including `#[test]`) are re-emitted verbatim.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__err) = __outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __err
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body; failure fails the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 10u64..20u64, x in -5i128..5i128) {
            prop_assert!((10..20).contains(&n));
            prop_assert!((-5..5).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_size(data in prop::collection::vec(any::<u8>(), 0..200)) {
            prop_assert!(data.len() < 200);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (any::<bool>(), 1u64..100u64).prop_map(|(b, n)| if b { n } else { 0 }),
        ) {
            prop_assert!(pair < 100);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::__rt::seed_for("a::b"), crate::__rt::seed_for("a::b"));
        assert_ne!(crate::__rt::seed_for("a::b"), crate::__rt::seed_for("a::c"));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(n in 0u64..10u64) {
                prop_assert!(n > 1_000, "n was {}", n);
            }
        }
        always_fails();
    }
}
