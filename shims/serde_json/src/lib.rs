//! Offline shim for `serde_json`: compact JSON text over the serde shim's
//! value tree.
//!
//! Integers print from `i128`/`u128` (token deltas survive exactly), floats
//! print via `{:?}` (shortest round-trip, whole floats keep a `.0`), object
//! keys keep insertion order so output bytes are deterministic — the API
//! contract tests assert exact bodies like `{"ok":true}`.

use std::fmt;
use std::io;

pub use serde::__private::Value;

/// A JSON serialization or parse error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl From<Error> for io::Error {
    fn from(e: Error) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Serialize to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &serde::__private::to_value(value));
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize into a writer.
pub fn to_writer<W: io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let bytes = to_vec(value)?;
    writer
        .write_all(&bytes)
        .map_err(|e| Error::new(format!("write failed: {e}")))
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s.as_bytes()).parse()?;
    serde::__private::from_value(value)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let value = Parser::new(bytes).parse()?;
    serde::__private::from_value(value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                // Match serde_json's lossy behaviour for non-finite floats in
                // Value position.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn parse(mut self) -> Result<Value, Error> {
        let v = self.value(0)?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!(
                "trailing characters at byte {}",
                self.pos
            )));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion limit exceeded"));
        }
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                loop {
                    let key = self.string_after_ws()?;
                    self.expect(b':')?;
                    let val = self.value(depth + 1)?;
                    entries.push((key, val));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Obj(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            ))),
        }
    }

    fn string_after_ws(&mut self) -> Result<String, Error> {
        if self.peek()? != b'"' {
            return Err(Error::new(format!(
                "expected string key at byte {}",
                self.pos
            )));
        }
        self.string()
    }

    fn string(&mut self) -> Result<String, Error> {
        // Caller has peeked the opening quote.
        self.skip_ws();
        self.pos += 1;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    out.push(
                                        char::from_u32(combined)
                                            .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is required valid).
                    let start = self.pos;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i128>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u128>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[test]
    fn exact_bytes() {
        #[derive(Serialize)]
        struct Ok2 {
            ok: bool,
        }
        assert_eq!(to_vec(&Ok2 { ok: true }).unwrap(), b"{\"ok\":true}");
    }

    #[test]
    fn i128_round_trip() {
        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        struct Delta {
            delta: i128,
        }
        let d = Delta {
            delta: -170_141_183_460_469_231_731_687_303_715_884_105_727,
        };
        let s = to_string(&d).unwrap();
        assert!(s.contains("-170141183460469231731687303715884105727"));
        let back: Delta = from_str(&s).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn parse_nested_and_escapes() {
        let v: Vec<Vec<String>> = from_str(r#"[["a\n\"b"],[]]"#).unwrap();
        assert_eq!(v, vec![vec!["a\n\"b".to_string()], vec![]]);
        let f: f64 = from_str("2.5e2").unwrap();
        assert!((f - 250.0).abs() < 1e-9);
        let u: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(u, "é😀");
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<u64>("{]").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<u64>("-1").is_err());
    }
}
