//! Offline shim for `tokio-macros`: `#[tokio::test]` and `#[tokio::main]`.
//!
//! Both rewrites are purely syntactic: drop the `async` keyword and wrap the
//! original body in `tokio::macros_support::block_on(async move { ... })`.
//! Attribute arguments (`flavor`, `worker_threads`, `start_paused`) are
//! accepted and ignored — the shim runtime has a single behaviour.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// `#[tokio::test]`: emit a synchronous `#[test]` that drives the async body.
#[proc_macro_attribute]
pub fn test(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, true)
}

/// `#[tokio::main]`: emit a synchronous entry point driving the async body.
#[proc_macro_attribute]
pub fn main(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, false)
}

fn rewrite(item: TokenStream, add_test_attr: bool) -> TokenStream {
    let mut tokens: Vec<TokenTree> = item.into_iter().collect();

    // Drop the first top-level `async`.
    if let Some(idx) = tokens
        .iter()
        .position(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "async"))
    {
        tokens.remove(idx);
    }

    // The function body is the last top-level brace group.
    let body_idx = tokens
        .iter()
        .rposition(|t| matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace))
        .expect("tokio-macros shim: function body not found");
    let body = match &tokens[body_idx] {
        TokenTree::Group(g) => g.stream(),
        _ => unreachable!(),
    };

    // { ::tokio::macros_support::block_on(async move { <body> }) }
    let mut call_args = TokenStream::new();
    call_args.extend("async move".parse::<TokenStream>().unwrap());
    call_args.extend([TokenTree::Group(Group::new(Delimiter::Brace, body))]);
    let mut new_body = TokenStream::new();
    new_body.extend(
        "::tokio::macros_support::block_on"
            .parse::<TokenStream>()
            .unwrap(),
    );
    new_body.extend([TokenTree::Group(Group::new(
        Delimiter::Parenthesis,
        call_args,
    ))]);
    tokens[body_idx] = TokenTree::Group(Group::new(Delimiter::Brace, new_body));

    let mut out = TokenStream::new();
    if add_test_attr {
        out.extend("#[test]".parse::<TokenStream>().unwrap());
    }
    out.extend(tokens);
    out
}
