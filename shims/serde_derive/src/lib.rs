//! Offline shim for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls that route through the serde
//! shim's JSON-like value tree (`serde::__private::Value`) instead of the
//! real crate's visitor machinery. Written against `proc_macro` alone (no
//! syn/quote — those aren't available offline): the input is token-walked
//! into a small container model and code is emitted as formatted strings.
//!
//! Supported shapes — exactly what this workspace uses:
//! named-field structs, tuple/newtype structs, unit structs, and enums with
//! unit / newtype / tuple / struct variants (externally tagged). Container
//! attributes: `#[serde(rename_all = "camelCase" | "snake_case")]` and
//! `#[serde(transparent)]`. Generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Case {
    Keep,
    Camel,
    Snake,
}

struct Container {
    name: String,
    rename_all: Case,
    data: Data,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// `Serialize` derive: builds a `serde::__private::Value` and hands it to the
/// serializer.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    let body = match &c.data {
        Data::Struct(fields) => serialize_fields_expr(&c.name, fields, c.rename_all, "self."),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let tag = apply_case(&v.name, c.rename_all, true);
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{}::{} => ::serde::__private::Value::Str(::std::string::String::from(\"{}\")),\n",
                        c.name, v.name, tag
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{}::{}(__f0) => ::serde::__private::Value::Obj(::std::vec::Vec::from([(::std::string::String::from(\"{}\"), ::serde::__private::to_value(__f0))])),\n",
                        c.name, v.name, tag
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::__private::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{}::{}({}) => ::serde::__private::Value::Obj(::std::vec::Vec::from([(::std::string::String::from(\"{}\"), ::serde::__private::Value::Arr(::std::vec::Vec::from([{}])))])),\n",
                            c.name,
                            v.name,
                            binds.join(", "),
                            tag,
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let binds = names.join(", ");
                        let mut pushes = String::new();
                        for f in names {
                            // Serde's container-level rename_all renames
                            // variants, not the fields inside them.
                            pushes.push_str(&format!(
                                "__o.push((::std::string::String::from(\"{f}\"), ::serde::__private::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{}::{}{{ {} }} => {{ let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::__private::Value)> = ::std::vec::Vec::new(); {} ::serde::__private::Value::Obj(::std::vec::Vec::from([(::std::string::String::from(\"{}\"), ::serde::__private::Value::Obj(__o))])) }},\n",
                            c.name, v.name, binds, pushes, tag
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __s: __S) -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
         let __v: ::serde::__private::Value = {body};\n\
         ::serde::Serializer::serialize_value(__s, __v)\n\
         }}\n}}",
        name = c.name,
        body = body
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// `Deserialize` derive: takes the deserializer's value tree apart.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    let err = |msg: &str| {
        format!("return ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\"{msg}\"))")
    };
    let body = match &c.data {
        Data::Struct(Fields::Named(names)) => {
            let mut inits = String::new();
            for f in names {
                let key = apply_case(f, c.rename_all, false);
                inits.push_str(&format!(
                    "{f}: ::serde::__private::take_field::<_, __D::Error>(&mut __o, \"{key}\")?,\n"
                ));
            }
            format!(
                "let mut __o = match __v {{\n\
                 ::serde::__private::Value::Obj(o) => o,\n\
                 _ => {err_obj},\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})",
                err_obj = err(&format!("expected JSON object for struct {}", c.name)),
                name = c.name,
                inits = inits
            )
        }
        Data::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({}(::serde::__private::from_value::<_, __D::Error>(__v)?))",
            c.name
        ),
        Data::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|_| {
                    "::serde::__private::from_value::<_, __D::Error>(__it.next().unwrap())?"
                        .to_string()
                })
                .collect();
            format!(
                "let __a = match __v {{\n\
                 ::serde::__private::Value::Arr(a) => a,\n\
                 _ => {err_arr},\n\
                 }};\n\
                 if __a.len() != {n} {{ {err_len} }}\n\
                 let mut __it = __a.into_iter();\n\
                 ::std::result::Result::Ok({name}({elems}))",
                err_arr = err(&format!("expected JSON array for tuple struct {}", c.name)),
                n = n,
                err_len = err(&format!("wrong tuple length for {}", c.name)),
                name = c.name,
                elems = elems.join(", ")
            )
        }
        Data::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({})", c.name)
        }
        Data::Enum(variants) => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let tag = apply_case(&v.name, c.rename_all, true);
                match &v.fields {
                    Fields::Unit => str_arms.push_str(&format!(
                        "\"{tag}\" => ::std::result::Result::Ok({}::{}),\n",
                        c.name, v.name
                    )),
                    Fields::Tuple(1) => obj_arms.push_str(&format!(
                        "\"{tag}\" => ::std::result::Result::Ok({}::{}(::serde::__private::from_value::<_, __D::Error>(__inner)?)),\n",
                        c.name, v.name
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|_| "::serde::__private::from_value::<_, __D::Error>(__it.next().unwrap())?".to_string())
                            .collect();
                        obj_arms.push_str(&format!(
                            "\"{tag}\" => {{\n\
                             let __a = match __inner {{ ::serde::__private::Value::Arr(a) => a, _ => {err_arr} }};\n\
                             if __a.len() != {n} {{ {err_len} }}\n\
                             let mut __it = __a.into_iter();\n\
                             ::std::result::Result::Ok({name}::{vname}({elems}))\n\
                             }},\n",
                            tag = tag,
                            err_arr = err("expected JSON array for tuple variant"),
                            n = n,
                            err_len = err("wrong tuple variant length"),
                            name = c.name,
                            vname = v.name,
                            elems = elems.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let mut inits = String::new();
                        for f in names {
                            inits.push_str(&format!(
                                "{f}: ::serde::__private::take_field::<_, __D::Error>(&mut __vo, \"{f}\")?,\n"
                            ));
                        }
                        obj_arms.push_str(&format!(
                            "\"{tag}\" => {{\n\
                             let mut __vo = match __inner {{ ::serde::__private::Value::Obj(o) => o, _ => {err_obj} }};\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                             }},\n",
                            tag = tag,
                            err_obj = err("expected JSON object for struct variant"),
                            name = c.name,
                            vname = v.name,
                            inits = inits
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::__private::Value::Str(__s) => match __s.as_str() {{\n\
                 {str_arms}\
                 _ => {err_var},\n\
                 }},\n\
                 ::serde::__private::Value::Obj(mut __o) => {{\n\
                 if __o.len() != 1 {{ {err_shape} }}\n\
                 let (__tag, __inner) = __o.remove(0);\n\
                 match __tag.as_str() {{\n\
                 {obj_arms}\
                 _ => {err_var2},\n\
                 }}\n\
                 }},\n\
                 _ => {err_kind},\n\
                 }}",
                str_arms = str_arms,
                err_var = err(&format!("unknown variant for enum {}", c.name)),
                err_shape = err(&format!("expected single-key object for enum {}", c.name)),
                obj_arms = obj_arms,
                err_var2 = err(&format!("unknown variant for enum {}", c.name)),
                err_kind = err(&format!("expected string or object for enum {}", c.name)),
            )
        }
    };
    let out = format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) -> ::std::result::Result<Self, __D::Error> {{\n\
         let __v = ::serde::Deserializer::take_value(__d)?;\n\
         {body}\n\
         }}\n}}",
        name = c.name,
        body = body
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

/// Expression serializing a struct's own fields (prefix = `self.`).
fn serialize_fields_expr(name: &str, fields: &Fields, case: Case, prefix: &str) -> String {
    match fields {
        Fields::Named(names) => {
            let mut pushes = String::new();
            for f in names {
                let key = apply_case(f, case, false);
                pushes.push_str(&format!(
                    "__o.push((::std::string::String::from(\"{key}\"), ::serde::__private::to_value(&{prefix}{f})));\n"
                ));
            }
            format!(
                "{{ let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::__private::Value)> = ::std::vec::Vec::new(); {pushes} ::serde::__private::Value::Obj(__o) }}"
            )
        }
        // Newtype structs serialize transparently, matching serde's JSON
        // behaviour with or without #[serde(transparent)].
        Fields::Tuple(1) => format!("::serde::__private::to_value(&{prefix}0)"),
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::to_value(&{prefix}{i})"))
                .collect();
            format!(
                "::serde::__private::Value::Arr(::std::vec::Vec::from([{}]))",
                elems.join(", ")
            )
        }
        Fields::Unit => {
            let _ = name;
            "::serde::__private::Value::Null".to_string()
        }
    }
}

/// Rename a field (snake source) or variant (Pascal source) per `rename_all`.
fn apply_case(ident: &str, case: Case, is_variant: bool) -> String {
    match (case, is_variant) {
        (Case::Keep, _) => ident.to_string(),
        (Case::Camel, false) => snake_to_camel(ident),
        (Case::Camel, true) => {
            let mut s = ident.to_string();
            if let Some(first) = s.get(..1) {
                let lower = first.to_lowercase();
                s.replace_range(..1, &lower);
            }
            s
        }
        (Case::Snake, false) => ident.to_string(),
        (Case::Snake, true) => pascal_to_snake(ident),
    }
}

fn snake_to_camel(s: &str) -> String {
    let mut out = String::new();
    let mut upper_next = false;
    for ch in s.chars() {
        if ch == '_' {
            upper_next = true;
        } else if upper_next {
            out.extend(ch.to_uppercase());
            upper_next = false;
        } else {
            out.push(ch);
        }
    }
    out
}

fn pascal_to_snake(s: &str) -> String {
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if ch.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(ch.to_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Token-walking parser
// ---------------------------------------------------------------------------

fn parse_container(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut rename_all = Case::Keep;
    let mut i = 0;
    // Leading attributes (doc comments, #[serde(...)], #[repr(...)], ...).
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            if p.as_char() == '#' {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if let Some(case) = parse_serde_attr(g.stream()) {
                        rename_all = case;
                    }
                    i += 2;
                    continue;
                }
            }
        }
        break;
    }
    // Visibility (`pub`, `pub(crate)`, ...).
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type {name})");
    }
    let data = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => Data::Struct(Fields::Unit),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    };
    Container {
        name,
        rename_all,
        data,
    }
}

/// Extract `rename_all` from a `[serde(...)]` attribute group, if present.
fn parse_serde_attr(attr: TokenStream) -> Option<Case> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return None,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        if let TokenTree::Ident(id) = &inner[j] {
            match id.to_string().as_str() {
                "rename_all" => {
                    if let Some(TokenTree::Literal(lit)) = inner.get(j + 2) {
                        let raw = lit.to_string();
                        let value = raw.trim_matches('"');
                        return Some(match value {
                            "camelCase" => Case::Camel,
                            "snake_case" => Case::Snake,
                            other => {
                                panic!("serde_derive shim: unsupported rename_all = \"{other}\"")
                            }
                        });
                    }
                }
                // Transparent newtypes already serialize transparently.
                "transparent" => return None,
                other => panic!("serde_derive shim: unsupported serde attribute `{other}`"),
            }
        }
        j += 1;
    }
    None
}

/// Field names of a named-field body, in declaration order.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes / doc comments on the field.
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        // Visibility.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde_derive shim: expected field name, got {other}"),
        }
        i += 1; // name
        i += 1; // ':'
        i += skip_type(&tokens[i..]);
        // Trailing comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Number of fields in a tuple body (top-level comma count).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma would overcount; none of the workspace types have one
    // in tuple position, but guard anyway.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

/// Tokens consumed by a type up to (not including) a top-level comma.
fn skip_type(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    for (n, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return n,
                _ => {}
            }
        }
    }
    tokens.len()
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}
