//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, not just crafted scenarios.

use proptest::prelude::*;

use sandwich_core::{detect, Cdf, DetectorConfig};
use sandwich_dex::PoolState;
use sandwich_jito::{tip_ix, BlockEngine, Bundle};
use sandwich_ledger::{
    native_sol_mint, Bank, SolDelta, TokenDelta, TransactionBuilder, TransactionMeta,
};
use sandwich_types::{Keypair, LamportDelta, Lamports, Pubkey, Slot};

use std::sync::Arc;

// ---------- ledger / engine invariants ----------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lamports are conserved by any stream of transfer bundles: fees and
    /// tips move value, never create or destroy it.
    #[test]
    fn lamports_conserved_across_bundle_streams(
        transfers in prop::collection::vec((0u8..6, 0u8..6, 1u64..2_000_000_000u64, 1_000u64..5_000_000u64), 1..20)
    ) {
        let bank = Arc::new(Bank::new(Keypair::from_label("v").pubkey()));
        let agents: Vec<Keypair> = (0..6).map(|i| Keypair::from_label(&format!("agent-{i}"))).collect();
        for a in &agents {
            bank.airdrop(a.pubkey(), Lamports::from_sol(10.0));
        }
        let total_before = bank.total_lamports();

        let mut engine = BlockEngine::new(bank.clone());
        let mut nonce = 0u64;
        for (slot, (from, to, amount, tip)) in transfers.into_iter().enumerate() {
            nonce += 1;
            let tx = TransactionBuilder::new(agents[from as usize % 6])
                .nonce(nonce)
                .transfer(agents[to as usize % 6].pubkey(), Lamports(amount))
                .instruction(tip_ix(Lamports(tip), nonce))
                .build();
            if let Ok(bundle) = Bundle::new(vec![tx]) {
                engine.produce_slot(Slot(slot as u64), vec![bundle], vec![]);
            }
        }
        prop_assert_eq!(bank.total_lamports(), total_before);
    }

    /// The auction never lands two bundles containing the same transaction,
    /// and landed tips are declared tips.
    #[test]
    fn auction_excludes_conflicts(tips in prop::collection::vec(1_000u64..10_000_000u64, 2..8)) {
        let bank = Arc::new(Bank::new(Keypair::from_label("v").pubkey()));
        let shared_user = Keypair::from_label("shared");
        bank.airdrop(shared_user.pubkey(), Lamports::from_sol(100.0));
        let shared_tx = TransactionBuilder::new(shared_user).nonce(1).build();

        let mut bundles = Vec::new();
        for (i, tip) in tips.iter().enumerate() {
            let bidder = Keypair::from_label(&format!("bidder-{i}"));
            bank.airdrop(bidder.pubkey(), Lamports::from_sol(100.0));
            let tip_tx = TransactionBuilder::new(bidder)
                .nonce(1)
                .instruction(tip_ix(Lamports(*tip), i as u64))
                .build();
            bundles.push(Bundle::new(vec![tip_tx, shared_tx.clone()]).unwrap());
        }
        let mut engine = BlockEngine::new(bank);
        let result = engine.produce_slot(Slot(1), bundles, vec![]);
        // Exactly one bundle can own the shared transaction.
        prop_assert_eq!(result.bundles.len(), 1);
        let max_tip = tips.iter().max().copied().unwrap();
        prop_assert_eq!(result.bundles[0].tip, Lamports(max_tip));
    }
}

// ---------- AMM invariants under execution -------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pool reserves mirrored in program state always match the pool
    /// account's actual holdings after arbitrary swap sequences.
    #[test]
    fn pool_state_matches_holdings(
        swaps in prop::collection::vec((any::<bool>(), 1_000_000u64..2_000_000_000u64), 1..12)
    ) {
        let bank = Arc::new(Bank::new(Keypair::from_label("v").pubkey()));
        bank.register_program(Arc::new(sandwich_dex::AmmProgram));
        let lp = Keypair::from_label("lp");
        bank.airdrop(lp.pubkey(), Lamports::from_sol(2_000.0));
        let mint = Pubkey::derive("mint:PROP");
        let setup = TransactionBuilder::new(lp)
            .instruction(sandwich_ledger::Instruction::Token(
                sandwich_ledger::TokenInstruction::CreateMint { mint, decimals: 6, symbol: "P".into() },
            ))
            .instruction(sandwich_ledger::Instruction::Token(
                sandwich_ledger::TokenInstruction::MintTo { mint, to: lp.pubkey(), amount: u64::MAX / 8 },
            ))
            .instruction(sandwich_dex::create_pool_ix(
                native_sol_mint(), 1_000_000_000_000, mint, 5_000_000_000_000, 30,
            ))
            .build();
        prop_assert!(bank.execute_transaction(&setup).unwrap().success);

        let trader = Keypair::from_label("trader");
        bank.airdrop(trader.pubkey(), Lamports::from_sol(100.0));
        let fund = TransactionBuilder::new(lp)
            .nonce(2)
            .token_transfer(mint, trader.pubkey(), 1_000_000_000_000)
            .build();
        prop_assert!(bank.execute_transaction(&fund).unwrap().success);

        let sol = native_sol_mint();
        for (i, (buy, amount)) in swaps.into_iter().enumerate() {
            let (mi, mo) = if buy { (sol, mint) } else { (mint, sol) };
            let tx = TransactionBuilder::new(trader)
                .nonce(10 + i as u64)
                .instruction(sandwich_dex::swap_ix(mi, mo, amount, 0))
                .build();
            let _ = bank.execute_transaction(&tx);

            let state = sandwich_dex::pool_state(&bank, &sol, &mint).unwrap();
            let addr = state.address();
            let (sol_reserve, token_reserve) = if state.mint_x == sol {
                (state.reserve_x, state.reserve_y)
            } else {
                (state.reserve_y, state.reserve_x)
            };
            prop_assert_eq!(bank.lamports(&addr), Lamports(sol_reserve));
            prop_assert_eq!(bank.token_balance(&addr, &mint), token_reserve);
        }
    }

    /// Sandwich planning never violates the victim's guard, and gross
    /// profit is consistent with replaying the plan against the pool.
    #[test]
    fn plans_are_internally_consistent(
        reserve_sol in 10_000_000_000u64..1_000_000_000_000u64,
        reserve_tok in 10_000_000_000u64..1_000_000_000_000u64,
        victim_sol in 10_000_000u64..10_000_000_000u64,
        slippage in 10u32..2_000u32,
    ) {
        let pool = PoolState::new(native_sol_mint(), reserve_sol, Pubkey::derive("m"), reserve_tok, 30);
        let sol = native_sol_mint();
        if let Some(min_out) = sandwich_dex::victim_min_out(&pool, &sol, victim_sol, slippage) {
            if let Some(plan) = sandwich_dex::plan_optimal(&pool, &sol, victim_sol, min_out, u64::MAX / 4, 1) {
                prop_assert!(plan.victim_out >= min_out);
                prop_assert!(plan.gross_profit >= 1);
                let replay = sandwich_dex::sandwich::plan_with_front_run(
                    &pool, &sol, plan.front_run_in, victim_sol, min_out,
                ).expect("replayable");
                prop_assert_eq!(replay, plan);
            }
        }
    }
}

// ---------- detector robustness ------------------------------------------

fn arb_meta(label: &'static str) -> impl Strategy<Value = TransactionMeta> {
    (
        0u64..5u64,
        -2_000_000_000i64..2_000_000_000i64,
        -1_000_000i128..1_000_000i128,
        prop::bool::ANY,
    )
        .prop_map(move |(n, sol, tok, include_token)| {
            let kp = Keypair::from_label(label);
            TransactionMeta {
                tx_id: kp.sign(&n.to_le_bytes()),
                signer: kp.pubkey(),
                fee: Lamports(5_000),
                priority_fee: Lamports::ZERO,
                success: true,
                error: None,
                sol_deltas: vec![SolDelta {
                    account: kp.pubkey(),
                    delta: LamportDelta(sol),
                }],
                token_deltas: if include_token && tok != 0 {
                    vec![TokenDelta {
                        owner: kp.pubkey(),
                        mint: Pubkey::derive("mint:ARB"),
                        delta: tok,
                    }]
                } else {
                    vec![]
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The detector never panics on arbitrary meta triples, and any loss it
    /// reports is non-negative.
    #[test]
    fn detector_total_on_arbitrary_metas(
        a in arb_meta("alpha"),
        b in arb_meta("beta"),
        c in arb_meta("alpha"),
    ) {
        if let Some(finding) = detect(&DetectorConfig::default(), [&a, &b, &c]) {
            if let Some(loss) = finding.victim_loss_lamports {
                prop_assert!(loss < u64::MAX / 2);
            }
            prop_assert_ne!(finding.attacker, finding.victim);
        }
    }

    /// CDF quantiles are monotone in q and bounded by the sample range.
    #[test]
    fn cdf_quantiles_monotone(samples in prop::collection::vec(0.0f64..1e9, 1..200)) {
        let cdf = Cdf::from_samples(samples.clone());
        let lo = cdf.quantile(0.0).unwrap();
        let hi = cdf.quantile(1.0).unwrap();
        let mut prev = lo;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = cdf.quantile(q).unwrap();
            prop_assert!(v >= prev - 1e-9);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prev = v;
        }
    }
}
