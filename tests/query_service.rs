//! Concurrency test for the query service: many clients hammer one
//! service while a segment is sealed and the index reloads underneath
//! them. Every response must be consistent with exactly one manifest
//! generation — the body must match that generation's reference
//! evaluation byte-for-byte, and the `x-query-generation` header must
//! agree with the body. No torn reads, no 5xx, no panics.

use std::collections::HashMap;
use std::path::PathBuf;

use sandwich_net::{HttpClient, Server};
use sandwich_obs::Registry;
use sandwich_query::{QueryService, QueryServiceConfig};
use sandwich_store::{CollectedBundle, Manifest, StoreWriter};
use sandwich_types::{Hash, Keypair, Lamports, Slot};

fn bundle(seed: u64, slot: u64, tip: u64) -> CollectedBundle {
    let kp = Keypair::from_label("qsuite");
    CollectedBundle {
        bundle_id: Hash::digest(&seed.to_le_bytes()),
        slot: Slot(slot),
        timestamp_ms: slot * 400,
        tip: Lamports(tip),
        tx_ids: vec![kp.sign(&seed.to_le_bytes())],
    }
}

fn seed_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sw-suite-query-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer = StoreWriter::create(&dir).unwrap();
    for seg in 0..3u64 {
        let bundles: Vec<_> = (0..40)
            .map(|i| bundle(seg * 1_000 + i, seg * 200 + i * 2, 25_000 + i))
            .collect();
        writer
            .seal_segment(bundles, Vec::new(), Vec::new())
            .unwrap();
    }
    dir
}

/// The paths the clients hammer; all are cacheable endpoints with
/// generation-dependent bodies.
const PATHS: [&str; 4] = [
    "/api/summary",
    "/api/days",
    "/api/attackers?limit=10",
    "/api/sandwiches?from_slot=0&to_slot=1000000&limit=50",
];

/// Reference bodies for one generation, evaluated uncached from a fresh
/// service over the same directory.
fn reference_bodies(dir: &PathBuf) -> (String, HashMap<&'static str, Vec<u8>>) {
    let service = QueryService::open(QueryServiceConfig::new(dir), Registry::new()).unwrap();
    let engine = service.engine_snapshot();
    let generation = engine.generation().to_string();
    let bodies = PATHS
        .iter()
        .map(|&path| {
            let (endpoint, query) = match path {
                "/api/summary" => ("summary", &[][..]),
                "/api/days" => ("days", &[][..]),
                "/api/attackers?limit=10" => ("attackers", &[("limit", "10")][..]),
                _ => (
                    "sandwiches",
                    &[("from_slot", "0"), ("to_slot", "1000000"), ("limit", "50")][..],
                ),
            };
            let request = sandwich_net::Request {
                method: sandwich_net::Method::Get,
                path: path.split('?').next().unwrap().to_string(),
                query: query
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                params: HashMap::new(),
                headers: HashMap::new(),
                body: Default::default(),
            };
            let typed = sandwich_query::QueryRequest::parse(endpoint, &request).unwrap();
            (path, engine.evaluate(&typed).body)
        })
        .collect();
    (generation, bodies)
}

#[tokio::test]
async fn concurrent_clients_see_single_generation_responses() {
    let dir = seed_store("torn-reads");

    // Reference set for generation 1 (the initial three segments).
    let (gen1, gen1_bodies) = reference_bodies(&dir);

    let service = QueryService::open(QueryServiceConfig::new(&dir), Registry::new()).unwrap();
    assert_eq!(service.generation(), gen1);
    let server = Server::bind("127.0.0.1:0", service.router()).await.unwrap();
    let addr = server.local_addr();

    // N clients hammer the API while the store grows and the index
    // rebuilds. Each records (path, generation header, body).
    let clients = 6usize;
    let requests_per_client = 40usize;
    let mut set = tokio::task::JoinSet::new();
    for c in 0..clients {
        set.spawn(async move {
            let client = HttpClient::new(addr);
            let mut seen = Vec::with_capacity(requests_per_client);
            for i in 0..requests_per_client {
                let path = PATHS[(c + i) % PATHS.len()];
                let response = client.get(path).await.expect("request");
                assert_eq!(response.status, 200, "{path}");
                let generation = response
                    .header_value("x-query-generation")
                    .expect("generation header")
                    .to_string();
                seen.push((path, generation, response.body.to_vec()));
            }
            seen
        });
    }

    // Mid-flight: seal a fourth segment and hot-swap the index.
    tokio::time::sleep(std::time::Duration::from_millis(5)).await;
    let sealed = Manifest::load(&dir).unwrap().segments;
    let mut writer = StoreWriter::resume(&dir, &sealed).unwrap();
    let extra: Vec<_> = (0..40)
        .map(|i| bundle(9_000 + i, 800 + i, 90_000))
        .collect();
    writer.seal_segment(extra, Vec::new(), Vec::new()).unwrap();
    drop(writer);
    assert!(service.reload().unwrap(), "reload must go live");
    let gen2 = service.generation();
    assert_ne!(gen1, gen2);

    let mut observations = Vec::new();
    while let Some(joined) = set.join_next().await {
        observations.extend(joined.expect("client task"));
    }
    server.shutdown().await;

    // Reference set for generation 2 (the grown store).
    let (gen2_check, gen2_bodies) = reference_bodies(&dir);
    assert_eq!(gen2_check, gen2);

    // Every observed response is exactly one generation's reference body,
    // and the header always agrees with the body.
    let mut gen1_seen = 0usize;
    let mut gen2_seen = 0usize;
    for (path, generation, body) in &observations {
        let expected = if *generation == gen1 {
            gen1_seen += 1;
            &gen1_bodies[path]
        } else if *generation == gen2 {
            gen2_seen += 1;
            &gen2_bodies[path]
        } else {
            panic!("response for {path} carries unknown generation {generation}");
        };
        assert_eq!(
            body, expected,
            "torn read: {path} response does not match its generation {generation}"
        );
    }
    assert_eq!(gen1_seen + gen2_seen, clients * requests_per_client);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The reload itself is atomic from the caller's side too: a reload
/// returning `false` must leave the generation untouched.
#[tokio::test]
async fn reload_without_growth_is_invisible() {
    let dir = seed_store("stable");
    let service = QueryService::open(QueryServiceConfig::new(&dir), Registry::new()).unwrap();
    let before = service.generation();
    for _ in 0..3 {
        assert!(!service.reload().unwrap());
        assert_eq!(service.generation(), before);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Helper sanity: the reference evaluation really differs between
/// generations (otherwise the torn-read assertion above proves nothing).
#[test]
fn generations_produce_distinct_reference_bodies() {
    let dir = seed_store("distinct");
    let (gen1, bodies1) = reference_bodies(&dir);

    let sealed = Manifest::load(&dir).unwrap().segments;
    let mut writer = StoreWriter::resume(&dir, &sealed).unwrap();
    writer
        .seal_segment(
            (0..10)
                .map(|i| bundle(7_000 + i, 900 + i, 90_000))
                .collect(),
            Vec::new(),
            Vec::new(),
        )
        .unwrap();
    drop(writer);

    let (gen2, bodies2) = reference_bodies(&dir);
    assert_ne!(gen1, gen2);
    for path in PATHS {
        assert_ne!(
            bodies1[&path], bodies2[&path],
            "{path} must change when the store grows"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
