//! The segment store and parallel scan engine, end to end:
//!
//! * store-mode collection (bounded resident memory, segments sealed while
//!   polling) collects exactly what legacy in-memory mode collects;
//! * the parallel scan produces a byte-identical `AnalysisReport` at 1, 2,
//!   and 8 threads, and byte-identical to the legacy in-memory analysis;
//! * the streaming incremental scan (folded as segments sealed) equals the
//!   post-run batch scan;
//! * a mid-run checkpoint references the store by manifest, stays small,
//!   and resumes into a run identical to an uninterrupted one.

use std::io::BufReader;
use std::path::PathBuf;
use std::time::Duration;

use sandwich_core::{
    run_measurement_with, scan_store_observed, AnalysisConfig, Checkpoint, CollectorConfig,
    PipelineConfig, RunOptions, StoreOptions,
};
use sandwich_explorer::{ExplorerConfig, FaultPlanConfig};
use sandwich_net::RetryPolicy;
use sandwich_obs::Registry;
use sandwich_sim::{ScenarioConfig, Simulation};

fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        downtime_days: vec![],
        ..ScenarioConfig::tiny()
    }
}

fn pipeline(scenario: &ScenarioConfig, store: Option<StoreOptions>) -> PipelineConfig {
    PipelineConfig {
        explorer: ExplorerConfig {
            faults: FaultPlanConfig::uniform_503(0.2, 7),
            ..Default::default()
        },
        collector: CollectorConfig {
            page_limit: sandwich_core::scaled_page_limit(scenario, 1),
            detail_batch: 100,
            retry: RetryPolicy {
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(10),
                ..Default::default()
            },
            ..Default::default()
        },
        store,
        ..Default::default()
    }
}

fn store_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store-scan-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn store_scan_matches_legacy_and_is_thread_invariant() {
    let scenario = scenario();
    let days = scenario.days;
    let cfg = AnalysisConfig::paper_defaults(days);

    // Reference: the legacy in-memory run on the same seed.
    let mut sim_legacy = Simulation::new(scenario.clone());
    let legacy = run_measurement_with(
        &mut sim_legacy,
        pipeline(&scenario, None),
        RunOptions::default(),
    )
    .await
    .unwrap();
    let legacy_report = serde_json::to_string(&legacy.analyze(&cfg)).unwrap();

    // Store mode with streaming, small segments so many seal mid-run.
    let dir = store_dir("matches");
    let mut sim_store = Simulation::new(scenario.clone());
    let run = run_measurement_with(
        &mut sim_store,
        pipeline(
            &scenario,
            Some(StoreOptions {
                dir: dir.clone(),
                segment_bundles: 100,
                streaming: true,
            }),
        ),
        RunOptions::default(),
    )
    .await
    .unwrap();

    // Collection is unchanged by flushing: same totals as the legacy run.
    assert_eq!(run.dataset.len(), legacy.dataset.len());
    assert_eq!(run.dataset.detail_count(), legacy.dataset.detail_count());
    assert_eq!(run.dataset.polls().len(), legacy.dataset.polls().len());
    // ...but resident memory is drained: everything sealed to disk.
    assert!(run.dataset.bundles().is_empty(), "final flush left residue");
    assert!(run.dataset.fully_spilled());

    let store = run.store.as_ref().expect("store mode returns the store");
    assert!(
        store.segments().len() >= 3,
        "expected several segments, got {}",
        store.segments().len()
    );
    assert_eq!(
        store.manifest().total_bundles(),
        run.dataset.len() as u64,
        "every collected bundle is in exactly one sealed segment"
    );
    assert_eq!(
        run.collector_stats.segments_sealed,
        store.segments().len() as u64
    );
    assert!(run.collector_stats.store_bytes_written > 0);

    // The scan is byte-identical across thread counts and equal to legacy.
    let base = serde_json::to_string(&run.try_analyze(&cfg, 1).unwrap()).unwrap();
    for threads in [2, 8] {
        let r = serde_json::to_string(&run.try_analyze(&cfg, threads).unwrap()).unwrap();
        assert_eq!(base, r, "report diverged at {threads} threads");
    }
    assert_eq!(
        base, legacy_report,
        "store scan diverged from the legacy in-memory analysis"
    );

    // The zero-copy columnar scan (the default path above) is byte-identical
    // to a forced record-by-record materializing scan of the same store.
    let materialized = serde_json::to_string(
        &sandwich_core::scan_store_materializing(store, &run.clock, &cfg, 2).unwrap(),
    )
    .unwrap();
    assert_eq!(
        base, materialized,
        "zero-copy scan diverged from the materializing scan"
    );

    // The streaming report (folded segment by segment as each sealed)
    // equals the batch scan.
    let streaming = run.streaming_report.as_ref().expect("streaming was on");
    assert_eq!(serde_json::to_string(streaming).unwrap(), base);

    // Store/scan metrics reached the shared registry.
    let m = &run.metrics;
    assert_eq!(
        m.counter(sandwich_obs::names::STORE_SEGMENTS_SEALED),
        Some(store.segments().len() as u64)
    );
    assert_eq!(
        m.counter(sandwich_obs::names::STORE_BYTES_WRITTEN),
        Some(run.collector_stats.store_bytes_written)
    );
    assert_eq!(
        m.counter(sandwich_obs::names::SCAN_PARTIALS_EMITTED),
        Some(store.segments().len() as u64)
    );

    // A standalone observed scan records the scan.* metrics too.
    let registry = Registry::new();
    let _ = scan_store_observed(store, &run.clock, &cfg, 4, Some(&registry)).unwrap();
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter(sandwich_obs::names::SCAN_SEGMENTS_SCANNED),
        Some(store.segments().len() as u64)
    );
    assert!(
        snap.histogram(sandwich_obs::names::SCAN_WORKER_BUSY_SECONDS)
            .unwrap()
            .count
            > 0
    );

    // The binary store is dramatically smaller than the JSONL archive.
    // The v2 columnar section spends ~11% of segment size buying the
    // zero-copy fast path, so the bound is 2.5x rather than the 3.1x the
    // pure row encoding measured.
    let mut jsonl = Vec::new();
    legacy.dataset.write_jsonl(&mut jsonl).unwrap();
    let store_bytes = store.manifest().total_bytes();
    assert!(
        store_bytes * 5 <= jsonl.len() as u64 * 2,
        "binary store ({store_bytes} B) is not ≥2.5x smaller than JSONL ({} B)",
        jsonl.len()
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn store_checkpoint_resumes_from_manifest() {
    let scenario = scenario();
    let days = scenario.days;
    let cfg = AnalysisConfig::paper_defaults(days);
    let options = |dir: &PathBuf| StoreOptions {
        dir: dir.clone(),
        segment_bundles: 100,
        streaming: false,
    };

    // Reference: an uninterrupted store-mode run.
    let dir_full = store_dir("full");
    let mut sim_full = Simulation::new(scenario.clone());
    let full = run_measurement_with(
        &mut sim_full,
        pipeline(&scenario, Some(options(&dir_full))),
        RunOptions::default(),
    )
    .await
    .unwrap();
    let full_report = serde_json::to_string(&full.try_analyze(&cfg, 2).unwrap()).unwrap();

    // The same run killed mid-flight, after several segments sealed.
    let dir = store_dir("resume");
    let mut sim1 = Simulation::new(scenario.clone());
    let halted = run_measurement_with(
        &mut sim1,
        pipeline(&scenario, Some(options(&dir))),
        RunOptions {
            halt_at_tick: Some(70),
            resume: None,
        },
    )
    .await
    .unwrap();
    assert!(halted.halted);
    let sealed_at_halt = halted.store.as_ref().unwrap().segments().len();
    assert!(sealed_at_halt >= 1, "no segment sealed before the halt");
    let halted_sums: Vec<String> = halted
        .store
        .as_ref()
        .unwrap()
        .segments()
        .iter()
        .map(|m| m.checksum.clone())
        .collect();
    let total_at_halt = halted.dataset.len();
    let resident_at_halt = halted.dataset.bundles().len();
    assert!(
        resident_at_halt < total_at_halt,
        "nothing was drained out of memory before the halt"
    );

    // Checkpoint through the wire format: the store rides as a manifest
    // reference; sealed bundles are NOT re-serialized into the checkpoint.
    let mut buf = Vec::new();
    halted.into_checkpoint().write(&mut buf).unwrap();
    let cp = Checkpoint::read(BufReader::new(&buf[..])).unwrap();
    let cp_store = cp.store.as_ref().expect("checkpoint carries the store");
    assert_eq!(cp_store.segments.len(), sealed_at_halt);
    assert_eq!(cp.dataset.bundles().len(), resident_at_halt);
    assert_eq!(cp.dataset.len(), total_at_halt, "drained ids still counted");

    // Segment files referenced by the checkpoint exist on disk, sealed.
    for meta in &cp_store.segments {
        let path = dir.join(&meta.file);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), meta.bytes);
    }

    // Resume against a fresh simulation of the same seed. The resumed
    // writer picks up from the manifest; no sealed segment is decoded.
    let mut sim2 = Simulation::new(scenario.clone());
    let resumed = run_measurement_with(
        &mut sim2,
        pipeline(&scenario, Some(options(&dir))),
        RunOptions {
            halt_at_tick: None,
            resume: Some(cp),
        },
    )
    .await
    .unwrap();
    assert!(!resumed.halted);

    // The checkpointed segments are a strict prefix of the final manifest.
    let resumed_store = resumed.store.as_ref().unwrap();
    let prefix: Vec<String> = resumed_store.segments()[..sealed_at_halt]
        .iter()
        .map(|m| m.checksum.clone())
        .collect();
    assert_eq!(prefix, halted_sums);
    assert!(resumed_store.segments().len() > sealed_at_halt);

    // No loss, no duplication: the resumed run's analysis is byte-identical
    // to the uninterrupted run's.
    assert_eq!(resumed.dataset.len(), full.dataset.len());
    let resumed_report = serde_json::to_string(&resumed.try_analyze(&cfg, 2).unwrap()).unwrap();
    assert_eq!(resumed_report, full_report);

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&dir_full).unwrap();
}
