//! Property tests for the incremental index fold: folding **any
//! partition** of a store's segments, in **any order**, grouped **any
//! way**, must produce an index byte-identical to the from-scratch
//! build. This is the invariant the live-tail reload path rests on — a
//! `queryd` that only ever folds manifest deltas serves exactly the
//! bytes a full rebuild would, so `/api/live` freshness costs nothing in
//! correctness. The battery covers mixed v1/v2 segments and quarantined
//! segments arriving in the delta, mirroring `tests/shard_props.rs` for
//! the merge layer.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use sandwich_query::{
    build_index, build_index_subset, first_ref_after_cursor, fold_indexes, generation_of,
    live_minutes, window_minutes, QueryConfig, SandwichRef,
};
use sandwich_store::segment::{encode_segment, encode_segment_v1, write_segment_file};
use sandwich_store::{BundleStore, CollectedBundle, Manifest, QuarantinedSegment, SegmentMeta};
use sandwich_types::{Hash, Keypair, Lamports, Slot};

fn bundle(seed: u64, slot: u64, tip: u64) -> CollectedBundle {
    let kp = Keypair::from_label("livefold");
    CollectedBundle {
        bundle_id: Hash::digest(&seed.to_le_bytes()),
        slot: Slot(slot),
        timestamp_ms: slot * 400,
        tip: Lamports(tip),
        tx_ids: vec![kp.sign(&seed.to_le_bytes())],
    }
}

/// Unique scratch directory per call, so parallel proptest cases never
/// collide.
fn scratch() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("live-fold-props-{}-{n}", std::process::id()))
}

/// Deterministic pseudo-shuffle: a permutation of `0..n` from a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.swap(i, (state >> 33) as usize % (i + 1));
    }
    order
}

/// Write a store whose segments follow `specs`: each entry is
/// `(v1, bundles, quarantine)` — encoding version, bundle count, and
/// whether the segment lands on the quarantine list instead of serving.
/// Returns the directory; remove it when done.
fn seed_store(specs: &[(bool, u64, bool)]) -> PathBuf {
    let dir = scratch();
    std::fs::create_dir_all(&dir).unwrap();
    let mut manifest = Manifest::new();
    let mut quarantined = Vec::new();
    for (i, &(v1, bundles, quarantine)) in specs.iter().enumerate() {
        let data = sandwich_store::codec::SegmentData {
            bundles: (0..bundles)
                .map(|b| bundle(i as u64 * 1_000 + b, i as u64 * 500 + b * 3, 30_000 + b))
                .collect(),
            details: Vec::new(),
            polls: Vec::new(),
        };
        let (image, footer) = if v1 {
            encode_segment_v1(&data)
        } else {
            encode_segment(&data)
        };
        let file = format!("seg-{i:05}.seg");
        write_segment_file(&dir.join(&file), &image).unwrap();
        let meta = SegmentMeta {
            file,
            bundles: data.bundles.len() as u64,
            details: 0,
            polls: 0,
            min_slot: footer.min_slot,
            max_slot: footer.max_slot,
            bytes: image.len() as u64,
            checksum: format!("{:016x}", footer.checksum),
        };
        if quarantine {
            quarantined.push(QuarantinedSegment {
                meta,
                reason: "body_corrupt".to_string(),
            });
        } else {
            manifest.segments.push(meta);
        }
    }
    if !quarantined.is_empty() {
        manifest.quarantined = Some(quarantined);
    }
    manifest.save(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: per-part subset builds folded in any
    /// order, grouped any way (associativity), reproduce the full build
    /// byte-for-byte — including coverage, totals, leaderboards, day
    /// labels, and the covered-file lists the next fold will key on.
    #[test]
    fn folding_any_partition_in_any_order_matches_the_full_build(
        specs in prop::collection::vec((any::<bool>(), 1u64..6, any::<bool>()), 1..6),
        assignment in prop::collection::vec(0u8..4, 1..8),
        parts_n in 1usize..5,
        seed in any::<u64>(),
        split in 0usize..5,
    ) {
        let dir = seed_store(&specs);
        let store = BundleStore::open(&dir).unwrap();
        let config = QueryConfig { threads: 2, ..QueryConfig::default() };
        let generation = generation_of(store.manifest());
        let full = serde_json::to_string(&build_index(&store, &config).unwrap()).unwrap();

        // Partition serving and quarantined segment indexes across parts.
        let mut serving: Vec<Vec<usize>> = vec![Vec::new(); parts_n];
        for i in 0..store.segments().len() {
            serving[assignment[i % assignment.len()] as usize % parts_n].push(i);
        }
        let mut quarantined: Vec<Vec<usize>> = vec![Vec::new(); parts_n];
        for q in 0..store.quarantined().len() {
            quarantined[assignment[(q + 1) % assignment.len()] as usize % parts_n].push(q);
        }

        let parts: Vec<_> = (0..parts_n)
            .map(|p| build_index_subset(&store, &config, &serving[p], &quarantined[p]).unwrap())
            .collect();

        // Permutation invariance: any arrival order folds identically.
        let order = permutation(parts_n, seed);
        let shuffled: Vec<_> = order.iter().map(|&i| parts[i].clone()).collect();
        let folded = fold_indexes(&generation, shuffled, &config);
        prop_assert_eq!(&serde_json::to_string(&folded).unwrap(), &full);

        // Associativity: fold a prefix first, then fold the fold with
        // the rest — the exact shape of repeated incremental reloads.
        let cut = split.min(parts_n).max(1);
        let head = fold_indexes(&generation, parts[..cut].to_vec(), &config);
        let mut grouped = vec![head];
        grouped.extend(parts[cut..].to_vec());
        let refolded = fold_indexes(&generation, grouped, &config);
        prop_assert_eq!(&serde_json::to_string(&refolded).unwrap(), &full);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Walking `/api/live` pages over a folded index with any page size
    /// visits every sandwich exactly once, in `(slot, bundle_id)` order
    /// — the cursor never skips and never repeats.
    #[test]
    fn live_cursor_pages_reconstruct_the_refs_exactly(
        specs in prop::collection::vec((any::<bool>(), 1u64..6), 1..5),
        limit in 1usize..7,
    ) {
        let specs: Vec<(bool, u64, bool)> =
            specs.into_iter().map(|(v1, n)| (v1, n, false)).collect();
        let dir = seed_store(&specs);
        let store = BundleStore::open(&dir).unwrap();
        let config = QueryConfig { threads: 2, ..QueryConfig::default() };
        let index = build_index(&store, &config).unwrap();

        let mut cursor = (0u64, Hash([0u8; 32]));
        let mut walked: Vec<SandwichRef> = Vec::new();
        loop {
            let start = first_ref_after_cursor(&index.refs, cursor.0, &cursor.1);
            let page: Vec<SandwichRef> =
                index.refs[start..].iter().take(limit).cloned().collect();
            if page.is_empty() {
                break;
            }
            let last = page.last().unwrap();
            cursor = (last.slot, last.bundle_id);
            walked.extend(page);
        }
        prop_assert_eq!(&walked, &index.refs);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The shard-merge property for rolling minutes: per-part windows at
    /// per-part tips, summed and re-windowed at the global tip, equal the
    /// single-index window — each part's window is a superset of its
    /// contribution to the global one.
    #[test]
    fn minute_windows_rewindow_to_the_global_window(
        specs in prop::collection::vec((any::<bool>(), 1u64..6), 1..5),
        assignment in prop::collection::vec(0u8..4, 1..8),
        parts_n in 1usize..5,
    ) {
        let specs: Vec<(bool, u64, bool)> =
            specs.into_iter().map(|(v1, n)| (v1, n, false)).collect();
        let dir = seed_store(&specs);
        let store = BundleStore::open(&dir).unwrap();
        let config = QueryConfig { threads: 2, ..QueryConfig::default() };
        let generation = generation_of(store.manifest());

        let mut serving: Vec<Vec<usize>> = vec![Vec::new(); parts_n];
        for i in 0..store.segments().len() {
            serving[assignment[i % assignment.len()] as usize % parts_n].push(i);
        }
        let parts: Vec<_> = (0..parts_n)
            .map(|p| build_index_subset(&store, &config, &serving[p], &[]).unwrap())
            .collect();
        let full = fold_indexes(&generation, parts.clone(), &config);
        let global = live_minutes(&full.refs, full.totals.max_slot);

        let per_part: Vec<_> = parts
            .iter()
            .flat_map(|p| live_minutes(&p.refs, p.totals.max_slot))
            .collect();
        let tip = parts.iter().map(|p| p.totals.max_slot).max().unwrap_or(0);
        prop_assert_eq!(tip, full.totals.max_slot);
        prop_assert_eq!(&window_minutes(per_part, tip), &global);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
