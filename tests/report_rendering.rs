//! Rendering integration: every figure renderer produces structurally
//! correct output from a real (tiny) measurement run.

use sandwich_core::{report, AnalysisConfig, CollectorConfig, PipelineConfig};
use sandwich_sim::{ScenarioConfig, Simulation};

async fn tiny_report() -> (
    sandwich_core::AnalysisReport,
    sandwich_types::SlotClock,
    ScenarioConfig,
) {
    let scenario = ScenarioConfig::tiny();
    let days = scenario.days;
    let pipeline = PipelineConfig {
        collector: CollectorConfig {
            page_limit: sandwich_core::scaled_page_limit(&scenario, 1),
            ..Default::default()
        },
        ..Default::default()
    };
    let mut sim = Simulation::new(scenario.clone());
    let run = sandwich_core::run_measurement(&mut sim, pipeline)
        .await
        .unwrap();
    (
        run.analyze(&AnalysisConfig::paper_defaults(days)),
        run.clock,
        scenario,
    )
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn all_figures_render_consistently() {
    let (report_data, clock, scenario) = tiny_report().await;

    // Figure 1: one row per day, downtime marked.
    let fig1 = report::figure1(&report_data, &clock, &scenario.downtime_days);
    let body_rows = fig1.lines().count() - 2; // header + separator
    assert_eq!(body_rows as u64, scenario.days);
    assert!(fig1.contains("DOWN"), "downtime day marked:\n{fig1}");
    assert!(fig1.contains("len1") && fig1.contains("len5"));

    // Figure 2: one row per day, SOL columns present.
    let fig2 = report::figure2(&report_data, &clock);
    assert_eq!(fig2.lines().count() as u64 - 2, scenario.days);
    assert!(fig2.contains("victim loss (SOL)"));

    // Figure 3: quantile rows with dollar values.
    let fig3 = report::figure3(&report_data);
    assert!(fig3.contains("50%"));
    assert!(fig3.contains('$'));

    // Figure 4: a row per grid point, fractions within [0, 1].
    let fig4 = report::figure4(&report_data);
    assert!(fig4.contains("100000"));
    for line in fig4.lines().skip(2) {
        for cell in line.split('|').skip(1) {
            let v: f64 = cell.trim().parse().unwrap();
            assert!((0.0..=1.0).contains(&v), "fraction {v} out of range");
        }
    }

    // Table 1 renders a worked example when sandwiches exist.
    let table1 = report::table1(&report_data);
    assert!(table1.contains("ATTACKER"), "{table1}");
    assert!(table1.contains("BUY") && table1.contains("SELL"));

    // Headline includes every metric row.
    let headline = report::headline(&report_data, scenario.volume_scale);
    for metric in [
        "sandwich attacks",
        "victim losses",
        "attacker gains",
        "defensive spend",
        "mean defensive tip",
        "successive-poll overlap",
    ] {
        assert!(headline.contains(metric), "missing {metric}");
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn figure4_orders_tip_populations_correctly() {
    let (report_data, _, _) = tiny_report().await;
    // At 100k lamports: most len-1 bundles are below (defensive mass),
    // while almost no sandwich bundle is.
    let len1_at_100k = report_data.tip_cdf_len1.fraction_at_or_below(100_000.0);
    let sandwich_at_100k = report_data.tip_cdf_sandwich.fraction_at_or_below(100_000.0);
    assert!(len1_at_100k > 0.7, "len-1 at 100k = {len1_at_100k}");
    assert!(
        sandwich_at_100k < 0.2,
        "sandwich at 100k = {sandwich_at_100k}"
    );
    // Median sandwich tip dwarfs median len-3 tip (three orders on mainnet).
    let med3 = report_data.tip_cdf_len3.median().unwrap();
    let med_s = report_data.tip_cdf_sandwich.median().unwrap();
    assert!(
        med_s > med3 * 100.0,
        "sandwich median {med_s} vs len-3 median {med3}"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn counterfactuals_run_on_real_data() {
    let (report_data, _, _) = tiny_report().await;
    let oracle = sandwich_dex::SolUsdOracle::default();
    let cf = sandwich_core::defensive_counterfactual(
        &report_data,
        sandwich_types::Lamports(11_570),
        &oracle,
    );
    assert!(cf.victims > 0);
    assert!(
        cf.net_saving_usd > 0.0,
        "defense pays for actual victims: {cf:?}"
    );
    let econ = sandwich_core::defense_economics(&report_data, &oracle);
    assert!(econ.attack_probability > 0.0 && econ.attack_probability < 0.05);
    assert!(econ.p95_loss_usd >= econ.mean_loss_usd * 0.5);
    let slip = sandwich_core::slippage_counterfactual(&report_data, 50, 200, &oracle);
    assert!(slip.avoided_usd >= 0.0);
    assert!(slip.capped_loss_usd <= slip.realized_loss_usd);
}
