//! Property tests for the shard merge layer: every merge the router
//! folds shard partials with must be **associative** and **permutation /
//! partition invariant** — the merged value depends only on the multiset
//! of per-shard rows, never on how the segments were sharded or in which
//! order the partials arrived. This is what makes N-shard responses
//! byte-identical to the single engine at every N.

use proptest::prelude::*;

use sandwich_query::{
    AttackerEntry, DayRollup, IndexCoverage, IndexTotals, PoolEntry, SandwichRef, ValidatorEntry,
};
use sandwich_shard::merge::{
    merge_attackers, merge_coverage, merge_days, merge_pools, merge_range, merge_recent,
    merge_totals, merge_validators, RangePartial,
};
use sandwich_types::{Hash, Keypair, Pubkey};

fn pk(i: u8) -> Pubkey {
    Keypair::from_label(&format!("shard-prop-{i}")).pubkey()
}

/// Deterministic pseudo-shuffle: a permutation of `0..n` from a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.swap(i, (state >> 33) as usize % (i + 1));
    }
    order
}

type CoverageFields = ((u64, u64, u64, u64), (u64, u64, u64));

fn coverage(fields: CoverageFields) -> IndexCoverage {
    let ((segments_total, segments_scanned, segments_quarantined, segments_failed), bundles) =
        fields;
    IndexCoverage {
        segments_total,
        segments_scanned,
        segments_quarantined,
        segments_failed,
        bundles_scanned: bundles.0,
        bundles_quarantined: bundles.1,
        bundles_failed: bundles.2,
    }
}

fn sref(slot: u64, id: u64) -> SandwichRef {
    SandwichRef {
        day: slot / 1_000,
        slot,
        bundle_id: Hash::digest(&id.to_le_bytes()),
        attacker: pk((id % 5) as u8),
        victim: pk(100 + (id % 3) as u8),
        mints: vec![pk(200 + (id % 4) as u8)],
        sol_legged: id.is_multiple_of(2),
        victim_loss_lamports: Some(1_000 + id),
        attacker_gain_lamports: Some(500 + id as i128),
        tip_lamports: 10_000 + slot,
        leader: Some(pk(50 + (slot % 4) as u8)),
    }
}

/// Distinct refs in the global `(slot, bundle_id)` order, plus a shard
/// assignment for each — the arbitrary partition the properties quantify
/// over.
fn partitioned_refs(
    pairs: &[(u64, u64)],
    assignment: &[u8],
    shards: usize,
) -> (Vec<SandwichRef>, Vec<Vec<SandwichRef>>) {
    let mut seen = std::collections::BTreeSet::new();
    let mut global: Vec<SandwichRef> = pairs
        .iter()
        .filter(|(slot, id)| seen.insert((*slot, *id)))
        .map(|&(slot, id)| sref(slot, id))
        .collect();
    global.sort_by_key(|a| (a.slot, a.bundle_id.0));
    let mut parts: Vec<Vec<SandwichRef>> = vec![Vec::new(); shards];
    for (i, r) in global.iter().enumerate() {
        parts[assignment[i % assignment.len()] as usize % shards].push(r.clone());
    }
    (global, parts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Coverage blocks: merging is associative (any grouping of shards
    /// yields the same sum) and permutation invariant.
    #[test]
    fn coverage_merge_is_associative_and_permutation_invariant(
        parts in prop::collection::vec(
            ((0u64..50, 0u64..50, 0u64..10, 0u64..10), (0u64..100_000, 0u64..10_000, 0u64..10_000)),
            0..8,
        ),
        split in 0usize..8,
        seed in any::<u64>(),
    ) {
        let blocks: Vec<IndexCoverage> = parts.into_iter().map(coverage).collect();
        let whole = merge_coverage(&blocks);

        let cut = split.min(blocks.len());
        let grouped = merge_coverage(&[
            merge_coverage(&blocks[..cut]),
            merge_coverage(&blocks[cut..]),
        ]);
        prop_assert_eq!(&grouped, &whole);

        let order = permutation(blocks.len(), seed);
        let shuffled: Vec<IndexCoverage> = order.iter().map(|&i| blocks[i].clone()).collect();
        prop_assert_eq!(&merge_coverage(&shuffled), &whole);
    }

    /// Totals: field-wise sums with `max_slot` by max — associative and
    /// permutation invariant like coverage.
    #[test]
    fn totals_merge_is_associative_and_permutation_invariant(
        parts in prop::collection::vec(
            (0u64..100, 0u64..100_000, 0u64..5_000, 0u64..1_000, 0u64..1_000_000_000),
            0..8,
        ),
        split in 0usize..8,
        seed in any::<u64>(),
    ) {
        let blocks: Vec<IndexTotals> = parts
            .into_iter()
            .map(|(segments, bundles, sandwiches, defensive, max_slot)| IndexTotals {
                segments,
                bundles,
                sandwiches,
                non_sol_sandwiches: sandwiches / 3,
                defensive,
                victim_loss_lamports: bundles as u128 * 7,
                attacker_gain_lamports: sandwiches as i128 * 5 - 1_000,
                tips_lamports: bundles as u128 * 11,
                max_slot,
            })
            .collect();
        let whole = merge_totals(&blocks);

        let cut = split.min(blocks.len());
        let grouped = merge_totals(&[
            merge_totals(&blocks[..cut]),
            merge_totals(&blocks[cut..]),
        ]);
        prop_assert_eq!(&grouped, &whole);

        let order = permutation(blocks.len(), seed);
        let shuffled: Vec<IndexTotals> = order.iter().map(|&i| blocks[i].clone()).collect();
        prop_assert_eq!(&merge_totals(&shuffled), &whole);
    }

    /// Day rollups: dense element-wise sums. Associative, permutation
    /// invariant, and the merged length is the longest input's.
    #[test]
    fn days_merge_is_associative_and_permutation_invariant(
        parts in prop::collection::vec(
            prop::collection::vec((1u64..1_000, 0u64..50, 0u64..20), 0..6),
            0..6,
        ),
        split in 0usize..6,
        seed in any::<u64>(),
    ) {
        let lists: Vec<Vec<DayRollup>> = parts
            .into_iter()
            .map(|days| {
                days.into_iter()
                    .enumerate()
                    .map(|(day, (bundles, sandwiches, defensive))| DayRollup {
                        day: day as u64,
                        label: format!("day {day}"),
                        bundles,
                        bundles_by_len: (0..5).map(|k| bundles / (k + 1)).collect(),
                        sandwiches,
                        defensive,
                        victim_loss_lamports: bundles as u128 * 3,
                        attacker_gain_lamports: sandwiches as i128 * 2,
                        tips_lamports: bundles as u128,
                    })
                    .collect()
            })
            .collect();
        let whole = merge_days(&lists);
        prop_assert_eq!(whole.len(), lists.iter().map(Vec::len).max().unwrap_or(0));

        let cut = split.min(lists.len());
        let grouped = merge_days(&[merge_days(&lists[..cut]), merge_days(&lists[cut..])]);
        prop_assert_eq!(&grouped, &whole);

        let order = permutation(lists.len(), seed);
        let shuffled: Vec<Vec<DayRollup>> = order.iter().map(|&i| lists[i].clone()).collect();
        prop_assert_eq!(&merge_days(&shuffled), &whole);
    }

    /// The attacker leaderboard depends only on the multiset of per-shard
    /// rows: any partition of the rows across any number of shards merges
    /// to the same fully-ordered leaderboard.
    #[test]
    fn attacker_merge_is_partition_invariant(
        rows in prop::collection::vec(
            (0u8..6, 1u64..100, 0i64..1_000_000, 0u64..1_000_000, 0u64..100_000),
            0..40,
        ),
        assignment in prop::collection::vec(0u8..4, 1..40),
        shards in 1usize..5,
    ) {
        let entries: Vec<AttackerEntry> = rows
            .iter()
            .map(|&(key, sandwiches, gain, loss, tips)| AttackerEntry {
                attacker: pk(key),
                sandwiches,
                attacker_gain_lamports: gain as i128,
                victim_loss_lamports: loss as u128,
                tips_lamports: tips as u128,
                refs: vec![1, 2, 3], // must be dropped by the merge
            })
            .collect();
        let whole = merge_attackers(vec![entries.clone()]);
        prop_assert!(whole.iter().all(|e| e.refs.is_empty()), "merge must drop refs");

        let mut parts: Vec<Vec<AttackerEntry>> = vec![Vec::new(); shards];
        for (i, entry) in entries.into_iter().enumerate() {
            parts[assignment[i % assignment.len()] as usize % shards].push(entry);
        }
        prop_assert_eq!(&merge_attackers(parts), &whole);
    }

    /// Same for the pool leaderboard; the non-summable distinct-attacker
    /// count is zeroed on both sides, so ranks and rows still agree.
    #[test]
    fn pool_merge_is_partition_invariant(
        rows in prop::collection::vec((0u8..6, 1u64..100, 0u64..1_000_000, 0u64..20), 0..40),
        assignment in prop::collection::vec(0u8..4, 1..40),
        shards in 1usize..5,
    ) {
        let entries: Vec<PoolEntry> = rows
            .iter()
            .map(|&(key, sandwiches, loss, attackers)| PoolEntry {
                mint: pk(key),
                sandwiches,
                victim_loss_lamports: loss as u128,
                attackers,
                refs: vec![4, 5],
            })
            .collect();
        let whole = merge_pools(vec![entries.clone()]);
        prop_assert!(whole.iter().all(|e| e.attackers == 0 && e.refs.is_empty()));

        let mut parts: Vec<Vec<PoolEntry>> = vec![Vec::new(); shards];
        for (i, entry) in entries.into_iter().enumerate() {
            parts[assignment[i % assignment.len()] as usize % shards].push(entry);
        }
        prop_assert_eq!(&merge_pools(parts), &whole);
    }

    /// The validator leaderboard: `blocks_led` merges by max (each shard
    /// reports the count through its own tip; the global tip is the max),
    /// `sandwich_slots` by sorted union, numerics by sum. Like the other
    /// leaderboards the result must depend only on the multiset of rows —
    /// associative, permutation invariant, partition invariant — because
    /// that is what makes the router's `/api/validators` byte-identical
    /// to the single engine at every shard count.
    #[test]
    fn validator_merge_is_associative_and_partition_invariant(
        rows in prop::collection::vec(
            (0u8..6, 0u64..5_000, prop::collection::vec(0u64..2_000, 0..6), 0u64..100, 0u64..100_000),
            0..40,
        ),
        assignment in prop::collection::vec(0u8..4, 1..40),
        shards in 1usize..5,
        split in 0usize..5,
        seed in any::<u64>(),
    ) {
        // Stake and pool are pure functions of the identity (derived from
        // the manifest's validator spec), so every shard reports the same
        // values for the same pubkey — the proptest mirrors that.
        let entries: Vec<ValidatorEntry> = rows
            .iter()
            .map(|(key, blocks_led, slots, sandwiches, tips)| ValidatorEntry {
                pubkey: pk(*key),
                stake_lamports: (*key as u64 + 1) * 1_000_000_000,
                stake_pool: format!("pool-{}", key % 3),
                blocks_led: *blocks_led,
                sandwich_slots: slots.clone(),
                sandwiches: *sandwiches,
                attacker_gain_lamports: *sandwiches as i128 * 5 - 100,
                victim_loss_lamports: *sandwiches as u128 * 7,
                tips_lamports: *tips as u128,
                refs: vec![1, 2, 3], // must be dropped by the merge
            })
            .collect();
        let whole = merge_validators(vec![entries.clone()]);
        prop_assert!(whole.iter().all(|e| e.refs.is_empty()), "merge must drop refs");
        for entry in &whole {
            prop_assert!(
                entry.sandwich_slots.windows(2).all(|w| w[0] < w[1]),
                "sandwich_slots must come out sorted and deduped"
            );
        }

        // Partition invariance: any assignment of rows to any shard count.
        let mut parts: Vec<Vec<ValidatorEntry>> = vec![Vec::new(); shards];
        for (i, entry) in entries.iter().enumerate() {
            parts[assignment[i % assignment.len()] as usize % shards].push(entry.clone());
        }
        prop_assert_eq!(&merge_validators(parts.clone()), &whole);

        // Associativity: merging two pre-merged groups equals one merge.
        let cut = split.min(parts.len());
        let grouped = merge_validators(vec![
            merge_validators(parts[..cut].to_vec()),
            merge_validators(parts[cut..].to_vec()),
        ]);
        prop_assert_eq!(&grouped, &whole);

        // Permutation invariance: shard arrival order must not matter.
        let order = permutation(parts.len(), seed);
        let shuffled: Vec<Vec<ValidatorEntry>> = order.iter().map(|&i| parts[i].clone()).collect();
        prop_assert_eq!(&merge_validators(shuffled), &whole);
    }

    /// The prefix property behind re-pagination: when every shard ships
    /// the first `need` of its in-range refs, the merged union's first
    /// `min(need, total)` elements are exactly the global first
    /// `min(need, total)` — for any partition of the global order.
    #[test]
    fn range_merge_reconstructs_any_global_prefix(
        pairs in prop::collection::vec((0u64..5_000, 0u64..1_000_000), 0..60),
        assignment in prop::collection::vec(0u8..4, 1..60),
        shards in 1usize..5,
        need in 0usize..70,
    ) {
        let (global, parts) = partitioned_refs(&pairs, &assignment, shards);
        let partials: Vec<RangePartial> = parts
            .into_iter()
            .map(|refs| RangePartial {
                generation: "g".to_string(),
                total: refs.len() as u64,
                refs: refs.into_iter().take(need).collect(),
            })
            .collect();
        let (total, merged) = merge_range(partials);
        prop_assert_eq!(total, global.len());
        let page = need.min(global.len());
        prop_assert_eq!(&merged[..page], &global[..page]);
    }

    /// The recency tail is the mirror image: shards ship their newest
    /// `cap` refs oldest-first, and the merged newest-first tail equals
    /// the single engine's — for any partition.
    #[test]
    fn recent_merge_reconstructs_the_global_tail(
        pairs in prop::collection::vec((0u64..5_000, 0u64..1_000_000), 0..60),
        assignment in prop::collection::vec(0u8..4, 1..60),
        shards in 1usize..5,
        cap in 0usize..70,
    ) {
        let (global, parts) = partitioned_refs(&pairs, &assignment, shards);
        let tails: Vec<Vec<SandwichRef>> = parts
            .into_iter()
            .map(|refs| {
                let start = refs.len().saturating_sub(cap);
                refs[start..].to_vec()
            })
            .collect();
        let merged = merge_recent(tails, cap);

        let start = global.len().saturating_sub(cap);
        let mut expected = global[start..].to_vec();
        expected.reverse();
        prop_assert_eq!(&merged, &expected);
    }
}
