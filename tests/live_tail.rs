//! Live-tail concurrency test: a writer seals new segments (each
//! carrying a planted sandwich) while clients long-poll `/api/live` and
//! hammer the cached analytics endpoints. Three things must hold at
//! once:
//!
//! 1. every hammered response byte-matches exactly one manifest
//!    generation's reference evaluation (the torn-read guarantee from
//!    `tests/query_service.rs`, extended to the live endpoint);
//! 2. the live cursor never skips and never duplicates a sandwich, even
//!    when the index it pages over is swapped mid-walk; and
//! 3. the swap itself was an incremental fold — `query.index.
//!    full_rebuilds` stays unset for the whole run.
//!
//! A final test checks the sharded router serves the same `/api/live`
//! bytes as the single-engine service, so the streaming tail does not
//! care which deployment shape sits behind it.

use std::collections::HashMap;
use std::path::PathBuf;

use serde::Deserialize;

use sandwich_jito::{bundle_id_of, tip_account};
use sandwich_ledger::{SolDelta, TokenDelta, TransactionMeta};
use sandwich_net::{HttpClient, Server};
use sandwich_obs::{names, Registry};
use sandwich_query::{LiveMinute, QueryService, QueryServiceConfig, SandwichRef};
use sandwich_shard::{ClusterConfig, ServingCluster};
use sandwich_store::{CollectedBundle, CollectedDetail, Manifest, StoreWriter};
use sandwich_types::{Hash, Keypair, LamportDelta, Lamports, Pubkey, Signature, Slot};

/// The wire shape of one `/api/live` page, deserialized for cursor
/// walking. Field names mirror `render::live_page`.
#[derive(Deserialize)]
struct LivePage {
    generation: String,
    tip_slot: u64,
    total_after: u64,
    limit: u64,
    more: bool,
    cursor: String,
    rows: Vec<SandwichRef>,
    minutes: Vec<LiveMinute>,
}

fn plain_bundle(seed: u64, slot: u64, tip: u64) -> CollectedBundle {
    let kp = Keypair::from_label("livetail");
    CollectedBundle {
        bundle_id: Hash::digest(&seed.to_le_bytes()),
        slot: Slot(slot),
        timestamp_ms: slot * 400,
        tip: Lamports(tip),
        tx_ids: vec![kp.sign(&seed.to_le_bytes())],
    }
}

fn swap_meta(
    tx_id: Signature,
    signer: Pubkey,
    mint: Pubkey,
    sol_delta_trade: i64,
    tokens: i128,
    tip: u64,
) -> TransactionMeta {
    let fee = 5_000i64;
    let mut sol_deltas = vec![SolDelta {
        account: signer,
        delta: LamportDelta(sol_delta_trade - fee - tip as i64),
    }];
    if tip > 0 {
        sol_deltas.push(SolDelta {
            account: tip_account(0),
            delta: LamportDelta(tip as i64),
        });
    }
    TransactionMeta {
        tx_id,
        signer,
        fee: Lamports(fee as u64),
        priority_fee: Lamports::ZERO,
        success: true,
        error: None,
        sol_deltas,
        token_deltas: vec![TokenDelta {
            owner: signer,
            mint,
            delta: tokens,
        }],
    }
}

/// Plant one detectable sandwich at `slot`: attacker buys, victim buys
/// at a strictly worse rate, attacker sells everything back at a profit
/// with the Jito tip on the closing leg.
fn sandwich(n: u64, slot: u64) -> (CollectedBundle, Vec<CollectedDetail>) {
    let kp = Keypair::from_label("livetail-attacker");
    let attacker = Pubkey::derive(&format!("livetail-attacker-{n}"));
    let victim = Pubkey::derive(&format!("livetail-victim-{n}"));
    let mint = Pubkey::derive(&format!("livetail-pool-{n}"));
    let tx_ids: Vec<Signature> = (0..3u8)
        .map(|t| kp.sign(&[n as u8, t, 0xA5, 0x11]))
        .collect();
    let sol_in = 2_000_000_000i64;
    let tokens = 10_000i128;
    let victim_sol = sol_in + 600_000_000;
    let profit = 150_000_000;
    let tip = 1_000_000u64;
    let front = swap_meta(tx_ids[0], attacker, mint, -sol_in, tokens, 0);
    let mid = swap_meta(tx_ids[1], victim, mint, -victim_sol, tokens, 0);
    let back = swap_meta(tx_ids[2], attacker, mint, sol_in + profit, -tokens, tip);
    let bundle_id = bundle_id_of(&tx_ids);
    let details = [front, mid, back]
        .into_iter()
        .map(|meta| CollectedDetail {
            bundle_id,
            slot: Slot(slot),
            meta,
        })
        .collect();
    (
        CollectedBundle {
            bundle_id,
            slot: Slot(slot),
            timestamp_ms: slot * 400,
            tip: Lamports(tip),
            tx_ids,
        },
        details,
    )
}

/// One segment's worth of traffic: `fill` plain bundles around one
/// planted sandwich (sandwich `n`, landing mid-segment).
fn segment_with_sandwich(
    n: u64,
    base_slot: u64,
    fill: u64,
) -> (Vec<CollectedBundle>, Vec<CollectedDetail>) {
    let mut bundles: Vec<CollectedBundle> = (0..fill)
        .map(|i| plain_bundle(n * 1_000 + i, base_slot + i * 2, 25_000 + i))
        .collect();
    let (sw, details) = sandwich(n, base_slot + fill);
    bundles.push(sw);
    (bundles, details)
}

/// Seed a store with `segments` sealed segments, one sandwich each.
fn seed_store(tag: &str, segments: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sw-live-tail-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer = StoreWriter::create(&dir).unwrap();
    for seg in 0..segments {
        let (bundles, details) = segment_with_sandwich(seg, seg * 200, 12);
        writer.seal_segment(bundles, details, Vec::new()).unwrap();
    }
    dir
}

/// Seal one more segment (with sandwich `n`) onto an existing store.
fn seal_one_more(dir: &PathBuf, n: u64) {
    let sealed = Manifest::load(dir).unwrap().segments;
    let mut writer = StoreWriter::resume(dir, &sealed).unwrap();
    let (bundles, details) = segment_with_sandwich(n, n * 200, 8);
    writer.seal_segment(bundles, details, Vec::new()).unwrap();
}

/// The cacheable paths the background clients hammer; `/api/live` with
/// `wait_ms=0` is an ordinary cached page and must obey the same
/// one-generation rule as the analytics endpoints.
const PATHS: [&str; 4] = [
    "/api/summary",
    "/api/attackers?limit=10",
    "/api/sandwiches?from_slot=0&to_slot=1000000&limit=50",
    "/api/live?limit=64",
];

/// Reference bodies for one generation, evaluated uncached from a fresh
/// service over the same directory.
fn reference_bodies(dir: &PathBuf) -> (String, HashMap<&'static str, Vec<u8>>) {
    let service = QueryService::open(QueryServiceConfig::new(dir), Registry::new()).unwrap();
    let engine = service.engine_snapshot();
    let generation = engine.generation().to_string();
    let bodies = PATHS
        .iter()
        .map(|&path| {
            let (endpoint, query) = match path {
                "/api/summary" => ("summary", &[][..]),
                "/api/attackers?limit=10" => ("attackers", &[("limit", "10")][..]),
                "/api/live?limit=64" => ("live", &[("limit", "64")][..]),
                _ => (
                    "sandwiches",
                    &[("from_slot", "0"), ("to_slot", "1000000"), ("limit", "50")][..],
                ),
            };
            let request = sandwich_net::Request {
                method: sandwich_net::Method::Get,
                path: path.split('?').next().unwrap().to_string(),
                query: query
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                params: HashMap::new(),
                headers: HashMap::new(),
                body: Default::default(),
            };
            let typed = sandwich_query::QueryRequest::parse(endpoint, &request).unwrap();
            (path, engine.evaluate(&typed).body)
        })
        .collect();
    (generation, bodies)
}

/// The tentpole concurrency test: clients long-poll the tail and hammer
/// the cache while the store grows underneath them and the index folds
/// forward.
#[tokio::test]
async fn live_tail_survives_concurrent_seals_without_skips_or_full_rebuilds() {
    let dir = seed_store("main", 2);

    let (gen1, gen1_bodies) = reference_bodies(&dir);

    let registry = Registry::new();
    let service = QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
    assert_eq!(service.generation(), gen1);
    let server = Server::bind("127.0.0.1:0", service.router()).await.unwrap();
    let addr = server.local_addr();

    // Background clients hammer the cached endpoints, recording
    // (path, generation header, body) for the torn-read check.
    let clients = 4usize;
    let requests_per_client = 30usize;
    let mut set = tokio::task::JoinSet::new();
    for c in 0..clients {
        set.spawn(async move {
            let client = HttpClient::new(addr);
            let mut seen = Vec::with_capacity(requests_per_client);
            for i in 0..requests_per_client {
                let path = PATHS[(c + i) % PATHS.len()];
                let response = client.get(path).await.expect("request");
                assert_eq!(response.status, 200, "{path}");
                let generation = response
                    .header_value("x-query-generation")
                    .expect("generation header")
                    .to_string();
                seen.push((path, generation, response.body.to_vec()));
            }
            seen
        });
    }

    // The tail walker: page through /api/live one row at a time with a
    // bounded long-poll, until it has seen all three sandwiches — the
    // third only exists after the mid-flight seal.
    let walker = tokio::spawn(async move {
        let client = HttpClient::new(addr);
        let mut cursor = String::new();
        let mut rows: Vec<SandwichRef> = Vec::new();
        for _ in 0..400 {
            let path = if cursor.is_empty() {
                "/api/live?limit=1&wait_ms=250".to_string()
            } else {
                format!("/api/live?cursor={cursor}&limit=1&wait_ms=250")
            };
            let response = client.get(&path).await.expect("live request");
            assert_eq!(response.status, 200, "{path}");
            let page: LivePage = serde_json::from_slice(&response.body).expect("live page json");
            assert!(page.rows.len() <= 1, "limit=1 must cap the page");
            assert!(page.limit == 1 && !page.generation.is_empty());
            assert!(page.cursor.starts_with("v1."), "opaque versioned cursor");
            assert!(page.tip_slot >= rows.last().map(|r| r.slot).unwrap_or(0));
            if page.rows.is_empty() {
                // An empty page may not move the cursor's position part.
                assert_eq!(page.total_after, 0);
                assert!(!page.more);
            }
            assert!(!page.minutes.is_empty(), "rolling window always present");
            cursor = page.cursor.clone();
            rows.extend(page.rows);
            if rows.len() >= 3 {
                break;
            }
        }
        rows
    });

    // Mid-flight: seal a third segment with one more sandwich and fold
    // the index forward.
    tokio::time::sleep(std::time::Duration::from_millis(5)).await;
    seal_one_more(&dir, 2);
    assert!(service.reload().unwrap(), "reload must go live");
    let gen2 = service.generation();
    assert_ne!(gen1, gen2);

    let mut observations = Vec::new();
    while let Some(joined) = set.join_next().await {
        observations.extend(joined.expect("client task"));
    }
    let walked = walker.await.expect("walker task");
    server.shutdown().await;

    let (gen2_check, gen2_bodies) = reference_bodies(&dir);
    assert_eq!(gen2_check, gen2);

    // Torn-read check: every hammered response is exactly one
    // generation's reference body, and the header agrees with the body.
    let mut gen1_seen = 0usize;
    let mut gen2_seen = 0usize;
    for (path, generation, body) in &observations {
        let expected = if *generation == gen1 {
            gen1_seen += 1;
            &gen1_bodies[path]
        } else if *generation == gen2 {
            gen2_seen += 1;
            &gen2_bodies[path]
        } else {
            panic!("response for {path} carries unknown generation {generation}");
        };
        assert_eq!(
            body, expected,
            "torn read: {path} response does not match its generation {generation}"
        );
    }
    assert_eq!(gen1_seen + gen2_seen, clients * requests_per_client);

    // Cursor check: the walker saw every planted sandwich exactly once,
    // in (slot, bundle_id) order, across the generation change.
    let reference = QueryService::open(QueryServiceConfig::new(&dir), Registry::new()).unwrap();
    let expected_refs = reference.engine_snapshot().index().refs.clone();
    assert_eq!(expected_refs.len(), 3, "three sandwiches planted");
    assert_eq!(
        walked, expected_refs,
        "live cursor skipped or duplicated a sandwich across the fold"
    );

    // Fold check: the serving process loaded the index persisted by the
    // reference pass, then folded exactly the one new segment in; it
    // never rebuilt anything from scratch.
    let snap = registry.snapshot();
    assert_eq!(snap.counter(names::QUERY_INDEX_FULL_REBUILDS), None);
    assert_eq!(snap.counter(names::QUERY_INDEX_REBUILDS), None);
    assert_eq!(snap.counter(names::QUERY_INDEX_LOADS), Some(1));
    assert_eq!(snap.counter(names::QUERY_INDEX_FOLDS), Some(1));
    assert_eq!(snap.counter(names::QUERY_INDEX_FOLD_SEGMENTS), Some(1));
    assert!(snap.counter(names::QUERY_LIVE_REQUESTS).unwrap_or(0) > 0);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// A cursor minted under one generation resumes cleanly under the next:
/// the page after a reload starts exactly at the first new sandwich.
#[tokio::test]
async fn cursor_minted_before_a_fold_resumes_after_it() {
    let dir = seed_store("resume", 2);
    let registry = Registry::new();
    let service = QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
    let server = Server::bind("127.0.0.1:0", service.router()).await.unwrap();
    let client = HttpClient::new(server.local_addr());

    // Drain the initial two sandwiches; remember the tail cursor.
    let response = client.get("/api/live?limit=10").await.unwrap();
    let page: LivePage = serde_json::from_slice(&response.body).unwrap();
    assert_eq!(page.rows.len(), 2);
    assert_eq!(page.total_after, 2);
    assert!(!page.more);
    let tail = page.cursor.clone();

    // Tail is dry under the old generation.
    let response = client
        .get(&format!("/api/live?cursor={tail}&limit=10"))
        .await
        .unwrap();
    let dry: LivePage = serde_json::from_slice(&response.body).unwrap();
    assert_eq!(dry.rows.len(), 0);
    assert_eq!(
        dry.cursor, tail,
        "an empty page must not advance the cursor"
    );

    seal_one_more(&dir, 2);
    assert!(service.reload().unwrap());

    // The same cursor now yields exactly the one new sandwich.
    let response = client
        .get(&format!("/api/live?cursor={tail}&limit=10"))
        .await
        .unwrap();
    let fresh: LivePage = serde_json::from_slice(&response.body).unwrap();
    assert_eq!(fresh.rows.len(), 1);
    assert_eq!(fresh.total_after, 1);
    let all = QueryService::open(QueryServiceConfig::new(&dir), Registry::new()).unwrap();
    let refs = all.engine_snapshot().index().refs.clone();
    assert_eq!(fresh.rows[0], refs[2], "resumed page starts at the new row");

    // The fold path served both generations; no full rebuild happened.
    let snap = registry.snapshot();
    assert_eq!(snap.counter(names::QUERY_INDEX_FULL_REBUILDS), None);
    assert_eq!(snap.counter(names::QUERY_INDEX_FOLDS), Some(1));

    server.shutdown().await;
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The sharded router's merged `/api/live` page is byte-identical to the
/// single-engine service over the same store — rows, cursor, rolling
/// minutes, and all.
#[tokio::test]
async fn router_live_pages_match_the_single_engine_byte_for_byte() {
    let dir = seed_store("router", 3);

    let single = QueryService::open(QueryServiceConfig::new(&dir), Registry::new()).unwrap();
    let single_server = Server::bind("127.0.0.1:0", single.router()).await.unwrap();
    let single_client = HttpClient::new(single_server.local_addr());

    let cluster = ServingCluster::serve(ClusterConfig::new(&dir, 2), Registry::new())
        .await
        .unwrap();
    let router_client = HttpClient::new(cluster.router_addr());

    // Walk both services with the same cursors and small pages; compare
    // whole bodies at every step.
    let mut cursor = String::new();
    for _ in 0..8 {
        let path = if cursor.is_empty() {
            "/api/live?limit=2".to_string()
        } else {
            format!("/api/live?cursor={cursor}&limit=2")
        };
        let a = single_client.get(&path).await.unwrap();
        let b = router_client.get(&path).await.unwrap();
        assert_eq!(a.status, 200);
        assert_eq!(b.status, 200);
        assert_eq!(
            a.body.to_vec(),
            b.body.to_vec(),
            "router and single engine disagree on {path}"
        );
        let page: LivePage = serde_json::from_slice(&a.body).unwrap();
        if page.rows.is_empty() {
            break;
        }
        cursor = page.cursor.clone();
    }

    cluster.shutdown().await;
    single_server.shutdown().await;
    std::fs::remove_dir_all(&dir).unwrap();
}
