//! The crash matrix: every enumerated crash point of a segment seal, in
//! both failure flavours, must leave a store that recovers to a
//! byte-identical state — and every post-seal corruption of a sealed
//! segment must end in either a byte-identical repair or an explicit
//! quarantine with exact coverage accounting. "It scanned, but the
//! numbers are quietly wrong" is the one outcome this suite exists to
//! rule out.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use sandwich_core::{scan_store, scan_store_degraded, AnalysisConfig};
use sandwich_obs::{names, Registry};
use sandwich_query::{
    build_index, build_index_subset, fold_indexes, generation_of, load_index_any, save_index_with,
    QueryService, QueryServiceConfig, INDEX_FILE,
};
use sandwich_store::segment::{encode_segment, encode_segment_v1, write_segment_file};
use sandwich_store::{
    crash, doctor, is_injected_crash, BundleStore, CollectedBundle, CrashPlan, Manifest,
    SegmentMeta, StoreWriter, ValidatorSpec,
};
use sandwich_types::{Hash, Keypair, Lamports, Slot, SlotClock};

fn bundle(seed: u64, slot: u64, tip: u64) -> CollectedBundle {
    let kp = Keypair::from_label("crashmatrix");
    CollectedBundle {
        bundle_id: Hash::digest(&seed.to_le_bytes()),
        slot: Slot(slot),
        timestamp_ms: slot * 400,
        tip: Lamports(tip),
        tx_ids: vec![kp.sign(&seed.to_le_bytes())],
    }
}

fn batch(seed: u64, base_slot: u64, n: u64) -> Vec<CollectedBundle> {
    (0..n)
        .map(|i| bundle(seed * 1_000 + i, base_slot + i * 2, 30_000 + i))
        .collect()
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn report_json(dir: &Path) -> String {
    let store = BundleStore::open(dir).unwrap();
    let report = scan_store(
        &store,
        &SlotClock::default(),
        &AnalysisConfig::paper_defaults(1),
        2,
    )
    .unwrap();
    serde_json::to_string(&report).unwrap()
}

/// Unique scratch directory per call, so parallel test threads and
/// proptest cases never collide.
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("crash-matrix-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every crash point of a full seal (segment write → fsync → rename →
/// dir fsync → manifest update), killed both cleanly and with torn-write
/// power-loss semantics, must resume to a byte-identical store. This is
/// the bounded in-tree twin of the `crash_bench` matrix.
#[test]
fn every_seal_crash_point_recovers_byte_identically() {
    let base = scratch("base");
    let mut w = StoreWriter::create(&base).unwrap();
    w.seal_segment(batch(1, 100, 30), Vec::new(), Vec::new())
        .unwrap();
    drop(w);
    let sealed = Manifest::load(&base).unwrap().segments;
    let extra = || batch(2, 400, 30);

    // The uninterrupted reference.
    let reference = scratch("ref");
    copy_dir(&base, &reference);
    let mut w = StoreWriter::resume(&reference, &sealed).unwrap();
    let ref_meta = w.seal_segment(extra(), Vec::new(), Vec::new()).unwrap();
    drop(w);
    let ref_json = report_json(&reference);
    let ref_bytes = std::fs::read(reference.join(&ref_meta.file)).unwrap();

    // Enumerate the crash points of one seal.
    let steps = {
        let dir = scratch("count");
        copy_dir(&base, &dir);
        let mut w = StoreWriter::resume(&dir, &sealed).unwrap();
        let mut plan = CrashPlan::count();
        w.seal_segment_with(extra(), Vec::new(), Vec::new(), Some(&mut plan))
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        plan.steps_seen()
    };
    assert!(steps >= 20, "expected >= 20 crash points, got {steps}");

    for step in 0..steps {
        for torn in [false, true] {
            let dir = scratch("case");
            copy_dir(&base, &dir);
            let mut w = StoreWriter::resume(&dir, &sealed).unwrap();
            let mut plan = CrashPlan::crash_at(step, torn, 0xDEAD ^ (step << 1) ^ torn as u64);
            let err = w
                .seal_segment_with(extra(), Vec::new(), Vec::new(), Some(&mut plan))
                .expect_err("plan must fire");
            assert!(is_injected_crash(&err), "step {step}: {err}");
            drop(w);

            let mut w = StoreWriter::resume(&dir, &sealed).unwrap_or_else(|e| {
                panic!("recovery resume failed at step {step} torn={torn}: {e}")
            });
            let meta = w.seal_segment(extra(), Vec::new(), Vec::new()).unwrap();
            drop(w);

            assert_eq!(meta.file, ref_meta.file, "step {step} torn={torn}");
            assert_eq!(
                std::fs::read(dir.join(&meta.file)).unwrap(),
                ref_bytes,
                "segment bytes diverged at step {step} torn={torn}"
            );
            assert_eq!(
                report_json(&dir),
                ref_json,
                "analysis report diverged at step {step} torn={torn}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&reference);
}

/// Build a tiny two-segment store (one v1 segment, one v2 segment) and
/// return its directory plus the reference report JSON.
fn seed_mixed_store(tag: &str) -> (PathBuf, String) {
    let dir = scratch(tag);
    std::fs::create_dir_all(&dir).unwrap();
    let mut manifest = Manifest::new();
    for (i, v1) in [(0usize, true), (1usize, false)] {
        let data = sandwich_store::codec::SegmentData {
            bundles: batch(i as u64 + 1, 100 + i as u64 * 300, 8),
            details: Vec::new(),
            polls: Vec::new(),
        };
        let (image, footer) = if v1 {
            encode_segment_v1(&data)
        } else {
            encode_segment(&data)
        };
        let file = format!("seg-{i:05}.seg");
        write_segment_file(&dir.join(&file), &image).unwrap();
        manifest.segments.push(SegmentMeta {
            file,
            bundles: data.bundles.len() as u64,
            details: 0,
            polls: 0,
            min_slot: footer.min_slot,
            max_slot: footer.max_slot,
            bytes: image.len() as u64,
            checksum: format!("{:016x}", footer.checksum),
        });
    }
    manifest.save(&dir).unwrap();
    let json = report_json(&dir);
    (dir, json)
}

/// The recover-or-quarantine invariant, checked after `store doctor
/// --repair` over a damaged segment: either the store scans to the exact
/// reference report with complete coverage, or the damage is an explicit
/// quarantine whose accounting matches the victim — never a silently
/// different report.
fn assert_recovered_or_quarantined(dir: &Path, reference: &str, context: &str) {
    doctor::repair(dir).unwrap_or_else(|e| panic!("{context}: doctor failed: {e}"));
    let store = BundleStore::open(dir).unwrap();
    let total: u64 =
        store.manifest().total_bundles() + store.manifest().total_quarantined_bundles();
    let (report, coverage) = scan_store_degraded(
        &store,
        &SlotClock::default(),
        &AnalysisConfig::paper_defaults(1),
        2,
        None,
    )
    .unwrap();
    if coverage.complete() {
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            reference,
            "{context}: repaired store produced a different report"
        );
        assert_eq!(total, 16, "{context}: both segments serving");
    } else {
        assert_eq!(coverage.segments_quarantined, 1, "{context}");
        assert_eq!(coverage.bundles_quarantined, 8, "{context}");
        assert_eq!(
            coverage.bundles_scanned + coverage.bundles_quarantined,
            total,
            "{context}: coverage must account for every bundle"
        );
    }
}

/// Every enumerated crash point of the fold-persist path (the durable
/// rewrite of `query-index.bin` after an incremental fold), in both
/// failure flavours, must leave an index file that is entirely the old
/// generation or entirely the new one — never torn — and a service that
/// reopens onto it must reach the new generation without a single full
/// rebuild: a durable old index folds forward, a durable new index just
/// loads.
#[test]
fn every_fold_persist_crash_point_leaves_a_servable_index() {
    fold_persist_crash_matrix("plain", None);
}

/// The same matrix over the *extended* index frame: with a validator spec
/// in the manifest, the persisted SWQIX01 frame additionally carries the
/// spec, per-sandwich leaders, and the validator leaderboard — and every
/// crash point of its durable rewrite must still leave an entirely-old or
/// entirely-new frame whose attribution fields survive the round trip.
#[test]
fn every_fold_persist_crash_point_leaves_a_servable_attributed_index() {
    fold_persist_crash_matrix("attrib", Some(ValidatorSpec::new(20_250_209, 8)));
}

fn fold_persist_crash_matrix(tag: &str, spec: Option<ValidatorSpec>) {
    let base = scratch(&format!("foldbase-{tag}"));
    let mut w = StoreWriter::create(&base).unwrap();
    if let Some(spec) = spec {
        w.set_validators(spec).unwrap();
    }
    w.seal_segment(batch(1, 100, 30), Vec::new(), Vec::new())
        .unwrap();
    drop(w);
    // Persist the generation-1 index the way the service does.
    QueryService::open(QueryServiceConfig::new(&base), Registry::new()).unwrap();

    // Seal a second segment: the persisted index is now one generation
    // stale, exactly the state a reload folds out of.
    let sealed = Manifest::load(&base).unwrap().segments;
    let mut w = StoreWriter::resume(&base, &sealed).unwrap();
    w.seal_segment(batch(2, 400, 30), Vec::new(), Vec::new())
        .unwrap();
    drop(w);

    // Compute the folded generation-2 index through the public fold API
    // and pin it against a from-scratch build.
    let store = BundleStore::open(&base).unwrap();
    let config = QueryServiceConfig::new(&base).query;
    let generation = generation_of(store.manifest());
    let old = load_index_any(&base, INDEX_FILE).unwrap();
    let old_generation = old.generation.clone();
    assert_ne!(old_generation, generation, "base index must be stale");
    let delta = store
        .manifest()
        .delta_from(&old.segment_files, &old.quarantined_files)
        .expect("append-only history must be foldable");
    let delta_index =
        build_index_subset(&store, &config, &delta.new_serving, &delta.new_quarantined).unwrap();
    let folded = fold_indexes(&generation, vec![old, delta_index], &config);
    let reference = serde_json::to_string(&build_index(&store, &config).unwrap()).unwrap();
    assert_eq!(
        serde_json::to_string(&folded).unwrap(),
        reference,
        "fold must be byte-identical to the full rebuild"
    );
    assert_eq!(folded.validator_spec, spec, "spec must ride the frame");
    assert_eq!(
        folded.validators.is_some(),
        spec.is_some(),
        "leaderboard present exactly when the manifest carries a spec"
    );

    // Enumerate the crash points of one durable index rewrite.
    let steps = {
        let dir = scratch("foldcount");
        copy_dir(&base, &dir);
        let mut plan = CrashPlan::count();
        save_index_with(&dir, &folded, INDEX_FILE, Some(&mut plan)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        plan.steps_seen()
    };
    assert!(steps >= 5, "expected >= 5 crash points, got {steps}");

    for step in 0..steps {
        for torn in [false, true] {
            let dir = scratch("foldcase");
            copy_dir(&base, &dir);
            let mut plan = CrashPlan::crash_at(step, torn, 0xF01D ^ (step << 1) ^ torn as u64);
            let err = save_index_with(&dir, &folded, INDEX_FILE, Some(&mut plan))
                .expect_err("plan must fire");
            assert!(is_injected_crash(&err), "step {step}: {err}");

            // Atomicity: the durable frame is entirely old or entirely
            // new, and always parses.
            let durable = load_index_any(&dir, INDEX_FILE).unwrap_or_else(|reject| {
                panic!("torn index after crash at step {step} torn={torn}: {reject:?}")
            });
            assert!(
                durable.generation == generation || durable.generation == old_generation,
                "unexpected durable generation {} at step {step}",
                durable.generation
            );
            // Both generations were written with the same manifest spec,
            // so the attribution fields must survive whichever frame won.
            assert_eq!(
                durable.validator_spec, spec,
                "attribution spec lost at step {step} torn={torn}"
            );
            assert_eq!(durable.validators.is_some(), spec.is_some());

            // Recovery: a fresh service reaches generation 2 without a
            // full rebuild — old index folds forward, new index loads.
            let registry = Registry::new();
            let service =
                QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
            assert_eq!(service.generation(), generation, "step {step} torn={torn}");
            assert_eq!(
                serde_json::to_string(service.engine_snapshot().index()).unwrap(),
                reference,
                "served index diverged at step {step} torn={torn}"
            );
            let snap = registry.snapshot();
            assert_eq!(
                snap.counter(names::QUERY_INDEX_FULL_REBUILDS),
                None,
                "full rebuild at step {step} torn={torn}"
            );
            assert_eq!(
                snap.counter(names::QUERY_INDEX_REBUILDS),
                None,
                "segment rescan at step {step} torn={torn}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any prefix truncation of a sealed segment — v1 or v2, one byte or
    /// the whole file — is either repaired bit-for-bit or explicitly
    /// quarantined. `frac` picks the cut point, `victim` the segment.
    #[test]
    fn prefix_truncations_recover_or_quarantine(frac in 0.0f64..1.0, victim in 0usize..2) {
        let (dir, reference) = seed_mixed_store("trunc");
        let meta = Manifest::load(&dir).unwrap().segments[victim].clone();
        let cut = (meta.bytes as f64 * frac) as u64;
        crash::truncate_to(&dir.join(&meta.file), cut).unwrap();
        assert_recovered_or_quarantined(
            &dir,
            &reference,
            &format!("truncate seg {victim} ({}) to {cut}/{}", meta.file, meta.bytes),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Any single-byte flip anywhere in a sealed segment — magic, body,
    /// columnar section, footer — is either repaired bit-for-bit or
    /// explicitly quarantined, never silently mis-scanned.
    #[test]
    fn single_byte_flips_recover_or_quarantine(frac in 0.0f64..1.0, victim in 0usize..2) {
        let (dir, reference) = seed_mixed_store("flip");
        let meta = Manifest::load(&dir).unwrap().segments[victim].clone();
        let offset = ((meta.bytes - 1) as f64 * frac) as u64;
        crash::flip_byte(&dir.join(&meta.file), offset).unwrap();
        assert_recovered_or_quarantined(
            &dir,
            &reference,
            &format!("flip seg {victim} ({}) byte {offset}/{}", meta.file, meta.bytes),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
