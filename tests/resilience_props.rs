//! Property tests for the resilience layer: jittered backoff bounds, the
//! circuit-breaker state machine, and overlap backfill, for arbitrary
//! inputs rather than crafted ones.

use std::time::Duration;

use proptest::prelude::*;

use sandwich_core::Dataset;
use sandwich_net::{BackoffSchedule, BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
use sandwich_types::{Hash, Keypair, SlotClock};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every jittered delay stays within `[base_delay, max_delay]` for any
    /// policy shape and any seed, no matter how long the schedule runs.
    #[test]
    fn jittered_backoff_stays_within_bounds(
        base_ms in 1u64..2_000,
        extra_ms in 0u64..10_000,
        seed in any::<u64>(),
        steps in 1usize..40,
    ) {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(base_ms),
            max_delay: Duration::from_millis(base_ms + extra_ms),
            jitter_seed: Some(seed),
            ..Default::default()
        };
        let mut schedule = BackoffSchedule::new(policy);
        for _ in 0..steps {
            let d = schedule.next_delay(None);
            prop_assert!(d >= policy.base_delay, "{d:?} below base");
            prop_assert!(d <= policy.max_delay, "{d:?} above cap");
        }
    }

    /// A `Retry-After` hint always wins over the computed backoff but is
    /// still capped at `max_delay`.
    #[test]
    fn retry_after_hint_is_honored_and_capped(
        base_ms in 1u64..500,
        cap_ms in 500u64..5_000,
        hint_ms in 0u64..20_000,
    ) {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(base_ms),
            max_delay: Duration::from_millis(cap_ms),
            ..Default::default()
        };
        let mut schedule = BackoffSchedule::new(policy);
        let d = schedule.next_delay(Some(Duration::from_millis(hint_ms)));
        prop_assert_eq!(d, Duration::from_millis(hint_ms.min(cap_ms)));
    }

    /// Breaker invariants under arbitrary success/failure/time sequences:
    /// it only opens after `failure_threshold` consecutive failures, a
    /// success always closes it, and once the cooldown has elapsed it
    /// always lets a probe through (never wedges shut).
    #[test]
    fn breaker_state_machine_invariants(
        threshold in 1u32..6,
        cooldown in 1u64..10_000,
        events in prop::collection::vec((any::<bool>(), 0u64..5_000), 1..60),
    ) {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown_ms: cooldown,
        });
        let mut now = 0u64;
        let mut consecutive = 0u32;
        for (ok, dt) in events {
            now += dt;
            let state = breaker.state_at(now);
            // Closed and half-open both admit traffic.
            prop_assert_eq!(breaker.allow(now), state != BreakerState::Open);
            if ok {
                breaker.record_success();
                consecutive = 0;
                prop_assert_eq!(breaker.state_at(now), BreakerState::Closed);
            } else {
                breaker.record_failure(now);
                consecutive += 1;
                let after = breaker.state_at(now);
                if consecutive < threshold && state == BreakerState::Closed {
                    prop_assert_eq!(after, BreakerState::Closed);
                } else {
                    // Tripped (or re-tripped from half-open): open now,
                    // probing again once the cooldown has elapsed.
                    prop_assert_eq!(after, BreakerState::Open);
                    prop_assert_eq!(
                        breaker.state_at(now + cooldown),
                        BreakerState::HalfOpen
                    );
                }
            }
        }
    }

    /// Backfill recovers an arbitrarily-sized dropped page: after a gap of
    /// `gap` bundles between two polls, walking back in pages of `page`
    /// reaches the previously-known range and restores every bundle in
    /// chronological order.
    #[test]
    fn backfill_recovers_any_dropped_page(
        head in 2u64..30,
        gap in 1u64..60,
        tail in 2u64..30,
        page in 1usize..25,
    ) {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        let entry = |slot: u64| page_entry(slot);

        // First poll: slots [0, head), newest first.
        let p1: Vec<_> = (0..head).rev().map(entry).collect();
        ds.ingest_page(&p1, &clock, 0);
        // Second poll misses [head, head+gap): slots [head+gap, head+gap+tail).
        let p2: Vec<_> = (head + gap..head + gap + tail).rev().map(entry).collect();
        let rec = ds.ingest_page(&p2, &clock, 0);
        prop_assert!(!rec.overlapped_previous);

        // Walk back from the oldest fetched slot in pages of `page`.
        let mut cursor = head + gap;
        let mut reached = false;
        for _ in 0..200 {
            let lo = cursor.saturating_sub(page as u64);
            let fill: Vec<_> = (lo..cursor).rev().map(entry).collect();
            if fill.is_empty() {
                reached = true; // start of history
                break;
            }
            let (_, touched_known) = ds.ingest_backfill_page(&fill, &clock);
            if touched_known {
                reached = true;
                break;
            }
            cursor = lo;
        }
        prop_assert!(reached, "never reached known bundles");
        ds.sort_chronological();

        // Every slot in [0, head+gap+tail) present exactly once, in order.
        let slots: Vec<u64> = ds.bundles().iter().map(|b| b.slot.0).collect();
        let expect: Vec<u64> = (0..head + gap + tail).collect();
        prop_assert_eq!(slots, expect);
    }
}

/// A minimal explorer page entry for slot `slot` (bundle id derived from
/// the slot, one transaction).
fn page_entry(slot: u64) -> sandwich_explorer::BundleSummaryJson {
    let kp = Keypair::from_label("props");
    sandwich_explorer::BundleSummaryJson {
        bundle_id: Hash::digest(&slot.to_le_bytes()),
        slot,
        timestamp_ms: slot * 400,
        tip_lamports: 1_000,
        transactions: vec![kp.sign(&slot.to_le_bytes())],
    }
}
