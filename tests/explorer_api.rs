//! API-contract tests for the explorer service, exercised from the outside
//! over real HTTP — the boundary the paper reverse-engineered.

use std::sync::Arc;

use parking_lot::RwLock;
use sandwich_explorer::{
    Explorer, ExplorerConfig, HistoryStore, RecentBundlesResponse, RetentionPolicy,
    TxDetailsRequest, TxDetailsResponse,
};
use sandwich_jito::LandedBundle;
use sandwich_net::HttpClient;
use sandwich_types::{Hash, Keypair, Lamports, Slot, SlotClock};

fn landed(slot: u64, len: usize, tip: u64, seed: u64) -> LandedBundle {
    let kp = Keypair::from_label("api");
    LandedBundle {
        bundle_id: Hash::digest(&seed.to_le_bytes()),
        slot: Slot(slot),
        tip: Lamports(tip),
        metas: (0..len)
            .map(|i| sandwich_ledger::TransactionMeta {
                tx_id: kp.sign(&(seed * 100 + i as u64).to_le_bytes()),
                signer: kp.pubkey(),
                fee: Lamports(5_000),
                priority_fee: Lamports::ZERO,
                success: true,
                error: None,
                sol_deltas: vec![],
                token_deltas: vec![],
            })
            .collect(),
    }
}

async fn start(bundles: Vec<LandedBundle>, cfg: ExplorerConfig) -> Explorer {
    let mut store = HistoryStore::new(SlotClock::default(), RetentionPolicy::All);
    for b in &bundles {
        store.record_bundle(b);
    }
    Explorer::start(Arc::new(RwLock::new(store)), cfg)
        .await
        .unwrap()
}

#[tokio::test]
async fn wire_format_is_camel_case_json() {
    let explorer = start(vec![landed(7, 2, 9_000, 1)], ExplorerConfig::default()).await;
    let client = HttpClient::new(explorer.addr());
    let raw = client.get("/api/v1/bundles?limit=1").await.unwrap();
    assert_eq!(raw.status, 200);
    assert_eq!(raw.header_value("content-type"), Some("application/json"));
    let text = String::from_utf8_lossy(&raw.body).to_string();
    for field in ["bundleId", "tipLamports", "timestampMs", "transactions"] {
        assert!(text.contains(field), "missing {field} in {text}");
    }
    explorer.shutdown().await;
}

#[tokio::test]
async fn default_page_is_200_like_the_real_site() {
    let bundles: Vec<_> = (0..300).map(|i| landed(i, 1, 1_000, i)).collect();
    let explorer = start(bundles, ExplorerConfig::default()).await;
    let client = HttpClient::new(explorer.addr());
    let page: RecentBundlesResponse = client.get_json("/api/v1/bundles").await.unwrap();
    assert_eq!(
        page.bundles.len(),
        200,
        "undocumented default the paper found"
    );
    explorer.shutdown().await;
}

#[tokio::test]
async fn pages_are_newest_first_and_consistent() {
    let bundles: Vec<_> = (0..50).map(|i| landed(i, 1, 1_000, i)).collect();
    let explorer = start(bundles, ExplorerConfig::default()).await;
    let client = HttpClient::new(explorer.addr());
    let page: RecentBundlesResponse = client.get_json("/api/v1/bundles?limit=50").await.unwrap();
    let slots: Vec<u64> = page.bundles.iter().map(|b| b.slot).collect();
    let mut sorted = slots.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(slots, sorted, "newest first");
    // Smaller page is a strict prefix.
    let small: RecentBundlesResponse = client.get_json("/api/v1/bundles?limit=10").await.unwrap();
    assert_eq!(
        small
            .bundles
            .iter()
            .map(|b| b.bundle_id)
            .collect::<Vec<_>>(),
        page.bundles[..10]
            .iter()
            .map(|b| b.bundle_id)
            .collect::<Vec<_>>(),
    );
    explorer.shutdown().await;
}

#[tokio::test]
async fn detail_response_aligns_with_request_order() {
    let b = landed(3, 3, 5_000, 42);
    let ids = [b.metas[2].tx_id, b.metas[0].tx_id];
    let explorer = start(vec![b], ExplorerConfig::default()).await;
    let client = HttpClient::new(explorer.addr());
    let unknown = Keypair::from_label("ghost").sign(b"x");
    let resp: TxDetailsResponse = client
        .post_json(
            "/api/v1/transactions",
            &TxDetailsRequest {
                tx_ids: vec![ids[0], unknown, ids[1]],
            },
        )
        .await
        .unwrap();
    assert_eq!(resp.transactions.len(), 3);
    assert_eq!(resp.transactions[0].as_ref().unwrap().tx_id, ids[0]);
    assert!(resp.transactions[1].is_none());
    assert_eq!(resp.transactions[2].as_ref().unwrap().tx_id, ids[1]);
    explorer.shutdown().await;
}

#[tokio::test]
async fn unknown_routes_and_methods() {
    let explorer = start(vec![], ExplorerConfig::default()).await;
    let client = HttpClient::new(explorer.addr());
    assert_eq!(client.get("/api/v2/bundles").await.unwrap().status, 404);
    assert_eq!(
        client.post("/api/v1/bundles", vec![]).await.unwrap().status,
        405
    );
    assert_eq!(
        client.get("/api/v1/transactions").await.unwrap().status,
        405
    );
    explorer.shutdown().await;
}

#[tokio::test]
async fn retention_policy_hides_untracked_lengths() {
    let mut store = HistoryStore::new(SlotClock::default(), RetentionPolicy::OnlyBundleLength(3));
    let b1 = landed(1, 1, 1_000, 1);
    let b3 = landed(2, 3, 1_000, 2);
    store.record_bundle(&b1);
    store.record_bundle(&b3);
    let explorer = Explorer::start(Arc::new(RwLock::new(store)), ExplorerConfig::default())
        .await
        .unwrap();
    let client = HttpClient::new(explorer.addr());
    let resp: TxDetailsResponse = client
        .post_json(
            "/api/v1/transactions",
            &TxDetailsRequest {
                tx_ids: vec![b1.metas[0].tx_id, b3.metas[0].tx_id],
            },
        )
        .await
        .unwrap();
    assert!(resp.transactions[0].is_none(), "len-1 details not retained");
    assert!(resp.transactions[1].is_some());
    explorer.shutdown().await;
}

#[tokio::test]
async fn collector_degrades_gracefully_under_rate_limit() {
    // 1 request/sec budget, collector hammers; some polls fail, none panic,
    // dataset stays consistent.
    let bundles: Vec<_> = (0..20).map(|i| landed(i, 1, 1_000, i)).collect();
    let explorer = start(
        bundles,
        ExplorerConfig {
            rate_limit: Some((2, 1.0)),
            ..Default::default()
        },
    )
    .await;
    let mut collector = sandwich_core::Collector::new(
        explorer.addr(),
        sandwich_core::CollectorConfig {
            page_limit: 10,
            retry: sandwich_net::RetryPolicy {
                max_attempts: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let clock = SlotClock::default();
    let mut failures = 0;
    for i in 0..6u64 {
        if collector.poll_bundles(&clock, 0, i).await.is_err() {
            failures += 1;
        }
    }
    assert!(failures >= 3, "rate limit bit: {failures} failures");
    assert!(collector.dataset.len() <= 10);
    explorer.shutdown().await;
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn metrics_endpoint_serves_live_counters_during_run() {
    use sandwich_core::{Collector, CollectorConfig};
    use sandwich_obs::Registry;
    use sandwich_sim::{ScenarioConfig, Simulation};

    // One registry shared by every layer, scraped over HTTP mid-run.
    let registry = Registry::new();
    let mut sim = Simulation::new(ScenarioConfig::tiny());
    sim.attach_registry(&registry);
    let clock = sim.clock();

    let store = Arc::new(RwLock::new(HistoryStore::new(clock, RetentionPolicy::All)));
    let explorer =
        Explorer::start_with_registry(store.clone(), ExplorerConfig::default(), registry.clone())
            .await
            .unwrap();
    let mut collector = Collector::with_registry(
        explorer.addr(),
        CollectorConfig {
            page_limit: 500,
            detail_batch: 100,
            ..Default::default()
        },
        &registry,
    );

    let mut tick = 0u64;
    let mut now_ms = 0u64;
    while let Some(outcome) = sim.step() {
        store.write().record_slot(&outcome.result);
        now_ms = clock.unix_ms(outcome.result.block.slot);
        if tick.is_multiple_of(4) {
            let _ = collector.poll_bundles(&clock, outcome.day, now_ms).await;
        }
        tick += 1;
    }
    collector.fetch_pending_details(now_ms).await.unwrap();

    let snap = registry.snapshot();
    for prefix in ["sim.", "engine.", "bank.", "explorer.", "collector."] {
        assert!(snap.counter_sum(prefix) > 0, "no live {prefix} counters");
    }

    // The JSON scrape carries the same live values.
    let client = HttpClient::new(explorer.addr());
    let resp = client.get("/metrics").await.unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header_value("content-type"), Some("application/json"));
    let body = String::from_utf8(resp.body.to_vec()).unwrap();
    for (name, value) in [
        ("sim.ticks", snap.counter("sim.ticks").unwrap()),
        (
            "bank.tx_executed",
            snap.counter("bank.tx_executed").unwrap(),
        ),
        (
            "collector.polls_ok",
            snap.counter("collector.polls_ok").unwrap(),
        ),
        (
            "explorer.bundles_requests",
            snap.counter("explorer.bundles_requests").unwrap(),
        ),
    ] {
        assert!(value > 0, "{name} stayed zero");
        assert!(
            body.contains(&format!("\"{name}\":{value}")),
            "missing {name}={value} in {body}"
        );
    }

    // And the Prometheus rendering serves the same registry.
    let prom = client.get("/metrics?format=prometheus").await.unwrap();
    let text = String::from_utf8(prom.body.to_vec()).unwrap();
    assert!(text.contains("# TYPE sim_ticks counter"), "{text}");
    assert!(text.contains("engine_tip_lamports_bucket"), "{text}");

    explorer.shutdown().await;
}
