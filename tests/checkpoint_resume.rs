//! Checkpoint/resume: killing the collector mid-run and resuming from the
//! checkpoint must yield a dataset identical to an uninterrupted run over
//! the same seed — same bundles, same details, same poll ledger. Faults
//! are injected throughout to prove the plan replays identically on the
//! simulated clock.

use std::io::BufReader;
use std::time::Duration;

use sandwich_core::{
    run_measurement_with, Checkpoint, CollectorConfig, MeasurementRun, PipelineConfig, RunOptions,
};
use sandwich_explorer::{ExplorerConfig, FaultPlanConfig};
use sandwich_net::RetryPolicy;
use sandwich_sim::{ScenarioConfig, Simulation};

fn faulty_pipeline(scenario: &ScenarioConfig) -> PipelineConfig {
    PipelineConfig {
        explorer: ExplorerConfig {
            // Enough 503s that retries fire constantly; decisions are keyed
            // on (seed, sim-time bucket, ordinal), so both runs see the
            // same faults at the same ticks.
            faults: FaultPlanConfig::uniform_503(0.3, 11),
            ..Default::default()
        },
        collector: CollectorConfig {
            page_limit: sandwich_core::scaled_page_limit(scenario, 1),
            detail_batch: 100,
            retry: RetryPolicy {
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(10),
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    }
}

fn bundle_ids(run: &MeasurementRun) -> Vec<sandwich_jito::BundleId> {
    run.dataset.bundles().iter().map(|b| b.bundle_id).collect()
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn killed_run_resumed_from_checkpoint_equals_uninterrupted_run() {
    let scenario = ScenarioConfig {
        downtime_days: vec![],
        ..ScenarioConfig::tiny()
    };

    // Reference: one uninterrupted run.
    let mut sim = Simulation::new(scenario.clone());
    let full = run_measurement_with(&mut sim, faulty_pipeline(&scenario), RunOptions::default())
        .await
        .unwrap();
    assert!(!full.halted);

    // The same run killed at tick 70...
    let mut sim1 = Simulation::new(scenario.clone());
    let halted = run_measurement_with(
        &mut sim1,
        faulty_pipeline(&scenario),
        RunOptions {
            halt_at_tick: Some(70),
            resume: None,
        },
    )
    .await
    .unwrap();
    assert!(halted.halted);
    assert_eq!(halted.next_tick, 70);
    let collected_at_halt = halted.dataset.len();
    assert!(collected_at_halt > 0);
    assert!(collected_at_halt < full.dataset.len());

    // ...checkpointed through the wire format...
    let mut buf = Vec::new();
    halted.into_checkpoint().write(&mut buf).unwrap();
    let cp = Checkpoint::read(BufReader::new(&buf[..])).unwrap();
    assert_eq!(cp.next_tick, 70);
    assert_eq!(cp.dataset.len(), collected_at_halt);

    // ...and resumed against a fresh simulation of the same seed.
    let mut sim2 = Simulation::new(scenario.clone());
    let resumed = run_measurement_with(
        &mut sim2,
        faulty_pipeline(&scenario),
        RunOptions {
            halt_at_tick: None,
            resume: Some(cp),
        },
    )
    .await
    .unwrap();
    assert!(!resumed.halted);

    // No data loss, no duplication: identical bundles in identical order,
    // identical detail coverage, identical poll ledger.
    assert_eq!(bundle_ids(&full), bundle_ids(&resumed));
    assert_eq!(full.dataset.detail_count(), resumed.dataset.detail_count());
    assert_eq!(full.dataset.polls().len(), resumed.dataset.polls().len());
    assert_eq!(
        full.collector_stats.polls_ok,
        resumed.collector_stats.polls_ok
    );

    // The resumed run's ledger still balances after restoring counters.
    assert_eq!(
        resumed.metrics.counter("pipeline.poll_errors"),
        Some(resumed.polls_failed),
    );
    assert_eq!(
        resumed.metrics.counter("collector.polls_failed"),
        Some(resumed.collector_stats.polls_failed),
    );

    // And the analysis downstream of the two datasets agrees.
    let days = scenario.days;
    let cfg = sandwich_core::AnalysisConfig::paper_defaults(days);
    assert_eq!(
        full.analyze(&cfg).total_sandwiches(),
        resumed.analyze(&cfg).total_sandwiches()
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn halting_at_tick_zero_resumes_into_a_complete_run() {
    // Degenerate kill: nothing collected yet. Resume must still produce
    // the full dataset.
    let scenario = ScenarioConfig {
        downtime_days: vec![],
        ..ScenarioConfig::tiny()
    };
    let mut sim1 = Simulation::new(scenario.clone());
    let halted = run_measurement_with(
        &mut sim1,
        faulty_pipeline(&scenario),
        RunOptions {
            halt_at_tick: Some(0),
            resume: None,
        },
    )
    .await
    .unwrap();
    assert!(halted.dataset.is_empty());

    let mut sim2 = Simulation::new(scenario.clone());
    let resumed = run_measurement_with(
        &mut sim2,
        faulty_pipeline(&scenario),
        RunOptions {
            halt_at_tick: None,
            resume: Some(halted.into_checkpoint()),
        },
    )
    .await
    .unwrap();

    let pipeline = faulty_pipeline(&scenario);
    let mut sim3 = Simulation::new(scenario);
    let full = run_measurement_with(&mut sim3, pipeline, RunOptions::default())
        .await
        .unwrap();
    assert_eq!(bundle_ids(&full), bundle_ids(&resumed));
}
