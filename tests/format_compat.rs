//! Cross-version store compatibility: a store directory holding a mix of
//! v1 (pre-columnar, `SWSEG01`) and v2 (columnar, `SWSEG02`) segments must
//! scan to one byte-identical report on every path — the zero-copy scan
//! falls back to a full decode per v1 segment, takes the columnar fast
//! path per v2 segment, and neither choice may leak into the result.

use sandwich_core::{scan_store, scan_store_degraded, scan_store_materializing, AnalysisConfig};
use sandwich_ledger::{SolDelta, TokenDelta, TransactionMeta};
use sandwich_store::codec::SegmentData;
use sandwich_store::records::{CollectedBundle, CollectedDetail};
use sandwich_store::segment::{encode_segment, encode_segment_v1, write_segment_file};
use sandwich_store::{BundleStore, Manifest, SegmentMeta};
use sandwich_types::{Keypair, LamportDelta, Lamports, Pubkey, Slot, SlotClock};

/// One segment's worth of records: a detectable sandwich trio plus a
/// length-1 bundle, offset by `base` so the two segments don't collide.
fn segment_data(base: u64) -> SegmentData {
    let attacker = Keypair::from_label("compat:attacker");
    let victim = Keypair::from_label("compat:victim");
    let mint = Pubkey::derive("compat:mint");
    let trio: Vec<_> = (0..3u64)
        .map(|i| attacker.sign(&(base + i).to_le_bytes()))
        .collect();
    let bundle_id = sandwich_jito::bundle_id_of(&trio);
    let swap = |n: usize, kp: &Keypair, sol: i64, tokens: i128| TransactionMeta {
        tx_id: trio[n],
        signer: kp.pubkey(),
        fee: Lamports(5_000),
        priority_fee: Lamports::ZERO,
        success: true,
        error: None,
        sol_deltas: vec![SolDelta {
            account: kp.pubkey(),
            delta: LamportDelta(sol - 5_000),
        }],
        token_deltas: vec![TokenDelta {
            owner: kp.pubkey(),
            mint,
            delta: tokens,
        }],
    };
    let solo = vec![victim.sign(&base.to_le_bytes())];
    SegmentData {
        bundles: vec![
            CollectedBundle {
                bundle_id,
                slot: Slot(base),
                timestamp_ms: base * 400,
                tip: Lamports(2_000_000),
                tx_ids: trio.clone(),
            },
            CollectedBundle {
                bundle_id: sandwich_jito::bundle_id_of(&solo),
                slot: Slot(base + 5),
                timestamp_ms: (base + 5) * 400,
                tip: Lamports(40_000),
                tx_ids: solo,
            },
        ],
        details: vec![
            CollectedDetail {
                bundle_id,
                slot: Slot(base),
                meta: swap(0, &attacker, -100_000_000_000, 10_000),
            },
            CollectedDetail {
                bundle_id,
                slot: Slot(base),
                meta: swap(1, &victim, -120_000_000_000, 10_000),
            },
            CollectedDetail {
                bundle_id,
                slot: Slot(base),
                meta: swap(2, &attacker, 115_000_000_000, -10_000),
            },
        ],
        polls: vec![],
    }
}

#[test]
fn mixed_version_store_scans_byte_identically() {
    let dir = std::env::temp_dir().join(format!("format-compat-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Hand-assemble the store: segment 0 sealed by the old v1 encoder,
    // segment 1 by the current columnar one, one shared manifest.
    let mut manifest = Manifest::new();
    for (i, (data, image, footer)) in [
        {
            let d = segment_data(100);
            let (img, f) = encode_segment_v1(&d);
            (d, img, f)
        },
        {
            let d = segment_data(100_000);
            let (img, f) = encode_segment(&d);
            (d, img, f)
        },
    ]
    .into_iter()
    .enumerate()
    {
        let file = format!("seg-{i:05}.seg");
        write_segment_file(&dir.join(&file), &image).unwrap();
        manifest.segments.push(SegmentMeta {
            file,
            bundles: data.bundles.len() as u64,
            details: data.details.len() as u64,
            polls: data.polls.len() as u64,
            min_slot: footer.min_slot,
            max_slot: footer.max_slot,
            bytes: image.len() as u64,
            checksum: format!("{:016x}", footer.checksum),
        });
    }
    manifest.save(&dir).unwrap();

    let store = BundleStore::open(&dir).unwrap();
    let clock = SlotClock::default();
    let cfg = AnalysisConfig::paper_defaults(1);

    let reference =
        serde_json::to_string(&scan_store_materializing(&store, &clock, &cfg, 1).unwrap()).unwrap();
    for threads in [1, 2, 4] {
        let scanned =
            serde_json::to_string(&scan_store(&store, &clock, &cfg, threads).unwrap()).unwrap();
        assert_eq!(
            scanned, reference,
            "mixed-version scan diverged at {threads} threads"
        );
    }

    // Both planted sandwiches (one per segment, one per format) are found.
    let report = scan_store(&store, &clock, &cfg, 2).unwrap();
    assert_eq!(report.findings.len(), 2, "one sandwich per segment version");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// A mixed-version store with one quarantined segment keeps scanning: the
/// serving segments (one v1, one v2) produce the same results on every
/// path, and the degraded scan reports the quarantined segment's bundles
/// exactly — the cross-version fallback and the quarantine bookkeeping
/// must compose.
#[test]
fn quarantined_segment_in_a_mixed_store_scans_with_exact_coverage() {
    let dir = std::env::temp_dir().join(format!("format-compat-q-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Three segments: v1, v2, and a second v2 that will be damaged.
    let mut manifest = Manifest::new();
    let specs: [(bool, u64); 3] = [(true, 100), (false, 100_000), (false, 200_000)];
    for (i, (v1, base)) in specs.into_iter().enumerate() {
        let data = segment_data(base);
        let (image, footer) = if v1 {
            encode_segment_v1(&data)
        } else {
            encode_segment(&data)
        };
        let file = format!("seg-{i:05}.seg");
        write_segment_file(&dir.join(&file), &image).unwrap();
        manifest.segments.push(SegmentMeta {
            file,
            bundles: data.bundles.len() as u64,
            details: data.details.len() as u64,
            polls: data.polls.len() as u64,
            min_slot: footer.min_slot,
            max_slot: footer.max_slot,
            bytes: image.len() as u64,
            checksum: format!("{:016x}", footer.checksum),
        });
    }
    manifest.save(&dir).unwrap();

    // Damage the third segment's body (unrecoverable by construction) and
    // let the doctor quarantine it.
    sandwich_store::crash::flip_byte(&dir.join("seg-00002.seg"), 12).unwrap();
    let report = sandwich_store::doctor::repair(&dir).unwrap();
    assert_eq!(report.quarantined, 1, "the damaged v2 segment quarantines");
    assert_eq!(report.clean, 2, "the v1 and v2 serving segments are clean");

    let store = BundleStore::open(&dir).unwrap();
    assert_eq!(store.segments().len(), 2);
    assert_eq!(store.quarantined().len(), 1);

    let clock = SlotClock::default();
    let cfg = AnalysisConfig::paper_defaults(1);
    let reference =
        serde_json::to_string(&scan_store_materializing(&store, &clock, &cfg, 1).unwrap()).unwrap();
    let (degraded, coverage) = scan_store_degraded(&store, &clock, &cfg, 2, None).unwrap();
    assert_eq!(
        serde_json::to_string(&degraded).unwrap(),
        reference,
        "degraded scan over the serving segments matches the materializing scan"
    );
    assert_eq!(coverage.segments_scanned, 2);
    assert_eq!(coverage.segments_quarantined, 1);
    assert_eq!(
        coverage.bundles_quarantined, 2,
        "both victim bundles accounted"
    );
    assert!(!coverage.complete());

    // One sandwich per *serving* segment: the quarantined one is excluded
    // explicitly, not silently miscounted.
    let scanned = scan_store(&store, &clock, &cfg, 2).unwrap();
    assert_eq!(scanned.findings.len(), 2);

    std::fs::remove_dir_all(&dir).unwrap();
}
