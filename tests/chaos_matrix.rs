//! Chaos matrix: the full measurement pipeline run under every fault
//! profile the explorer's plan can inject. Each profile must finish in
//! bounded wall-clock time, account for every failed poll, and still
//! produce an analyzable dataset with recall ≥ 0.4 against ground truth.

use std::time::{Duration, Instant};

use sandwich_core::{AnalysisConfig, CollectorConfig, MeasurementRun, PipelineConfig};
use sandwich_explorer::{BurstConfig, ExplorerConfig, FaultPlanConfig, LatencyConfig};
use sandwich_net::{ClientTimeouts, RetryPolicy};
use sandwich_sim::{ScenarioConfig, Simulation};

/// A retry ladder in test-scale milliseconds so retry-heavy profiles stay
/// fast; jitter stays on to exercise the decorrelated path.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(40),
        ..Default::default()
    }
}

struct ChaosOutcome {
    run: MeasurementRun,
    truth_sandwiches: u64,
    coverage: f64,
    recall: f64,
    elapsed: Duration,
}

/// Run the tiny scenario (scheduled downtime cleared so each profile is
/// isolated) under one fault profile.
async fn run_profile(faults: FaultPlanConfig, timeouts: ClientTimeouts) -> ChaosOutcome {
    let scenario = ScenarioConfig {
        downtime_days: vec![],
        ..ScenarioConfig::tiny()
    };
    let days = scenario.days;
    let pipeline = PipelineConfig {
        explorer: ExplorerConfig {
            faults,
            ..Default::default()
        },
        collector: CollectorConfig {
            page_limit: sandwich_core::scaled_page_limit(&scenario, 1),
            detail_batch: 100,
            retry: fast_retry(),
            timeouts,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut sim = Simulation::new(scenario);
    let started = Instant::now();
    let run = sandwich_core::run_measurement(&mut sim, pipeline)
        .await
        .unwrap();
    let elapsed = started.elapsed();
    let truth = sim.truth();

    let total_truth: u64 = truth.per_day.iter().map(|d| d.total_bundles()).sum();
    let coverage = run.dataset.len() as f64 / total_truth as f64;
    let report = run.analyze(&AnalysisConfig::paper_defaults(days));
    let recall = report.total_sandwiches() as f64 / truth.total_sandwiches() as f64;

    ChaosOutcome {
        run,
        truth_sandwiches: truth.total_sandwiches(),
        coverage,
        recall,
        elapsed,
    }
}

/// The assertions every profile must satisfy, whatever it injects.
fn assert_survived(name: &str, out: &ChaosOutcome) {
    assert!(
        out.elapsed < Duration::from_secs(90),
        "{name}: unbounded wall-clock ({:?})",
        out.elapsed
    );
    assert!(
        out.run.collector_stats.polls_ok > 0,
        "{name}: no poll ever succeeded"
    );
    // Every missed epoch is accounted for, at both layers, identically.
    assert_eq!(
        out.run.metrics.counter("pipeline.poll_errors"),
        Some(out.run.polls_failed),
        "{name}: pipeline ledger out of step with collector"
    );
    assert_eq!(
        out.run.metrics.counter("collector.polls_failed"),
        Some(out.run.collector_stats.polls_failed),
        "{name}: collector metrics out of step with stats"
    );
    assert!(
        out.recall >= 0.4,
        "{name}: recall {:.2} below 0.4 (coverage {:.2})",
        out.recall,
        out.coverage
    );
    assert!(out.truth_sandwiches > 0, "{name}: empty ground truth");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn clean_profile_is_the_baseline() {
    let out = run_profile(FaultPlanConfig::default(), ClientTimeouts::default()).await;
    assert_survived("clean", &out);
    assert_eq!(out.run.polls_failed, 0);
    assert!(out.coverage > 0.9, "clean coverage {:.2}", out.coverage);
    // Nothing injected on the clean profile.
    assert_eq!(out.run.metrics.counter_sum("faults.injected."), 0);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn outage_window_fails_polls_and_backfill_heals_the_edge() {
    // A half-day outage starting at day 1 of the measurement clock (fault
    // windows live on the same simulated unix-ms timeline as the polls).
    let clock = sandwich_types::SlotClock::default();
    let start = clock.unix_ms(clock.day_start(1));
    let faults = FaultPlanConfig {
        outages_ms: vec![(start, start + 43_200_000)],
        ..Default::default()
    };
    let out = run_profile(faults, ClientTimeouts::default()).await;
    assert_survived("outage", &out);
    let stats = &out.run.collector_stats;
    assert!(stats.polls_failed > 0, "outage never bit");
    assert!(
        out.run
            .metrics
            .counter("faults.injected.outage")
            .unwrap_or(0)
            > 0,
        "no outage faults recorded"
    );
    // The first post-outage poll walks the gap backwards.
    assert!(stats.backfill_pages > 0);
    assert!(stats.bundles_recovered > 0);
    // A 24-epoch gap exceeds the backfill budget, so a visible gap remains,
    // but overall coverage stays high.
    assert!(out.coverage > 0.8, "outage coverage {:.2}", out.coverage);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn markov_bursts_cost_epochs_then_backfill_recovers_them() {
    // Correlated bad windows: whole polling epochs fail while the chain is
    // in the bad state (fail_rate 1.0), exactly the "missed epoch" shape
    // the paper reports. Backfill must recover ≥ 90% of the bundles those
    // non-outage missed epochs dropped.
    let faults = FaultPlanConfig {
        burst: Some(BurstConfig {
            enter: 0.2,
            exit: 0.5,
            fail_rate: 1.0,
        }),
        ..Default::default()
    };
    let out = run_profile(faults, ClientTimeouts::default()).await;
    assert_survived("burst", &out);
    let stats = &out.run.collector_stats;
    assert!(stats.polls_failed > 0, "bursts never bit");
    assert!(
        out.run
            .metrics
            .counter("faults.injected.burst_503")
            .unwrap_or(0)
            > 0,
        "no burst faults recorded"
    );
    assert!(stats.bundles_recovered > 0, "backfill recovered nothing");
    // ≥ 90% of all bundles collected despite dozens of missed epochs:
    // the paper's overlap-miss pathology, self-healed.
    assert!(out.coverage >= 0.9, "burst coverage {:.2}", out.coverage);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn injected_latency_slows_but_never_starves() {
    let faults = FaultPlanConfig {
        latency: Some(LatencyConfig {
            rate: 0.3,
            min_ms: 1,
            max_ms: 20,
        }),
        ..Default::default()
    };
    let out = run_profile(faults, ClientTimeouts::default()).await;
    assert_survived("latency", &out);
    assert!(
        out.run
            .metrics
            .counter("faults.injected.latency")
            .unwrap_or(0)
            > 0,
        "no latency faults recorded"
    );
    // Latency alone (well under the total deadline) costs nothing.
    assert_eq!(out.run.polls_failed, 0);
    assert!(out.coverage > 0.9, "latency coverage {:.2}", out.coverage);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn stalled_bodies_are_cut_by_the_client_deadline() {
    let faults = FaultPlanConfig {
        stall_rate: 0.15,
        ..Default::default()
    };
    // A tight total deadline turns each stall into a fast, retryable
    // timeout instead of a hung collector.
    let timeouts = ClientTimeouts {
        total: Duration::from_millis(200),
        ..Default::default()
    };
    let out = run_profile(faults, timeouts).await;
    assert_survived("stall", &out);
    let stats = &out.run.collector_stats;
    assert!(
        out.run
            .metrics
            .counter("faults.injected.stall")
            .unwrap_or(0)
            > 0,
        "no stalls recorded"
    );
    assert!(stats.timeouts > 0, "stalls never tripped the deadline");
    assert_eq!(
        out.run.metrics.counter("client.timeouts"),
        Some(stats.timeouts)
    );
    assert!(out.coverage > 0.85, "stall coverage {:.2}", out.coverage);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn corrupt_bodies_fail_fast_without_retry_storms() {
    let faults = FaultPlanConfig {
        corrupt_rate: 0.1,
        ..Default::default()
    };
    let out = run_profile(faults, ClientTimeouts::default()).await;
    assert_survived("corrupt", &out);
    assert!(
        out.run
            .metrics
            .counter("faults.injected.corrupt")
            .unwrap_or(0)
            > 0,
        "no corruption recorded"
    );
    // Decode errors are permanent: each costs exactly one attempt, so the
    // attempt count stays close to the request count (no retry ladders
    // burned on garbage).
    let stats = &out.run.collector_stats;
    assert!(stats.polls_failed > 0, "corruption never bit");
    assert!(out.coverage > 0.75, "corrupt coverage {:.2}", out.coverage);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn rate_limit_429s_pace_the_collector_via_retry_after() {
    let faults = FaultPlanConfig {
        rate_429: 0.2,
        retry_after_ms: 20,
        ..Default::default()
    };
    let out = run_profile(faults, ClientTimeouts::default()).await;
    assert_survived("429", &out);
    assert!(
        out.run
            .metrics
            .counter("faults.injected.rate_429")
            .unwrap_or(0)
            > 0,
        "no 429s recorded"
    );
    // Hinted retries absorb a 20% reject rate completely.
    assert_eq!(out.run.polls_failed, 0, "429s should be retried away");
    assert!(out.coverage > 0.9, "429 coverage {:.2}", out.coverage);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn resilience_metrics_are_scrapable_in_both_formats() {
    use parking_lot::RwLock;
    use sandwich_core::Collector;
    use sandwich_explorer::{Explorer, HistoryStore, RetentionPolicy};
    use sandwich_net::HttpClient;
    use sandwich_obs::Registry;
    use std::sync::Arc;

    // Wire an explorer with a lossy fault plan and scrape /metrics live:
    // every new resilience metric must appear in the JSON scrape, and the
    // Prometheus rendering must carry the same families.
    let registry = Registry::new();
    let mut sim = Simulation::new(ScenarioConfig {
        downtime_days: vec![],
        ..ScenarioConfig::tiny()
    });
    sim.attach_registry(&registry);
    let clock = sim.clock();
    let store = Arc::new(RwLock::new(HistoryStore::new(clock, RetentionPolicy::All)));
    let explorer = Explorer::start_with_registry(
        store.clone(),
        ExplorerConfig {
            faults: FaultPlanConfig::uniform_503(0.4, 21),
            ..Default::default()
        },
        registry.clone(),
    )
    .await
    .unwrap();
    let mut collector = Collector::with_registry(
        explorer.addr(),
        CollectorConfig {
            page_limit: 200,
            detail_batch: 100,
            retry: fast_retry(),
            ..Default::default()
        },
        &registry,
    );

    let mut tick = 0u64;
    while let Some(outcome) = sim.step() {
        store.write().record_slot(&outcome.result);
        let now_ms = clock.unix_ms(outcome.result.block.slot);
        explorer.set_now_ms(now_ms);
        if tick.is_multiple_of(4) {
            let _ = collector.poll_bundles(&clock, outcome.day, now_ms).await;
        }
        tick += 1;
    }

    let client = HttpClient::new(explorer.addr());
    let json = client.get("/metrics").await.unwrap();
    assert_eq!(json.status, 200);
    let body = String::from_utf8(json.body.to_vec()).unwrap();
    for name in [
        "client.timeouts",
        "client.breaker_state",
        "collector.backfill_pages",
        "collector.bundles_recovered",
        "collector.polls_skipped_breaker",
        "faults.injected.uniform_503",
    ] {
        assert!(
            body.contains(&format!("\"{name}\":")),
            "missing {name} in {body}"
        );
    }

    let prom = client.get("/metrics?format=prometheus").await.unwrap();
    let text = String::from_utf8(prom.body.to_vec()).unwrap();
    for family in [
        "# TYPE client_timeouts counter",
        "# TYPE client_breaker_state gauge",
        "# TYPE collector_backfill_pages counter",
        "# TYPE collector_bundles_recovered counter",
        "# TYPE faults_injected_uniform_503 counter",
    ] {
        assert!(
            text.contains(family),
            "missing `{family}` in prometheus text"
        );
    }
    // The injected faults actually fired and were counted.
    assert!(
        registry
            .snapshot()
            .counter("faults.injected.uniform_503")
            .unwrap_or(0)
            > 0
    );
    explorer.shutdown().await;
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn kitchen_sink_profile_survives_everything_at_once() {
    let faults = FaultPlanConfig {
        burst: Some(BurstConfig {
            enter: 0.1,
            exit: 0.5,
            fail_rate: 0.8,
        }),
        uniform_503_rate: 0.05,
        rate_429: 0.05,
        retry_after_ms: 20,
        stall_rate: 0.03,
        truncate_rate: 0.03,
        corrupt_rate: 0.03,
        latency: Some(LatencyConfig {
            rate: 0.2,
            min_ms: 1,
            max_ms: 10,
        }),
        ..Default::default()
    };
    let timeouts = ClientTimeouts {
        total: Duration::from_millis(200),
        ..Default::default()
    };
    let out = run_profile(faults, timeouts).await;
    assert_survived("kitchen-sink", &out);
    assert!(
        out.coverage > 0.7,
        "kitchen-sink coverage {:.2}",
        out.coverage
    );
    // Several distinct fault kinds actually fired.
    let fired = [
        "burst_503",
        "uniform_503",
        "rate_429",
        "stall",
        "truncate",
        "corrupt",
        "latency",
    ]
    .iter()
    .filter(|k| {
        out.run
            .metrics
            .counter(&format!("faults.injected.{k}"))
            .unwrap_or(0)
            > 0
    })
    .count();
    assert!(fired >= 5, "only {fired} fault kinds fired");
}
