//! Ground-truth conformance: the oracle joins analysis output back to the
//! simulator's per-bundle labels and the near-miss fuzzer probes every
//! criterion boundary. Together they pin the detector's precision, recall,
//! and the load-bearing-ness of each of the paper's five criteria.

use sandwich_core::{
    conformance, detect, detect_in_bundle, AnalysisConfig, CollectorConfig, DetectorConfig,
    PipelineConfig,
};
use sandwich_sim::{NearMissFamily, NearMissFuzzer, ScenarioConfig, Simulation};
use sandwich_types::DEFENSIVE_TIP_THRESHOLD;

fn tiny_pipeline(scenario: &ScenarioConfig) -> PipelineConfig {
    PipelineConfig {
        collector: CollectorConfig {
            page_limit: sandwich_core::scaled_page_limit(scenario, 1),
            ..Default::default()
        },
        ..Default::default()
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn oracle_scores_the_detector_perfectly_on_labeled_ground_truth() {
    let scenario = ScenarioConfig {
        downtime_days: vec![], // full coverage so recall is exact
        ..ScenarioConfig::tiny()
    };
    let days = scenario.days;
    let pipeline = tiny_pipeline(&scenario);
    let mut sim = Simulation::new(scenario);
    let run = sandwich_core::run_measurement(&mut sim, pipeline)
        .await
        .unwrap();
    let report = run.analyze(&AnalysisConfig::paper_defaults(days));
    let labels = sim.labels();
    assert!(!labels.is_empty(), "the sim labels every landed bundle");

    let c = conformance::score(&report, labels);

    // The headline acceptance: perfect precision and recall per bundle,
    // every finding joined to a label, every near-miss rejected outright.
    assert_eq!(c.detector.false_positives, 0, "{c:?}");
    assert_eq!(c.detector.false_negatives, 0, "{c:?}");
    assert!(c.detector.true_positives > 0, "no sandwiches landed at all");
    assert_eq!(c.detector.precision(), 1.0);
    assert_eq!(c.detector.recall(), 1.0);
    assert_eq!(c.unlabeled_findings, 0, "finding failed to join to a label");
    assert!(c.near_misses_all_rejected(), "{:?}", c.near_miss_flagged);
    assert!(c.near_misses_labeled_total() > 0, "no decoys generated");

    // Victim-loss quantification is exact at the sim's single-pool scale,
    // and gains match once the bundle tip is netted out of the gross gain.
    assert_eq!(c.quant.max_abs_loss_err(), 0, "{:?}", c.quant);
    assert!(c.quant.gain_err_lamports.iter().all(|&e| e == 0));

    // The ablation grid: the full detector admits no near-miss, and every
    // criterion with labeled decoys in this run is load-bearing (disabling
    // it admits its matching family).
    let grid = conformance::ablation_grid(&run.dataset, labels).unwrap();
    assert_eq!(grid.len(), 5);
    let mut load_bearing = 0;
    for row in &grid {
        assert_eq!(row.full_detector_admitted, 0, "{row:?}");
        if row.labeled_matching > 0 {
            assert!(row.admitted_matching > 0, "criterion inert: {row:?}");
            load_bearing += 1;
        }
    }
    assert!(
        load_bearing >= 3,
        "too few families at tiny scale: {grid:?}"
    );

    // Defensive classifier: perfect at the paper's 100k threshold.
    let sweep = conformance::defensive_confusion(
        run.dataset.bundles().iter(),
        labels,
        &[DEFENSIVE_TIP_THRESHOLD.0],
    );
    let (_, m) = &sweep[0];
    assert!(m.true_positives > 0);
    assert_eq!(m.false_positives, 0, "{m:?}");
    assert_eq!(m.false_negatives, 0, "{m:?}");

    // The scorecard lands on /metrics under conformance.*.
    let registry = sandwich_obs::Registry::new();
    conformance::record(&registry, &c);
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter(sandwich_obs::names::CONFORMANCE_TRUE_POSITIVES),
        Some(c.detector.true_positives)
    );
    assert_eq!(
        snap.counter(sandwich_obs::names::CONFORMANCE_NEAR_MISSES_FLAGGED),
        Some(0)
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn oracle_scores_attribution_perfectly_on_labeled_ground_truth() {
    let scenario = ScenarioConfig {
        downtime_days: vec![], // full coverage so every sandwich is joined
        ..ScenarioConfig::tiny()
    };
    let pipeline = PipelineConfig {
        store: Some(sandwich_core::StoreOptions {
            segment_bundles: 500,
            ..sandwich_core::StoreOptions::new(
                std::env::temp_dir().join(format!("swattrib-conf-{}", std::process::id())),
            )
        }),
        ..tiny_pipeline(&scenario)
    };
    let _ = std::fs::remove_dir_all(&pipeline.store.as_ref().unwrap().dir);
    let mut sim = Simulation::new(scenario);
    let run = sandwich_core::run_measurement(&mut sim, pipeline)
        .await
        .unwrap();
    let store = run.store.as_ref().expect("store mode");
    let labels = sim.labels();

    // The index joins each sealed sandwich to its slot leader from the
    // manifest's validator spec — public chain data only, no labels.
    let index =
        sandwich_query::build_index(store, &sandwich_query::QueryConfig::default()).unwrap();
    let validators = index
        .validators
        .as_ref()
        .expect("the pipeline stamps the validator spec into the manifest");
    let leaderboard: Vec<_> = validators
        .iter()
        .map(|v| (v.pubkey, v.sandwiches))
        .collect();

    let a = conformance::score_attribution(
        index.refs.iter().map(|r| (&r.bundle_id, r.leader.as_ref())),
        &leaderboard,
        labels,
    );

    // The headline acceptance: every detected sandwich attributed to the
    // right leader, the colluder set recovered exactly, counts agreeing.
    assert!(a.attributed > 0, "no sandwiches attributed at all");
    assert_eq!(a.wrong_leaders, 0, "{a:?}");
    assert_eq!(a.unattributed, 0, "{a:?}");
    assert_eq!(a.unprovenanced, 0, "{a:?}");
    assert_eq!(a.leader_accuracy(), 1.0);
    assert_eq!(a.colluders.precision(), 1.0, "{a:?}");
    assert_eq!(a.colluders.recall(), 1.0, "{a:?}");
    assert!(
        a.colluders.true_positives > 0,
        "no colluders inferred: {a:?}"
    );
    assert!(
        a.colluders.true_negatives > 0,
        "honest validators must stay unaccused: {a:?}"
    );
    assert!(a.counts_match, "{a:?}");
    assert!(a.perfect(), "{a:?}");

    // Sandwiches land *only* in colluder-led slots: every leaderboard
    // entry with sandwiches is a ground-truth colluder by construction.
    let colluders = a.colluders.true_positives as usize;
    assert!(
        validators.iter().filter(|v| v.sandwiches > 0).count() == colluders,
        "sandwiches outside colluder-led slots"
    );

    std::fs::remove_dir_all(store.dir()).unwrap();
}

#[test]
fn fuzzer_probes_every_criterion_boundary() {
    let full = DetectorConfig::default();
    let mut fuzzer = NearMissFuzzer::new(0xC0FFEE);
    for family in NearMissFamily::all() {
        for _ in 0..4 {
            let case = fuzzer.case(family);
            let metas: Vec<_> = case.original.iter().collect();
            let original: [&_; 3] = [metas[0], metas[1], metas[2]];
            assert!(
                detect(&full, original).is_some(),
                "{}: original sandwich not detected",
                family.name()
            );
            for bundle in &case.mutated {
                let refs: Vec<_> = bundle.iter().collect();
                match family.criterion() {
                    Some(n) => {
                        // Criterion families: one length-3 bundle that only
                        // the targeted criterion rejects.
                        let m: [&_; 3] = [refs[0], refs[1], refs[2]];
                        assert!(
                            detect(&full, m).is_none(),
                            "{}: mutant slipped past the full detector",
                            family.name()
                        );
                        let ablated = DetectorConfig::without_criterion(n).unwrap();
                        assert!(
                            detect(&ablated, m).is_some(),
                            "{}: criterion {n} not load-bearing for its mutant",
                            family.name()
                        );
                    }
                    None => match family {
                        // Metamorphic: reordering breaks the sandwich...
                        NearMissFamily::PermutedOrder => {
                            let m: [&_; 3] = [refs[0], refs[1], refs[2]];
                            assert!(detect(&full, m).is_none(), "permutation detected");
                        }
                        // ...splitting destroys the length-3 window...
                        NearMissFamily::SplitAcrossBundles => {
                            assert!(bundle.len() < 3, "split bundle still length-3");
                        }
                        // ...but zero-delta padding must NOT hide it: the
                        // windowed scan still finds exactly the one attack.
                        NearMissFamily::ZeroDeltaPadding => {
                            assert_eq!(detect_in_bundle(&full, &refs).len(), 1);
                        }
                        _ => unreachable!("criterion families handled above"),
                    },
                }
            }
        }
    }
}

#[test]
fn fuzzer_is_deterministic_per_seed() {
    let ids = |seed: u64| -> Vec<_> {
        NearMissFuzzer::new(seed)
            .cases(2)
            .iter()
            .flat_map(|c| c.original.iter().map(|m| m.tx_id))
            .collect()
    };
    assert_eq!(ids(7), ids(7), "same seed must replay identically");
    assert_ne!(ids(7), ids(8), "seed must actually enter the stream");
}
