//! End-to-end integration: simulated chain → explorer over HTTP →
//! collector → analysis, validated against the simulator's ground truth.

use std::collections::HashSet;

use sandwich_core::{AnalysisConfig, CollectorConfig, PipelineConfig};
use sandwich_sim::{ScenarioConfig, Simulation};

fn tiny_pipeline(scenario: &ScenarioConfig) -> PipelineConfig {
    PipelineConfig {
        collector: CollectorConfig {
            page_limit: sandwich_core::scaled_page_limit(scenario, 1),
            ..Default::default()
        },
        ..Default::default()
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn detector_has_no_false_positives_and_high_recall() {
    let scenario = ScenarioConfig {
        downtime_days: vec![], // full coverage for exact accounting
        ..ScenarioConfig::tiny()
    };
    let days = scenario.days;
    let pipeline = tiny_pipeline(&scenario);
    let mut sim = Simulation::new(scenario);
    let run = sandwich_core::run_measurement(&mut sim, pipeline)
        .await
        .unwrap();
    let report = run.analyze(&AnalysisConfig::paper_defaults(days));
    let truth = sim.truth();

    // Precision: every detected bundle is a ground-truth sandwich.
    let detected: HashSet<_> = report.findings.iter().map(|f| f.bundle_id).collect();
    for id in &detected {
        assert!(
            truth.sandwich_ids.contains(id),
            "false positive bundle {id}"
        );
    }

    // Recall: every *collected*, *undisguised* ground-truth sandwich is
    // detected. (Disguised length-4 attacks are invisible to the paper's
    // length-3 methodology by design — see the lower_bound bench.)
    let collected: HashSet<_> = run.dataset.bundles().iter().map(|b| b.bundle_id).collect();
    for id in &truth.sandwich_ids {
        if collected.contains(id) && !truth.disguised_sandwich_ids.contains(id) {
            assert!(detected.contains(id), "missed collected sandwich {id}");
        }
    }

    // Coverage sanity: the vast majority of bundles was collected.
    let total_truth: u64 = truth.per_day.iter().map(|d| d.total_bundles()).sum();
    let coverage = run.dataset.len() as f64 / total_truth as f64;
    assert!(coverage > 0.9, "collected {coverage:.2} of ground truth");
    assert!(run.dataset.overlap_rate() > 0.5);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn downtime_creates_gaps_without_breaking_analysis() {
    let scenario = ScenarioConfig::tiny(); // downtime on day 1
    let days = scenario.days;
    let pipeline = tiny_pipeline(&scenario);
    let mut sim = Simulation::new(scenario);
    let run = sandwich_core::run_measurement(&mut sim, pipeline)
        .await
        .unwrap();

    // Downtime is served as a hard outage, so no poll *succeeds* on the
    // downtime day — the failures are counted instead of silently skipped.
    assert!(run.dataset.polls().iter().all(|p| p.day != 1));
    assert!(run.polls_failed > 0, "outage produced no failed polls");
    // The chain kept producing; day 1 ground truth is non-empty but the
    // collected dataset for day 1 is mostly missing — the Figure 1 gap.
    // The first post-outage poll backfills up to `backfill_max_pages`
    // pages of the gap's trailing edge (~40% of the day at the tiny
    // scale), so the gap shrinks but must remain clearly visible.
    let truth_day1 = sim.truth().per_day[1].total_bundles();
    assert!(truth_day1 > 0);
    let report = run.analyze(&AnalysisConfig::paper_defaults(days));
    let collected_day1 = report
        .bundles_by_len_per_day
        .iter()
        .map(|s| s.values[1])
        .sum::<f64>();
    assert!(
        collected_day1 < truth_day1 as f64 * 0.6,
        "day-1 gap: collected {collected_day1} of {truth_day1}"
    );
    assert!(
        run.collector_stats.bundles_recovered > 0,
        "backfill recovered nothing from the gap's trailing edge"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn financial_estimates_track_ground_truth() {
    let scenario = ScenarioConfig {
        downtime_days: vec![],
        ..ScenarioConfig::tiny()
    };
    let days = scenario.days;
    let pipeline = tiny_pipeline(&scenario);
    let mut sim = Simulation::new(scenario);
    let run = sandwich_core::run_measurement(&mut sim, pipeline)
        .await
        .unwrap();
    let report = run.analyze(&AnalysisConfig::paper_defaults(days));
    let truth = sim.truth();

    // The detector's loss estimate (attacker-rate methodology, §4.1) must
    // agree with the simulator's intent-level accounting within 25%.
    let truth_loss_sol = truth.total_victim_loss_lamports() as f64 / 1e9;
    let measured_loss_sol = report.victim_loss_sol_per_day.total();
    assert!(truth_loss_sol > 0.0);
    let ratio = measured_loss_sol / truth_loss_sol;
    assert!(
        (0.75..=1.25).contains(&ratio),
        "loss ratio {ratio}: measured {measured_loss_sol} vs truth {truth_loss_sol}"
    );

    // Non-SOL share matches ground truth exactly on collected, undisguised
    // bundles (disguised length-4 attacks are invisible to this analysis).
    let collected: std::collections::HashSet<_> =
        run.dataset.bundles().iter().map(|b| b.bundle_id).collect();
    let truth_non_sol_collected = truth
        .non_sol_sandwich_ids
        .iter()
        .filter(|id| collected.contains(*id) && !truth.disguised_sandwich_ids.contains(*id))
        .count() as u64;
    assert_eq!(report.non_sol_sandwiches, truth_non_sol_collected);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn defensive_classification_matches_ground_truth() {
    let scenario = ScenarioConfig {
        downtime_days: vec![],
        ..ScenarioConfig::tiny()
    };
    let days = scenario.days;
    let pipeline = tiny_pipeline(&scenario);
    let mut sim = Simulation::new(scenario);
    let run = sandwich_core::run_measurement(&mut sim, pipeline)
        .await
        .unwrap();
    let report = run.analyze(&AnalysisConfig::paper_defaults(days));
    let truth = sim.truth();

    // Every ground-truth defensive bundle that was collected classifies as
    // defensive (tips were generated ≤ 100k by construction).
    let mut matched = 0u64;
    for b in run.dataset.bundles() {
        if truth.defensive_ids.contains(&b.bundle_id) {
            assert!(sandwich_core::is_defensive(b), "missed defensive {b:?}");
            matched += 1;
        }
    }
    assert!(matched > 0);
    // And the classifier's overall count only adds bundles that ground
    // truth also considers defensive (priority tips are > 100k by
    // construction, so equality holds).
    assert_eq!(report.defense.defensive, matched);
}
