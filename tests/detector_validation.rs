//! Detector validation straight off the chain (no HTTP): every landed
//! ground-truth sandwich is detected, every decoy is rejected, per
//! criterion.

use std::collections::HashSet;

use sandwich_core::{detect, DetectorConfig};
use sandwich_sim::{ScenarioConfig, Simulation};

type Len3Bundles = Vec<(
    sandwich_jito::BundleId,
    Vec<sandwich_ledger::TransactionMeta>,
)>;

/// Run the tiny scenario and return (len-3 bundles with metas, undisguised
/// truth ids, non-SOL truth ids). Disguised (length-4) attacks are excluded
/// here; `extended_detector_recovers_disguised_attacks` covers them.
fn run_and_collect() -> (
    Len3Bundles,
    HashSet<sandwich_jito::BundleId>,
    HashSet<sandwich_jito::BundleId>,
) {
    let scenario = ScenarioConfig::tiny();
    let mut sim = Simulation::new(scenario);
    let mut len3 = Vec::new();
    sim.run_to_completion(|outcome| {
        for b in &outcome.result.bundles {
            if b.len() == 3 {
                len3.push((b.bundle_id, b.metas.clone()));
            }
        }
    });
    let truth = sim.truth();
    let undisguised: HashSet<_> = truth
        .sandwich_ids
        .difference(&truth.disguised_sandwich_ids)
        .copied()
        .collect();
    let undisguised_non_sol: HashSet<_> = truth
        .non_sol_sandwich_ids
        .difference(&truth.disguised_sandwich_ids)
        .copied()
        .collect();
    (len3, undisguised, undisguised_non_sol)
}

#[test]
fn extended_detector_recovers_disguised_attacks() {
    let scenario = ScenarioConfig {
        disguised_sandwich_probability: 0.5, // lots of disguise for the test
        ..ScenarioConfig::tiny()
    };
    let mut sim = Simulation::new(scenario);
    let mut by_id = std::collections::HashMap::new();
    sim.run_to_completion(|outcome| {
        for b in &outcome.result.bundles {
            if b.len() >= 3 {
                by_id.insert(b.bundle_id, b.metas.clone());
            }
        }
    });
    let truth = sim.truth();
    assert!(
        !truth.disguised_sandwich_ids.is_empty(),
        "scenario produced disguised attacks"
    );
    let config = DetectorConfig::default();
    for id in &truth.disguised_sandwich_ids {
        let metas = &by_id[id];
        assert_eq!(metas.len(), 4, "disguised attacks are length-4");
        // Invisible to the paper's [0,1,2]-only view is NOT guaranteed
        // (the sandwich sits at the front), but the bundle is length-4 so
        // the paper never fetches its details at all. The extended scan
        // must find exactly one sandwich triple at indices [0,1,2].
        let refs: Vec<_> = metas.iter().collect();
        let hits = sandwich_core::detector::detect_in_bundle(&config, &refs);
        assert_eq!(hits.len(), 1, "one sandwich inside {id}");
        assert_eq!(hits[0].0, [0, 1, 2]);
    }
}

#[test]
fn perfect_precision_and_recall_on_landed_bundles() {
    let (len3, sandwich_ids, non_sol_ids) = run_and_collect();
    assert!(!len3.is_empty());
    assert!(!sandwich_ids.is_empty());

    let config = DetectorConfig::default();
    let mut detected = HashSet::new();
    let mut detected_non_sol = HashSet::new();
    for (id, metas) in &len3 {
        let metas3 = [&metas[0], &metas[1], &metas[2]];
        if let Some(finding) = detect(&config, metas3) {
            detected.insert(*id);
            if !finding.sol_legged {
                detected_non_sol.insert(*id);
            }
        }
    }

    // Precision 1.0: nothing detected that is not a ground-truth sandwich.
    for id in &detected {
        assert!(sandwich_ids.contains(id), "false positive: {id}");
    }
    // Recall 1.0 on landed bundles: every ground-truth sandwich detected.
    for id in &sandwich_ids {
        assert!(detected.contains(id), "false negative: {id}");
    }
    // SOL-leg classification agrees with ground truth.
    assert_eq!(detected_non_sol, non_sol_ids);
}

#[test]
fn every_criterion_is_load_bearing() {
    let (len3, sandwich_ids, _) = run_and_collect();
    let decoys: Vec<_> = len3
        .iter()
        .filter(|(id, _)| !sandwich_ids.contains(id))
        .collect();
    assert!(!decoys.is_empty());

    // The driver plants a near-miss decoy family against each criterion,
    // so removing any one of them must admit decoys the full detector
    // rejects (the ablation grid in `conformance_bench` breaks the same
    // admissions out per family).
    let mut passes = [0u64; 6];
    for n in 1..=5u8 {
        let config = DetectorConfig::without_criterion(n).unwrap();
        for (_, metas) in &decoys {
            if detect(&config, [&metas[0], &metas[1], &metas[2]]).is_some() {
                passes[n as usize] += 1;
            }
        }
    }
    let baseline = {
        let config = DetectorConfig::default();
        decoys
            .iter()
            .filter(|(_, m)| detect(&config, [&m[0], &m[1], &m[2]]).is_some())
            .count() as u64
    };
    assert_eq!(baseline, 0, "full detector flags no decoys");
    for n in 1..=5 {
        assert!(
            passes[n] > 0,
            "removing criterion {n} must admit its decoy family: {passes:?}"
        );
    }
}

#[test]
fn detection_is_deterministic() {
    let (len3, _, _) = run_and_collect();
    let config = DetectorConfig::default();
    for (_, metas) in len3.iter().take(50) {
        let a = detect(&config, [&metas[0], &metas[1], &metas[2]]);
        let b = detect(&config, [&metas[0], &metas[1], &metas[2]]);
        assert_eq!(a.is_some(), b.is_some());
        if let (Some(a), Some(b)) = (a, b) {
            assert_eq!(a.victim_loss_lamports, b.victim_loss_lamports);
            assert_eq!(a.attacker_gain_lamports, b.attacker_gain_lamports);
        }
    }
}

#[test]
fn permuted_bundles_are_not_sandwiches() {
    // Reordering the three transactions must break detection: the order
    // [victim, front, back] or [front, back, victim] is not a sandwich.
    let (len3, sandwich_ids, _) = run_and_collect();
    let config = DetectorConfig::default();
    let mut checked = 0;
    for (id, m) in &len3 {
        if !sandwich_ids.contains(id) {
            continue;
        }
        // [victim, front, back]: outer signers differ → criterion 1.
        assert!(detect(&config, [&m[1], &m[0], &m[2]]).is_none());
        // [back, victim, front]: attacker sells first → criterion 3.
        assert!(detect(&config, [&m[2], &m[1], &m[0]]).is_none());
        checked += 1;
        if checked >= 20 {
            break;
        }
    }
    assert!(checked > 0);
}
