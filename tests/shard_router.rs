//! End-to-end tests for the sharded query router: every `/api/*`
//! response served by an N-shard [`ServingCluster`] must be
//! byte-identical to the legacy single-engine evaluation at every shard
//! count — including pagination, coverage blocks, and 404 bodies — and
//! the cluster must degrade, rebalance, and aggregate health exactly as
//! specified.

use std::collections::HashMap;
use std::path::PathBuf;

use sandwich_bench::scale::{generate, ScaleConfig};
use sandwich_net::{HttpClient, Method, Request, Server};
use sandwich_obs::Registry;
use sandwich_query::{QueryRequest, QueryService, QueryServiceConfig};
use sandwich_shard::merge::{merge_coverage, SummaryPartial};
use sandwich_shard::{
    ClusterConfig, RouterConfig, RouterService, ServingCluster, ShardConfig, ShardMap, ShardService,
};
use sandwich_store::{BundleStore, Manifest, RebalanceConfig, StoreWriter, ValidatorSpec};
use sandwich_types::Keypair;

/// Seed a store with the scale generator so attacker/pool/detail
/// endpoints have real content spread across many segments.
fn seed_scale_store(tag: &str, bundles: u64, segment_bundles: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sw-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer = StoreWriter::create(&dir).unwrap();
    // Stamp a validator spec so the attribution endpoints have a real
    // leader schedule to join against (as the pipeline does).
    writer
        .set_validators(ValidatorSpec::new(20_250_209, 16))
        .unwrap();
    let scale = ScaleConfig {
        bundles,
        segment_bundles,
        days: 2,
        ..ScaleConfig::default()
    };
    generate(&mut writer, &scale).unwrap();
    drop(writer.into_reader());
    dir
}

/// Parse an `/api/*` path (with query string) into its typed request,
/// exactly as the service router would.
fn typed(path: &str) -> QueryRequest {
    let (route, query_string) = path.split_once('?').unwrap_or((path, ""));
    let query: HashMap<String, String> = query_string
        .split('&')
        .filter(|s| !s.is_empty())
        .filter_map(|kv| kv.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    let mut params = HashMap::new();
    let endpoint = if route == "/api/summary" {
        "summary"
    } else if route == "/api/days" {
        "days"
    } else if route == "/api/attackers" {
        "attackers"
    } else if let Some(rest) = route.strip_prefix("/api/attacker/") {
        params.insert("pubkey".to_string(), rest.to_string());
        "attacker"
    } else if let Some(rest) = route.strip_prefix("/api/pool/") {
        params.insert("mint".to_string(), rest.to_string());
        "pool"
    } else if route == "/api/validators" {
        "validators"
    } else if let Some(rest) = route.strip_prefix("/api/validator/") {
        params.insert("pubkey".to_string(), rest.to_string());
        "validator"
    } else {
        "sandwiches"
    };
    let request = Request {
        method: Method::Get,
        path: route.to_string(),
        query,
        params,
        headers: HashMap::new(),
        body: Default::default(),
    };
    QueryRequest::parse(endpoint, &request).unwrap()
}

/// The legacy single-engine reference: `(generation, per-path (status, body))`.
fn legacy_reference(dir: &PathBuf, paths: &[String]) -> (String, Vec<(u16, Vec<u8>)>) {
    let service = QueryService::open(QueryServiceConfig::new(dir), Registry::new()).unwrap();
    let engine = service.engine_snapshot();
    let generation = engine.generation().to_string();
    let responses = paths
        .iter()
        .map(|path| {
            let response = engine.evaluate(&typed(path));
            (response.status, response.body)
        })
        .collect();
    (generation, responses)
}

/// Probe paths covering every endpoint family, pagination, and 404s,
/// derived from the store's own leaderboards.
fn probe_paths(dir: &PathBuf) -> Vec<String> {
    let service = QueryService::open(QueryServiceConfig::new(dir), Registry::new()).unwrap();
    let engine = service.engine_snapshot();
    let index = engine.index();
    let mut paths = vec![
        "/api/summary".to_string(),
        "/api/days".to_string(),
        "/api/attackers?limit=10".to_string(),
        "/api/attackers?limit=10&after=10".to_string(),
        "/api/attackers?limit=500".to_string(),
    ];
    for entry in index.attackers.iter().take(2) {
        paths.push(format!("/api/attacker/{}", entry.attacker));
    }
    for entry in index.pools.iter().take(2) {
        paths.push(format!("/api/pool/{}", entry.mint));
    }
    let validators = index.validators.as_deref().unwrap_or(&[]);
    paths.push("/api/validators?limit=10".to_string());
    paths.push("/api/validators?limit=5&after=5".to_string());
    for entry in validators.iter().filter(|v| v.sandwiches > 0).take(2) {
        paths.push(format!("/api/validator/{}", entry.pubkey));
    }
    let nobody = Keypair::from_label("shard-router-nobody").pubkey();
    paths.push(format!("/api/attacker/{nobody}"));
    paths.push(format!("/api/pool/{nobody}"));
    // The validator 404 behaves exactly like the attacker 404: same
    // status, a JSON body, merged shards agreeing byte-for-byte.
    paths.push(format!("/api/validator/{nobody}"));
    let max_slot = index.totals.max_slot.max(1);
    paths.push(format!(
        "/api/sandwiches?from_slot=0&to_slot={}&limit=50",
        max_slot + 1
    ));
    paths.push(format!(
        "/api/sandwiches?from_slot=0&to_slot={}&limit=50&after=25",
        max_slot + 1
    ));
    paths.push(format!(
        "/api/sandwiches?from_slot={}&to_slot={}&limit=100",
        max_slot / 3,
        2 * max_slot / 3
    ));
    paths.push(format!(
        "/api/sandwiches?from_slot=0&to_slot={}&limit=20&after=1000000",
        max_slot + 1
    ));
    paths
}

/// Fetch every probe through the router and require byte-identity with
/// the legacy reference (status, body, and generation header).
async fn assert_router_matches(
    cluster: &ServingCluster,
    paths: &[String],
    generation: &str,
    reference: &[(u16, Vec<u8>)],
    label: &str,
) {
    let client = HttpClient::new(cluster.router_addr());
    for (path, (status, body)) in paths.iter().zip(reference) {
        let served = client.get(path).await.expect("router request");
        assert_eq!(served.status, *status, "{label}: status for {path}");
        assert_eq!(
            &served.body[..],
            &body[..],
            "{label}: body for {path} diverged from the single engine"
        );
        assert_eq!(
            served.header_value("x-query-generation"),
            Some(generation),
            "{label}: generation header for {path}"
        );
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn router_is_byte_identical_to_single_engine_at_every_shard_count() {
    let dir = seed_scale_store("identity", 4_000, 256);
    let paths = probe_paths(&dir);
    let (generation, reference) = legacy_reference(&dir, &paths);

    for shards in [1usize, 2, 4, 8] {
        let cluster = ServingCluster::serve(ClusterConfig::new(&dir, shards), Registry::new())
            .await
            .expect("serve cluster");
        assert_eq!(cluster.generation(), generation);
        assert_eq!(cluster.shard_addrs().len(), shards);
        assert_router_matches(
            &cluster,
            &paths,
            &generation,
            &reference,
            &format!("{shards} shard(s)"),
        )
        .await;
        cluster.shutdown().await;
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn quarantined_shard_coverage_sums_to_single_engine_coverage() {
    let dir = seed_scale_store("quarantine", 2_000, 128);

    // Quarantine one mid-store segment, exactly as the doctor would.
    let mut manifest = Manifest::load(&dir).unwrap();
    let victim_index = manifest.segments.len() / 2;
    let victim = manifest.segments[victim_index].clone();
    manifest.quarantine(victim_index, "test: planted corruption");
    manifest.save(&dir).unwrap();

    let paths = probe_paths(&dir);
    let (generation, reference) = legacy_reference(&dir, &paths);
    let body = String::from_utf8_lossy(&reference[0].1).to_string();
    assert!(
        body.contains("\"segments_quarantined\":1"),
        "reference summary must carry the quarantine: {body}"
    );

    let cluster = ServingCluster::serve(ClusterConfig::new(&dir, 3), Registry::new())
        .await
        .expect("serve cluster");
    assert_router_matches(&cluster, &paths, &generation, &reference, "quarantined").await;

    // The shard-level accounting is exact too: summing the per-shard
    // coverage blocks reproduces the single-engine coverage field by
    // field, and exactly one shard carries the quarantined bundles.
    let mut partials = Vec::new();
    for addr in cluster.shard_addrs() {
        let client = HttpClient::new(addr);
        let response = client.get("/shard/summary").await.expect("shard summary");
        assert_eq!(response.status, 200);
        let partial: SummaryPartial = serde_json::from_slice(&response.body).unwrap();
        assert_eq!(partial.generation, generation);
        partials.push(partial);
    }
    let summed = merge_coverage(
        &partials
            .iter()
            .map(|p| p.coverage.clone())
            .collect::<Vec<_>>(),
    );
    let service = QueryService::open(QueryServiceConfig::new(&dir), Registry::new()).unwrap();
    let engine = service.engine_snapshot();
    assert_eq!(summed, engine.index().coverage, "coverage sum mismatch");
    let carriers: Vec<_> = partials
        .iter()
        .filter(|p| p.coverage.bundles_quarantined > 0)
        .collect();
    assert_eq!(carriers.len(), 1, "exactly one shard owns the quarantine");
    assert_eq!(carriers[0].coverage.bundles_quarantined, victim.bundles);

    cluster.shutdown().await;
    std::fs::remove_dir_all(&dir).unwrap();
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn readyz_aggregates_and_degrades_as_shards_die() {
    let dir = seed_scale_store("readyz", 1_000, 128);
    let store = BundleStore::open(&dir).unwrap();
    let map = ShardMap::load_or_plan(store.dir(), store.manifest(), 2).unwrap();
    drop(store);
    let registry = Registry::new();

    // Assemble the two shards and the router by hand so one shard can be
    // killed without tearing the rest of the cluster down.
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for shard in 0..2 {
        let service =
            ShardService::open(ShardConfig::new(&dir, shard), &map, registry.clone()).unwrap();
        let server = Server::bind("127.0.0.1:0", service.router()).await.unwrap();
        addrs.push(server.local_addr());
        servers.push(server);
    }
    let router = RouterService::new(
        addrs,
        map.generation.clone(),
        RouterConfig::default(),
        registry.clone(),
    );
    let router_server = Server::bind("127.0.0.1:0", router.router()).await.unwrap();
    let client = HttpClient::new(router_server.local_addr());

    // Healthy: both shards ready, not degraded.
    let health = client.get("/healthz").await.unwrap();
    assert_eq!(health.status, 200);
    let ready = client.get("/readyz").await.unwrap();
    assert_eq!(ready.status, 200);
    let body = String::from_utf8_lossy(&ready.body).to_string();
    assert!(body.contains("\"ready_shards\":2"), "{body}");
    assert!(body.contains("\"degraded\":false"), "{body}");
    let summary = client.get("/api/summary").await.unwrap();
    assert_eq!(summary.status, 200);

    // One shard down: degraded but still serving readiness; an uncached
    // fan-out fails closed with a retryable 503, never a partial merge.
    servers.pop().unwrap().shutdown().await;
    let ready = client.get("/readyz").await.unwrap();
    assert_eq!(ready.status, 200, "one live shard keeps /readyz green");
    let body = String::from_utf8_lossy(&ready.body).to_string();
    assert!(body.contains("\"degraded\":true"), "{body}");
    assert!(body.contains("\"ready_shards\":1"), "{body}");
    let days = client.get("/api/days").await.unwrap();
    assert_eq!(days.status, 503, "uncached fan-out must fail closed");
    let body = String::from_utf8_lossy(&days.body).to_string();
    assert!(body.contains("scatter-gather failed"), "{body}");
    // The pre-failure summary stays servable from the router cache.
    let summary = client.get("/api/summary").await.unwrap();
    assert_eq!(summary.status, 200);

    // Every shard down: readiness goes red.
    servers.pop().unwrap().shutdown().await;
    let ready = client.get("/readyz").await.unwrap();
    assert_eq!(ready.status, 503);
    assert_eq!(ready.header_value("Retry-After"), Some("3"));

    router_server.shutdown().await;
    std::fs::remove_dir_all(&dir).unwrap();
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn rebalance_under_live_router_lands_via_reload() {
    // Confetti store: 16 tiny segments that one rebalance compacts.
    let dir = seed_scale_store("rebalance", 2_000, 128);
    let segments_before = Manifest::load(&dir).unwrap().segments.len();
    assert!(segments_before >= 8, "need a fragmented store");

    let cluster = ServingCluster::serve(ClusterConfig::new(&dir, 2), Registry::new())
        .await
        .expect("serve cluster");
    let generation_before = cluster.generation();
    let client = HttpClient::new(cluster.router_addr());
    let before = client.get("/api/summary").await.unwrap();
    assert_eq!(before.status, 200);

    // Compact while the cluster serves; the manifest swap is atomic, so
    // the old generation keeps serving until reload installs the new one.
    let report = sandwich_store::rebalance(&dir, &RebalanceConfig::default()).unwrap();
    assert!(report.changed(), "rebalance must compact the confetti");
    assert!(report.segments_after < segments_before);
    let still = client.get("/api/summary").await.unwrap();
    assert_eq!(still.status, 200);
    assert_eq!(&still.body[..], &before.body[..], "pre-reload bytes stable");

    assert!(cluster.reload().unwrap(), "reload must go live");
    assert_ne!(cluster.generation(), generation_before);

    // Post-rebalance responses match a fresh single engine byte-for-byte.
    let paths = probe_paths(&dir);
    let (generation, reference) = legacy_reference(&dir, &paths);
    assert_eq!(cluster.generation(), generation);
    assert_router_matches(&cluster, &paths, &generation, &reference, "rebalanced").await;

    cluster.shutdown().await;
    std::fs::remove_dir_all(&dir).unwrap();
}
