//! Defensive bundling: wrap your own transaction in a length-1 bundle so
//! no attacker can wrap it for you (paper §3.3), and see how the
//! classifier separates defensive from priority bundles.
//!
//! Run with: `cargo run -p sandwich-suite --example defensive_bundling`

use sandwich_core::{is_defensive, threshold_sweep, CollectedBundle};
use sandwich_dex::swap_ix;
use sandwich_jito::{tip_ix, BlockEngine, Bundle};
use sandwich_ledger::{native_sol_mint, TransactionBuilder};
use sandwich_suite::DemoMarket;
use sandwich_types::{Lamports, Slot};

fn collected(landed: &sandwich_jito::LandedBundle) -> CollectedBundle {
    CollectedBundle {
        bundle_id: landed.bundle_id,
        slot: landed.slot,
        timestamp_ms: 0,
        tip: landed.tip,
        tx_ids: landed.metas.iter().map(|m| m.tx_id).collect(),
    }
}

fn main() {
    let market = DemoMarket::build();
    let sol = native_sol_mint();
    let mut engine = BlockEngine::new(market.bank.clone());

    // A defensive user: swap + minimal tip, self-bundled.
    let defensive_tx = TransactionBuilder::new(market.victim)
        .nonce(1)
        .instruction(swap_ix(sol, market.token, 500_000_000, 0))
        .instruction(tip_ix(Lamports(5_000), 1))
        .build();
    let defensive = Bundle::new(vec![defensive_tx]).unwrap();

    // A priority user: same swap, but a tip big enough to buy placement.
    let priority_tx = TransactionBuilder::new(market.attacker)
        .nonce(1)
        .instruction(swap_ix(sol, market.token, 500_000_000, 0))
        .instruction(tip_ix(Lamports(1_500_000), 1))
        .build();
    let priority = Bundle::new(vec![priority_tx]).unwrap();

    let result = engine.produce_slot(Slot(1), vec![defensive.clone(), priority.clone()], vec![]);
    println!("landed {} bundles", result.bundles.len());

    let records: Vec<CollectedBundle> = result.bundles.iter().map(collected).collect();
    for r in &records {
        println!(
            "bundle {}… tip {:>9} → {}",
            r.bundle_id.to_string().chars().take(8).collect::<String>(),
            r.tip.0,
            if is_defensive(r) {
                "DEFENSIVE (MEV protection)"
            } else {
                "priority (paying for placement)"
            }
        );
    }

    // Why the threshold matters: sweep it.
    println!("\n=== threshold sensitivity ===");
    let sweep = threshold_sweep(
        records.iter(),
        &[1_000, 10_000, 100_000, 1_000_000, 10_000_000],
    );
    println!(
        "{:>14} {:>12} {:>20}",
        "threshold", "defensive", "fraction of len-1"
    );
    for (threshold, stats) in sweep {
        println!(
            "{:>14} {:>12} {:>19.0}%",
            threshold.0,
            stats.defensive,
            stats.defensive_fraction() * 100.0
        );
    }

    // The economics the paper highlights: the tip is tiny insurance
    // against a fat-tailed loss.
    let oracle = sandwich_dex::SolUsdOracle::default();
    println!(
        "\nA defensive tip costs ≈ ${:.4}; the median sandwich loss is ≈ $5 \
         and the tail runs past $100 — cheap insurance.",
        oracle.lamports_to_usd(Lamports(5_000)),
    );
}
