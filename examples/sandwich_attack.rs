//! Attacker economics: how slippage tolerance caps what a sandwich can
//! extract (paper §2.2), swept over tolerances and trade sizes.
//!
//! Run with: `cargo run -p sandwich-suite --example sandwich_attack`

use sandwich_dex::{plan_optimal, victim_min_out, SolUsdOracle};
use sandwich_ledger::native_sol_mint;
use sandwich_suite::DemoMarket;

fn main() {
    let market = DemoMarket::build();
    let pool = market.pool();
    let sol = native_sol_mint();
    let oracle = SolUsdOracle::default();

    println!(
        "pool: {:.0} SOL deep, 30 bps LP fee\n",
        pool.reserves_for(&sol).unwrap().0 as f64 / 1e9
    );

    println!("=== sweep: slippage tolerance (victim trades 5 SOL) ===");
    println!(
        "{:>10} {:>16} {:>16} {:>14}",
        "slippage", "front-run (SOL)", "profit (SOL)", "profit (USD)"
    );
    let victim_in = 5_000_000_000u64;
    for slippage_bps in [10u32, 25, 50, 100, 200, 500, 1_000, 2_000] {
        let min_out = victim_min_out(&pool, &sol, victim_in, slippage_bps).unwrap();
        match plan_optimal(&pool, &sol, victim_in, min_out, u64::MAX / 4, 1) {
            Some(plan) => println!(
                "{:>9.2}% {:>16.4} {:>16.6} {:>14.2}",
                slippage_bps as f64 / 100.0,
                plan.front_run_in as f64 / 1e9,
                plan.gross_profit as f64 / 1e9,
                oracle.sol_to_usd(plan.gross_profit as f64 / 1e9),
            ),
            None => println!(
                "{:>9.2}% {:>16} {:>16} {:>14}",
                slippage_bps as f64 / 100.0,
                "-",
                "unprofitable",
                "-"
            ),
        }
    }

    println!("\n=== sweep: victim trade size (2% slippage) ===");
    println!(
        "{:>12} {:>16} {:>16} {:>14}",
        "trade (SOL)", "front-run (SOL)", "profit (SOL)", "victim loss $"
    );
    for victim_sol in [0.1f64, 0.25, 0.5, 1.0, 2.0, 5.0] {
        let victim_in = (victim_sol * 1e9) as u64;
        let min_out = victim_min_out(&pool, &sol, victim_in, 200).unwrap();
        match plan_optimal(&pool, &sol, victim_in, min_out, u64::MAX / 4, 1) {
            Some(plan) => {
                let shortfall = sandwich_dex::sandwich::victim_loss_tokens(
                    &pool,
                    &sol,
                    victim_in,
                    plan.victim_out,
                );
                let loss_lamports =
                    sandwich_dex::sandwich::shortfall_in_input_mint(&pool, &sol, shortfall);
                println!(
                    "{victim_sol:>12.2} {:>16.4} {:>16.6} {:>14.2}",
                    plan.front_run_in as f64 / 1e9,
                    plan.gross_profit as f64 / 1e9,
                    oracle.sol_to_usd(loss_lamports as f64 / 1e9),
                );
            }
            None => println!(
                "{victim_sol:>12.2} {:>16} {:>16} {:>14}",
                "-", "unprofitable", "-"
            ),
        }
    }

    println!("\nTakeaway: tighter slippage caps extraction but cannot make it zero —");
    println!("and small trades on deep pools simply aren't worth attacking (fees win).");
}
