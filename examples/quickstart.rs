//! Quickstart: execute one sandwich attack through the Jito block engine
//! and detect it with the paper's five-criteria detector.
//!
//! Run with: `cargo run -p sandwich-suite --example quickstart`

use sandwich_core::{detect, DetectorConfig};
use sandwich_dex::{plan_optimal, swap_ix, victim_min_out, SolUsdOracle};
use sandwich_jito::{tip_ix, BlockEngine, Bundle};
use sandwich_ledger::{native_sol_mint, TransactionBuilder};
use sandwich_suite::DemoMarket;
use sandwich_types::{Lamports, Slot};

fn main() {
    let market = DemoMarket::build();
    let sol = native_sol_mint();
    let pool = market.pool();
    let oracle = SolUsdOracle::default();

    // The victim wants to buy the token with 5 SOL at 2% slippage tolerance.
    let victim_in = 5_000_000_000u64;
    let min_out = victim_min_out(&pool, &sol, victim_in, 200).expect("quotable");
    println!("victim swap: 5 SOL → token, slippage tolerance 2% (min out {min_out} units)");

    // The attacker observes it in a private mempool and plans the sandwich.
    let plan =
        plan_optimal(&pool, &sol, victim_in, min_out, u64::MAX / 4, 1).expect("profitable plan");
    println!(
        "attacker plan: front-run {:.4} SOL, expected gross profit {:.6} SOL (${:.2})",
        plan.front_run_in as f64 / 1e9,
        plan.gross_profit as f64 / 1e9,
        oracle.sol_to_usd(plan.gross_profit as f64 / 1e9),
    );

    // Build the three transactions and bundle them.
    let victim_tx = TransactionBuilder::new(market.victim)
        .instruction(swap_ix(sol, market.token, victim_in, min_out))
        .build();
    let front = TransactionBuilder::new(market.attacker)
        .nonce(1)
        .instruction(swap_ix(sol, market.token, plan.front_run_in, 0))
        .build();
    let tip = Lamports(2_000_000);
    let back = TransactionBuilder::new(market.attacker)
        .nonce(2)
        .instruction(swap_ix(market.token, sol, plan.front_run_out, 0))
        .instruction(tip_ix(tip, 2))
        .build();
    let bundle = Bundle::new(vec![front, victim_tx, back]).expect("valid bundle");
    println!("bundle {} (3 transactions, tip {})", bundle.id(), tip);

    // The block engine lands it atomically.
    let mut engine = BlockEngine::new(market.bank.clone());
    let result = engine.produce_slot(Slot(1), vec![bundle], vec![]);
    let landed = &result.bundles[0];
    println!(
        "landed in slot {} with realized tip {}",
        landed.slot.0, landed.tip
    );

    // Run the paper's detector on the landed metas.
    let metas = [&landed.metas[0], &landed.metas[1], &landed.metas[2]];
    let finding = detect(&DetectorConfig::default(), metas).expect("detected");
    println!("\n=== detector verdict ===");
    println!("attacker: {}", finding.attacker);
    println!("victim:   {}", finding.victim);
    println!(
        "victim loss:   {:.6} SOL (${:.2})",
        finding.victim_loss_lamports.unwrap_or(0) as f64 / 1e9,
        oracle.lamports_to_usd(Lamports(finding.victim_loss_lamports.unwrap_or(0))),
    );
    println!(
        "attacker gain: {:.6} SOL (${:.2}) before the {} tip",
        finding.attacker_gain_lamports.unwrap_or(0) as f64 / 1e9,
        oracle.sol_to_usd(finding.attacker_gain_lamports.unwrap_or(0) as f64 / 1e9),
        finding.bundle_tip,
    );
}
