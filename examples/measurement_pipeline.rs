//! The full measurement, end to end: simulated chain → explorer HTTP API →
//! two-minute polling collector → five-criteria detection → report.
//!
//! Runs a shortened 12-day scenario so it finishes in well under a minute.
//! Run with: `cargo run --release -p sandwich-suite --example measurement_pipeline`

use sandwich_core::{report, AnalysisConfig, CollectorConfig, PipelineConfig};
use sandwich_sim::{ScenarioConfig, Simulation};

#[tokio::main(flavor = "multi_thread", worker_threads = 2)]
async fn main() {
    let scenario = ScenarioConfig {
        days: 12,
        ticks_per_day: 144, // one block / poll every 10 simulated minutes
        volume_scale: 1.0 / 8_000.0,
        downtime_days: vec![(5, 6)],
        ..Default::default()
    };
    let days = scenario.days;
    let volume_scale = scenario.volume_scale;
    let downtime = scenario.downtime_days.clone();
    let page_limit = sandwich_core::scaled_page_limit(&scenario, 1);

    println!(
        "simulating {days} days at 1/{:.0} of mainnet volume (page limit {page_limit})…",
        1.0 / volume_scale
    );
    let mut sim = Simulation::new(scenario);
    let pipeline = PipelineConfig {
        collector: CollectorConfig {
            page_limit,
            ..Default::default()
        },
        ..Default::default()
    };

    let run = sandwich_core::run_measurement(&mut sim, pipeline)
        .await
        .expect("pipeline runs");
    println!(
        "collected {} bundles over {} polls ({} details fetched, overlap rate {:.1}%)",
        run.dataset.len(),
        run.dataset.polls().len(),
        run.dataset.detail_count(),
        run.dataset.overlap_rate() * 100.0,
    );

    let analysis = run.analyze(&AnalysisConfig::paper_defaults(days));
    println!("\n=== Figure 2 (per-day series) ===");
    println!("{}", report::figure2(&analysis, &run.clock));
    println!("=== Figure 3 (loss CDF) ===");
    println!("{}", report::figure3(&analysis));
    println!("=== headline vs paper ===");
    println!("{}", report::headline(&analysis, volume_scale));

    println!("=== collection health (final /metrics snapshot) ===");
    println!("{}", run.metrics.to_json_string());

    // Validate against ground truth — the advantage of a simulated chain.
    let truth = sim.truth();
    println!(
        "ground truth: {} sandwiches landed, detector found {} \
         ({} lost to collector downtime days {:?})",
        truth.total_sandwiches(),
        analysis.total_sandwiches(),
        truth.total_sandwiches() as i64 - analysis.total_sandwiches() as i64,
        downtime,
    );
}
